//! Spectral estimation of the second largest eigenvalue modulus (SLEM).
//!
//! The transition matrix `P = D⁻¹A` is similar to the symmetric matrix
//! `S = D^{-1/2} A D^{-1/2}` (via `S = D^{1/2} P D^{-1/2}`), so their
//! spectra coincide and lie in `[-1, 1]`. The principal eigenvector of `S`
//! is known in closed form, `φ(v) = √deg(v)`, which lets us deflate it and
//! find the second eigenvalue with plain power iteration — no external
//! eigensolver required:
//!
//! * `λ₂` (largest non-principal eigenvalue) from power iteration on the
//!   positive-shifted operator `(S + I)/2` with `φ` deflated;
//! * `λ_min` (smallest eigenvalue) from power iteration on `(I − S)/2`,
//!   where `φ` already has eigenvalue 0 and needs no deflation;
//! * `μ = max(λ₂, |λ_min|)`, the paper's second largest eigenvalue
//!   modulus.

use serde::{Deserialize, Serialize};
use socnet_core::{par_fill_rows, Csr, Graph};

/// Convergence controls for [`slem`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SpectralConfig {
    /// Stop when the eigenvalue estimate moves less than this between
    /// iterations.
    pub tolerance: f64,
    /// Hard iteration cap (power iteration on near-1 spectral gaps is
    /// slow; the cap keeps worst cases bounded).
    pub max_iterations: usize,
    /// Seed for the random starting vector.
    pub seed: u64,
    /// Worker threads for the blocked CSR mat-vec (`≤ 1` runs it on the
    /// calling thread). Every thread count produces **bit-identical**
    /// estimates: threads own disjoint output rows and the per-row
    /// accumulation order never changes.
    pub threads: usize,
}

impl Default for SpectralConfig {
    fn default() -> Self {
        SpectralConfig { tolerance: 1e-10, max_iterations: 20_000, seed: 0xe16e, threads: 1 }
    }
}

/// The spectral measurements backing a Table-I row.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Spectrum {
    /// Second largest (signed) eigenvalue of `P`.
    pub lambda2: f64,
    /// Smallest eigenvalue of `P` (at −1 exactly when bipartite).
    pub lambda_min: f64,
    /// Power-iteration steps spent on the two estimates combined.
    pub iterations: usize,
}

impl Spectrum {
    /// The second largest eigenvalue modulus `μ = max(λ₂, |λ_min|)`.
    pub fn slem(&self) -> f64 {
        self.lambda2.max(self.lambda_min.abs())
    }

    /// The spectral gap `1 − μ` that all mixing bounds are driven by.
    pub fn gap(&self) -> f64 {
        1.0 - self.slem()
    }
}

/// Estimates `λ₂` and `λ_min` of the walk matrix of `graph`.
///
/// The graph should be connected; on a disconnected graph the "second"
/// eigenvalue is 1 (one per extra component) and the estimate will
/// correctly approach 1 but mixes the components' spectra.
///
/// # Panics
///
/// Panics if the graph has no edges.
///
/// # Examples
///
/// ```
/// use socnet_gen::complete;
/// use socnet_mixing::{slem, SpectralConfig};
///
/// // K_n has λ₂ = λ_min = −1/(n−1).
/// let g = complete(11);
/// let s = slem(&g, &SpectralConfig::default());
/// assert!((s.lambda2 - (-0.1)).abs() < 1e-6);
/// assert!((s.slem() - 0.1).abs() < 1e-6);
/// ```
pub fn slem(graph: &Graph, config: &SpectralConfig) -> Spectrum {
    try_slem(graph, config).expect("spectrum undefined without edges")
}

/// Fallible variant of [`slem`] for callers serving untrusted queries:
/// an edgeless graph is an error, never a panic.
///
/// # Errors
///
/// Returns [`MixingError::InvalidParameter`] if `graph` has no edges.
///
/// # Examples
///
/// ```
/// use socnet_core::Graph;
/// use socnet_mixing::{try_slem, MixingError, SpectralConfig};
///
/// let edgeless = Graph::from_edges(3, Vec::new());
/// let err = try_slem(&edgeless, &SpectralConfig::default()).unwrap_err();
/// assert!(matches!(err, MixingError::InvalidParameter(_)));
/// ```
pub fn try_slem(graph: &Graph, config: &SpectralConfig) -> Result<Spectrum, crate::MixingError> {
    if graph.edge_count() == 0 {
        return Err(crate::MixingError::InvalidParameter(
            "spectrum undefined without edges".to_string(),
        ));
    }
    Ok(slem_csr(&Csr::from_graph(graph), config))
}

/// [`try_slem`] over prebuilt compact CSR slabs — the kernel-facing
/// entry point for callers (like the serving layer) that keep a shared
/// [`Csr`] next to the graph.
///
/// # Errors
///
/// Returns [`MixingError::InvalidParameter`](crate::MixingError::InvalidParameter)
/// if the slabs hold no edges.
pub fn try_slem_csr(csr: &Csr, config: &SpectralConfig) -> Result<Spectrum, crate::MixingError> {
    if csr.edge_count() == 0 {
        return Err(crate::MixingError::InvalidParameter(
            "spectrum undefined without edges".to_string(),
        ));
    }
    Ok(socnet_core::kernel_timing::timed("slem", || slem_csr(csr, config)))
}

/// The blocked-CSR power iteration. The pull-based mat-vec accumulates
/// each output row over its sorted neighbor list with exactly the same
/// per-term expression — `(x[u]·d_u^{-1/2})·d_v^{-1/2}`, zero entries
/// skipped — as the historical push-based sweep, so the estimates are
/// bit-identical to [`slem_legacy`] at any thread count.
fn slem_csr(csr: &Csr, config: &SpectralConfig) -> Spectrum {
    let n = csr.node_count();

    // Inverse square-root degrees (0 for isolated nodes, which contribute
    // eigenvalue-0 directions and do not disturb the estimates).
    let inv_sqrt_deg: Vec<f64> = (0..n)
        .map(|v| {
            let d = csr.degree(v as u32);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as f64).sqrt()
            }
        })
        .collect();

    // Normalized principal eigenvector φ(v) = sqrt(deg v) / sqrt(2m).
    let norm = (csr.degree_sum() as f64).sqrt();
    let phi: Vec<f64> =
        (0..n).map(|v| (csr.degree(v as u32) as f64).sqrt() / norm).collect();

    // y = S x, one block of output rows per worker thread.
    let blocks = csr.edge_balanced_blocks(config.threads.max(1));
    let apply_s = |x: &[f64], y: &mut [f64]| {
        par_fill_rows(&blocks, y, |v| {
            let inv_v = inv_sqrt_deg[v];
            let mut acc = 0.0f64;
            for &u in csr.neighbors(v as u32) {
                let xu = x[u as usize];
                if xu == 0.0 {
                    continue;
                }
                acc += xu * inv_sqrt_deg[u as usize] * inv_v;
            }
            acc
        });
    };

    let mut iterations = 0usize;

    // λ₂ via (S + I)/2, deflating φ. Eigenvalues map λ → (1+λ)/2 ∈ [0, 1],
    // so the dominant remaining direction is the largest signed λ ≠ λ₁.
    let lambda2 = {
        let mut x = seeded_vector(n, config.seed);
        deflate(&mut x, &phi);
        normalize(&mut x);
        let mut y = vec![0.0; n];
        let mut prev = f64::NAN;
        let mut est = 0.0;
        for it in 0..config.max_iterations {
            apply_s(&x, &mut y);
            for i in 0..n {
                y[i] = 0.5 * (y[i] + x[i]);
            }
            deflate(&mut y, &phi);
            // Rayleigh quotient of the shifted operator: x·y with ‖x‖=1.
            let shifted: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            est = 2.0 * shifted - 1.0;
            std::mem::swap(&mut x, &mut y);
            normalize(&mut x);
            iterations = it + 1;
            if (est - prev).abs() < config.tolerance {
                break;
            }
            prev = est;
        }
        est.clamp(-1.0, 1.0)
    };

    // λ_min via (I − S)/2: eigenvalues map λ → (1−λ)/2, dominant at λ_min.
    // φ maps to 0, so no deflation is needed.
    let lambda_min = {
        let mut x = seeded_vector(n, config.seed ^ 0xdead_beef);
        normalize(&mut x);
        let mut y = vec![0.0; n];
        let mut prev = f64::NAN;
        let mut est = 0.0;
        for it in 0..config.max_iterations {
            apply_s(&x, &mut y);
            for i in 0..n {
                y[i] = 0.5 * (x[i] - y[i]);
            }
            let shifted: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            est = 1.0 - 2.0 * shifted;
            std::mem::swap(&mut x, &mut y);
            normalize(&mut x);
            iterations += 1;
            let _ = it;
            if (est - prev).abs() < config.tolerance {
                break;
            }
            prev = est;
        }
        est.clamp(-1.0, 1.0)
    };

    Spectrum { lambda2, lambda_min, iterations }
}

/// The pre-CSR push-based power iteration, kept verbatim as the
/// reference implementation that the equivalence tests pin
/// [`slem`]/[`try_slem_csr`] against bit-for-bit.
///
/// # Panics
///
/// Panics if the graph has no edges.
#[doc(hidden)]
pub fn slem_legacy(graph: &Graph, config: &SpectralConfig) -> Spectrum {
    assert!(graph.edge_count() > 0, "spectrum undefined without edges");
    let n = graph.node_count();

    let inv_sqrt_deg: Vec<f64> = graph
        .nodes()
        .map(|v| {
            let d = graph.degree(v);
            if d == 0 {
                0.0
            } else {
                1.0 / (d as f64).sqrt()
            }
        })
        .collect();

    let norm = (graph.degree_sum() as f64).sqrt();
    let phi: Vec<f64> = graph.nodes().map(|v| (graph.degree(v) as f64).sqrt() / norm).collect();

    // y = S x, pushed along each node's out-edges.
    let apply_s = |x: &[f64], y: &mut [f64]| {
        y.fill(0.0);
        for u in graph.nodes() {
            let xu = x[u.index()];
            if xu == 0.0 {
                continue;
            }
            let w = xu * inv_sqrt_deg[u.index()];
            for &v in graph.neighbors(u) {
                y[v.index()] += w * inv_sqrt_deg[v.index()];
            }
        }
    };

    let mut iterations = 0usize;

    let lambda2 = {
        let mut x = seeded_vector(n, config.seed);
        deflate(&mut x, &phi);
        normalize(&mut x);
        let mut y = vec![0.0; n];
        let mut prev = f64::NAN;
        let mut est = 0.0;
        for it in 0..config.max_iterations {
            apply_s(&x, &mut y);
            for i in 0..n {
                y[i] = 0.5 * (y[i] + x[i]);
            }
            deflate(&mut y, &phi);
            let shifted: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            est = 2.0 * shifted - 1.0;
            std::mem::swap(&mut x, &mut y);
            normalize(&mut x);
            iterations = it + 1;
            if (est - prev).abs() < config.tolerance {
                break;
            }
            prev = est;
        }
        est.clamp(-1.0, 1.0)
    };

    let lambda_min = {
        let mut x = seeded_vector(n, config.seed ^ 0xdead_beef);
        normalize(&mut x);
        let mut y = vec![0.0; n];
        let mut prev = f64::NAN;
        let mut est = 0.0;
        for it in 0..config.max_iterations {
            apply_s(&x, &mut y);
            for i in 0..n {
                y[i] = 0.5 * (x[i] - y[i]);
            }
            let shifted: f64 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
            est = 1.0 - 2.0 * shifted;
            std::mem::swap(&mut x, &mut y);
            normalize(&mut x);
            iterations += 1;
            let _ = it;
            if (est - prev).abs() < config.tolerance {
                break;
            }
            prev = est;
        }
        est.clamp(-1.0, 1.0)
    };

    Spectrum { lambda2, lambda_min, iterations }
}

/// Deterministic pseudo-random starting vector (splitmix64 stream).
fn seeded_vector(n: usize, seed: u64) -> Vec<f64> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^= z >> 31;
            (z as f64 / u64::MAX as f64) - 0.5
        })
        .collect()
}

fn deflate(x: &mut [f64], phi: &[f64]) {
    let dot: f64 = x.iter().zip(phi).map(|(a, b)| a * b).sum();
    for (xi, pi) in x.iter_mut().zip(phi) {
        *xi -= dot * pi;
    }
}

fn normalize(x: &mut [f64]) {
    let norm: f64 = x.iter().map(|a| a * a).sum::<f64>().sqrt();
    if norm > 0.0 {
        for xi in x.iter_mut() {
            *xi /= norm;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_core::Graph;
    use socnet_gen::{barbell, complete, ring};

    fn measure(g: &Graph) -> Spectrum {
        slem(g, &SpectralConfig::default())
    }

    #[test]
    fn complete_graph_spectrum() {
        // K_n: λ₂ = ... = λ_n = −1/(n−1).
        let s = measure(&complete(9));
        assert!((s.lambda2 + 0.125).abs() < 1e-6, "λ₂ = {}", s.lambda2);
        assert!((s.lambda_min + 0.125).abs() < 1e-6);
        assert!((s.slem() - 0.125).abs() < 1e-6);
    }

    #[test]
    fn even_ring_is_bipartite() {
        let s = measure(&ring(8));
        assert!((s.lambda_min + 1.0).abs() < 1e-5, "bipartite λ_min = {}", s.lambda_min);
        assert!((s.slem() - 1.0).abs() < 1e-5);
        // λ₂ of C_8 is cos(2π/8) ≈ 0.7071.
        assert!((s.lambda2 - (std::f64::consts::PI / 4.0).cos()).abs() < 1e-5);
    }

    #[test]
    fn odd_ring_spectrum() {
        // C_n: eigenvalues cos(2πk/n); for n = 9, λ₂ = cos(2π/9),
        // λ_min = cos(8π/9).
        let s = measure(&ring(9));
        let tau = 2.0 * std::f64::consts::PI / 9.0;
        assert!((s.lambda2 - tau.cos()).abs() < 1e-5, "λ₂ = {}", s.lambda2);
        assert!((s.lambda_min - (4.0 * tau).cos()).abs() < 1e-5);
    }

    #[test]
    fn barbell_has_tiny_gap() {
        let s = measure(&barbell(8, 0));
        assert!(s.lambda2 > 0.9, "bottleneck ⇒ λ₂ near 1, got {}", s.lambda2);
        assert!(s.gap() < 0.1);
    }

    #[test]
    fn star_is_bipartite_with_zero_lambda2() {
        let s = measure(&socnet_gen::star(12));
        assert!(s.lambda2.abs() < 1e-6, "star λ₂ = {}", s.lambda2);
        assert!((s.lambda_min + 1.0).abs() < 1e-6);
    }

    #[test]
    fn disconnected_graph_reports_unit_lambda2() {
        // Two disjoint triangles: multiplicity-2 eigenvalue 1.
        let g = Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]);
        let s = measure(&g);
        assert!(s.lambda2 > 1.0 - 1e-6);
    }

    #[test]
    fn estimates_are_deterministic() {
        let g = barbell(5, 1);
        let a = measure(&g);
        let b = measure(&g);
        assert_eq!(a, b);
    }

    #[test]
    fn spectrum_lies_in_unit_interval() {
        let g = socnet_gen::grid(6, 7);
        let s = measure(&g);
        assert!((-1.0..=1.0).contains(&s.lambda2));
        assert!((-1.0..=1.0).contains(&s.lambda_min));
        assert!(s.lambda_min <= s.lambda2);
    }

    #[test]
    #[should_panic(expected = "without edges")]
    fn empty_graph_panics() {
        let _ = measure(&Graph::from_edges(4, []));
    }

    #[test]
    fn csr_spectrum_is_bit_identical_to_legacy() {
        let config = SpectralConfig::default();
        for g in [
            complete(9),
            ring(8),
            ring(9),
            barbell(6, 2),
            socnet_gen::star(12),
            socnet_gen::grid(5, 6),
            Graph::from_edges(6, [(0, 1), (1, 2), (2, 0), (3, 4), (4, 5), (5, 3)]),
        ] {
            let legacy = slem_legacy(&g, &config);
            assert_eq!(slem(&g, &config), legacy);
            let csr = Csr::from_graph(&g);
            assert_eq!(try_slem_csr(&csr, &config).unwrap(), legacy);
        }
    }

    #[test]
    fn thread_count_does_not_change_the_bits() {
        let g = barbell(7, 3);
        let baseline = slem(&g, &SpectralConfig::default());
        for threads in [2, 3, 8] {
            let config = SpectralConfig { threads, ..SpectralConfig::default() };
            assert_eq!(slem(&g, &config), baseline, "threads = {threads}");
        }
    }

    #[test]
    fn edgeless_csr_is_an_error() {
        let csr = Csr::from_graph(&Graph::from_edges(4, []));
        assert!(try_slem_csr(&csr, &SpectralConfig::default()).is_err());
    }
}
