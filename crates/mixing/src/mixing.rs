//! The sampling method for measuring mixing time (the paper's Eq. 2).

use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use socnet_core::{sample_nodes, Csr, Graph, NodeId};
use socnet_runner::{par_sweep, ParConfig, StageReport, UnitError};

use crate::{stationary_distribution, total_variation, Distribution, WalkOperator};

/// Parameters of a sampling-method mixing measurement.
///
/// # Examples
///
/// ```
/// use socnet_mixing::MixingConfig;
///
/// let cfg = MixingConfig { sources: 100, max_walk: 300, ..Default::default() };
/// assert_eq!(cfg.laziness, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MixingConfig {
    /// Number of uniformly sampled walk sources (the paper uses 1000).
    pub sources: usize,
    /// Longest walk length `t` to evaluate.
    pub max_walk: usize,
    /// Lazy self-loop probability; 0 gives the paper's simple walk.
    pub laziness: f64,
    /// RNG seed for source sampling.
    pub seed: u64,
}

impl Default for MixingConfig {
    fn default() -> Self {
        MixingConfig {
            sources: 100,
            max_walk: 200,
            laziness: 0.0,
            seed: 0x50c7e7,
        }
    }
}

/// The total-variation trajectory of one walk source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceCurve {
    /// The walk's starting node.
    pub source: NodeId,
    /// `tvd[t]` is `‖π^{(i)}P^t − π‖` for `t = 1..=max_walk`
    /// (index 0 holds `t = 1`).
    pub tvd: Vec<f64>,
}

impl SourceCurve {
    /// First walk length whose TVD drops below `epsilon`, i.e. this
    /// source's `T(ε)`.
    pub fn mixing_time(&self, epsilon: f64) -> Option<usize> {
        self.tvd.iter().position(|&d| d < epsilon).map(|t| t + 1)
    }
}

/// The result of a sampling-method measurement: one TVD curve per source.
///
/// # Examples
///
/// ```
/// use socnet_gen::ring;
/// use socnet_mixing::{MixingConfig, MixingMeasurement};
///
/// let g = ring(31); // odd ring: aperiodic but slow
/// let cfg = MixingConfig { sources: 5, max_walk: 50, ..Default::default() };
/// let m = MixingMeasurement::measure(&g, &cfg);
/// assert_eq!(m.curves.len(), 5);
/// // Slow graph: far from stationary after 50 steps.
/// assert!(m.max_curve()[49] > 0.1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixingMeasurement {
    /// Per-source trajectories, in source-id order.
    pub curves: Vec<SourceCurve>,
    /// The walk length the measurement covered.
    pub max_walk: usize,
}

impl MixingMeasurement {
    /// Runs the sampling method on `graph`.
    ///
    /// Sources are sampled uniformly without replacement; each source's
    /// point-mass distribution is evolved `max_walk` steps and compared to
    /// the stationary distribution after every step. Sources are processed
    /// in parallel across available cores.
    ///
    /// The graph should be connected and non-bipartite for `π` to be the
    /// walk's limit (use the largest component, as the paper does).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges or `sources == 0`.
    pub fn measure(graph: &Graph, config: &MixingConfig) -> Self {
        let (m, report) = Self::measure_reported(graph, config, &ParConfig::default());
        assert!(
            report.is_complete(),
            "mixing stage degraded: {}",
            report.summary_line()
        );
        m
    }

    /// Fault-tolerant variant of [`measure`](MixingMeasurement::measure):
    /// each source runs as an isolated unit of the parallel sweep under
    /// the config's cancellation token, and the returned [`StageReport`]
    /// says which sources completed. Curves of failed/cancelled sources
    /// are simply absent, so a degraded measurement still aggregates
    /// over what ran. Curve order — and any CSV written from it — is
    /// identical at every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `config.sources == 0`.
    pub fn measure_reported(
        graph: &Graph,
        config: &MixingConfig,
        par: &ParConfig,
    ) -> (Self, StageReport) {
        assert!(config.sources > 0, "need at least one source");
        let op = WalkOperator::with_laziness(graph, config.laziness);
        Self::measure_reported_with(graph, &op, config, par)
    }

    /// [`measure_reported`](MixingMeasurement::measure_reported) over
    /// prebuilt CSR slabs: the walk operator borrows `csr` instead of
    /// converting the graph again, which is what the serving layer and
    /// the kernel bench use. Results are bit-identical to the graph
    /// entry point.
    ///
    /// # Panics
    ///
    /// Panics if `config.sources == 0` or the slabs do not match the
    /// graph's node count.
    pub fn measure_reported_csr(
        graph: &Graph,
        csr: &Csr,
        config: &MixingConfig,
        par: &ParConfig,
    ) -> (Self, StageReport) {
        assert!(config.sources > 0, "need at least one source");
        assert_eq!(csr.node_count(), graph.node_count(), "csr/graph node count mismatch");
        let op = WalkOperator::from_csr(csr, config.laziness);
        socnet_core::kernel_timing::timed("tvd", || {
            Self::measure_reported_with(graph, &op, config, par)
        })
    }

    fn measure_reported_with(
        graph: &Graph,
        op: &WalkOperator<'_>,
        config: &MixingConfig,
        par: &ParConfig,
    ) -> (Self, StageReport) {
        let pi = stationary_distribution(graph);
        let mut rng = StdRng::seed_from_u64(config.seed);
        let sources = sample_nodes(graph, config.sources, &mut rng);
        let (curves, report) = Self::run_sources(op, &pi, &sources, config, par);
        (
            MixingMeasurement {
                curves,
                max_walk: config.max_walk,
            },
            report,
        )
    }

    /// Runs the sampling method from an explicit source list (useful for
    /// measuring the worst-known sources or reproducing a figure exactly).
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges, `sources` is empty, or any source
    /// is out of range.
    pub fn measure_from(graph: &Graph, sources: &[NodeId], config: &MixingConfig) -> Self {
        assert!(!sources.is_empty(), "need at least one source");
        let pi = stationary_distribution(graph);
        let op = WalkOperator::with_laziness(graph, config.laziness);
        let (curves, report) =
            Self::run_sources(&op, &pi, sources, config, &ParConfig::default());
        assert!(
            report.is_complete(),
            "mixing stage degraded: {}",
            report.summary_line()
        );
        MixingMeasurement {
            curves,
            max_walk: config.max_walk,
        }
    }

    /// One panic-isolated unit per source on the parallel sweep engine:
    /// a poisoned source (or one cut off by the deadline) drops only its
    /// own curve. The two walk-distribution vectors are per-thread
    /// scratch, so a sweep allocates `2 × threads` vectors instead of
    /// two per source.
    fn run_sources(
        op: &WalkOperator<'_>,
        pi: &Distribution,
        sources: &[NodeId],
        config: &MixingConfig,
        par: &ParConfig,
    ) -> (Vec<SourceCurve>, StageReport) {
        let pi = pi.as_slice();
        let n = op.node_count();
        let out = par_sweep(
            "mixing",
            sources,
            par,
            |_, s| format!("source-{}", s.index()),
            || (vec![0.0f64; n], vec![0.0f64; n]),
            |(x, scratch), ctx, &source| {
                x.fill(0.0);
                x[source.index()] = 1.0;
                let mut tvd = Vec::with_capacity(config.max_walk);
                for _ in 0..config.max_walk {
                    if ctx.cancel.is_cancelled() {
                        return Err(UnitError::Cancelled);
                    }
                    op.step(x, scratch);
                    std::mem::swap(x, scratch);
                    tvd.push(total_variation(x, pi));
                }
                Ok(SourceCurve { source, tvd })
            },
        );
        (out.outputs.into_iter().flatten().collect(), out.report)
    }

    /// The worst (maximum) TVD over all sources at each walk length —
    /// the `max_i` of the paper's Eq. (2).
    pub fn max_curve(&self) -> Vec<f64> {
        self.fold_curve(f64::max)
    }

    /// The mean TVD over sources at each walk length; the quantity the
    /// paper's Figure 1 plots for sampled sources.
    pub fn mean_curve(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.max_walk];
        for c in &self.curves {
            for (a, &d) in acc.iter_mut().zip(&c.tvd) {
                *a += d;
            }
        }
        let k = self.curves.len() as f64;
        acc.iter_mut().for_each(|a| *a /= k);
        acc
    }

    /// The best (minimum) TVD over sources at each walk length.
    pub fn min_curve(&self) -> Vec<f64> {
        self.fold_curve(f64::min)
    }

    fn fold_curve(&self, f: impl Fn(f64, f64) -> f64) -> Vec<f64> {
        let mut out = self.curves[0].tvd.clone();
        for c in &self.curves[1..] {
            for (o, &d) in out.iter_mut().zip(&c.tvd) {
                *o = f(*o, d);
            }
        }
        out
    }

    /// The sampled-source estimate of `T(ε)`: the first walk length at
    /// which *every* sampled source is within `epsilon` of stationarity.
    ///
    /// Returns `None` if that never happens within `max_walk` steps.
    pub fn mixing_time(&self, epsilon: f64) -> Option<usize> {
        self.max_curve()
            .iter()
            .position(|&d| d < epsilon)
            .map(|t| t + 1)
    }

    /// Per-source mixing times `T_i(ε)`, exposing the distribution of
    /// mixing across sources that the paper highlights.
    pub fn per_source_mixing_times(&self, epsilon: f64) -> Vec<Option<usize>> {
        self.curves.iter().map(|c| c.mixing_time(epsilon)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use socnet_gen::{barbell, complete};

    #[test]
    fn curves_are_monotone_decreasing_for_lazy_walks() {
        let g = barbell(6, 0);
        let cfg = MixingConfig {
            sources: 4,
            max_walk: 60,
            laziness: 0.5,
            seed: 1,
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        for c in &m.curves {
            for w in c.tvd.windows(2) {
                assert!(w[1] <= w[0] + 1e-12, "lazy TVD must not increase");
            }
        }
    }

    #[test]
    fn complete_graph_mixes_immediately() {
        let g = complete(40);
        let cfg = MixingConfig {
            sources: 10,
            max_walk: 5,
            ..Default::default()
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        assert!(m.mixing_time(0.05).expect("mixes") <= 2);
    }

    #[test]
    fn barbell_mixes_slower_than_complete() {
        let fast = complete(12);
        let slow = barbell(6, 0);
        let cfg = MixingConfig {
            sources: 12,
            max_walk: 40,
            laziness: 0.5,
            seed: 3,
        };
        let mf = MixingMeasurement::measure(&fast, &cfg);
        let ms = MixingMeasurement::measure(&slow, &cfg);
        let (tf, ts) = (mf.mean_curve()[20], ms.mean_curve()[20]);
        assert!(ts > 3.0 * tf, "barbell {ts} should lag complete {tf}");
    }

    #[test]
    fn explicit_sources_are_respected() {
        let g = complete(10);
        let cfg = MixingConfig {
            max_walk: 3,
            ..Default::default()
        };
        let m = MixingMeasurement::measure_from(&g, &[NodeId(2), NodeId(7)], &cfg);
        assert_eq!(m.curves.len(), 2);
        assert_eq!(m.curves[0].source, NodeId(2));
        assert_eq!(m.curves[1].source, NodeId(7));
    }

    #[test]
    fn aggregates_bound_each_other() {
        let g = barbell(5, 2);
        let cfg = MixingConfig {
            sources: 8,
            max_walk: 30,
            laziness: 0.5,
            seed: 9,
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        let (lo, mid, hi) = (m.min_curve(), m.mean_curve(), m.max_curve());
        for t in 0..30 {
            assert!(lo[t] <= mid[t] + 1e-12);
            assert!(mid[t] <= hi[t] + 1e-12);
        }
    }

    #[test]
    fn measurement_is_deterministic() {
        let g = barbell(4, 1);
        let cfg = MixingConfig {
            sources: 5,
            max_walk: 10,
            laziness: 0.0,
            seed: 11,
        };
        let a = MixingMeasurement::measure(&g, &cfg);
        let b = MixingMeasurement::measure(&g, &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn sweep_is_identical_at_every_thread_count() {
        let g = barbell(5, 1);
        let cfg = MixingConfig {
            sources: 9,
            max_walk: 25,
            laziness: 0.5,
            seed: 7,
        };
        let run = |threads| {
            let par = ParConfig {
                threads,
                ..Default::default()
            };
            MixingMeasurement::measure_reported(&g, &cfg, &par).0
        };
        let reference = run(1);
        for threads in [2, 4] {
            assert_eq!(reference, run(threads), "threads={threads}");
        }
    }

    #[test]
    fn per_source_times_match_curves() {
        let g = complete(20);
        let cfg = MixingConfig {
            sources: 6,
            max_walk: 8,
            ..Default::default()
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        let times = m.per_source_mixing_times(0.05);
        assert_eq!(times.len(), 6);
        let worst = times
            .iter()
            .map(|t| t.expect("mixes"))
            .max()
            .expect("nonempty");
        assert_eq!(Some(worst), m.mixing_time(0.05));
    }

    #[test]
    fn csr_measurement_is_bit_identical() {
        let g = barbell(5, 2);
        let cfg = MixingConfig {
            sources: 6,
            max_walk: 20,
            laziness: 0.3,
            seed: 5,
        };
        let par = ParConfig::default();
        let (want, _) = MixingMeasurement::measure_reported(&g, &cfg, &par);
        let csr = Csr::from_graph(&g);
        let (got, _) = MixingMeasurement::measure_reported_csr(&g, &csr, &cfg, &par);
        assert_eq!(got, want);
    }

    #[test]
    fn never_mixing_within_horizon_reports_none() {
        let g = barbell(8, 4);
        let cfg = MixingConfig {
            sources: 4,
            max_walk: 3,
            laziness: 0.5,
            seed: 2,
        };
        let m = MixingMeasurement::measure(&g, &cfg);
        assert_eq!(m.mixing_time(1e-6), None);
    }
}
