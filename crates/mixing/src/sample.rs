//! Sampling-based approximate mixing-time estimation.
//!
//! The exact sampling method ([`MixingMeasurement`](crate::MixingMeasurement))
//! evolves a dense distribution — `O(n + m)` work *per walk step*, which
//! is exact but prohibitive at million-node scale. Following the
//! random-walk mixing estimator of Molla & Pandurangan ("Distributed
//! computation of mixing time"), this module instead runs `K`
//! independent sampled walks from the source and measures closeness to
//! stationarity with the collision statistic: with `c_v` walks sitting
//! at node `v` after `t` steps,
//!
//! ```text
//! χ²(t) = Σ_v c_v·(c_v − 1) / (K·(K − 1)·π(v)) − 1
//! ```
//!
//! is an unbiased estimator of the χ² divergence of the `t`-step walk
//! distribution from `π` (pairs of walks collide at `v` with probability
//! `p_t(v)²`), and `½·√χ²` upper-bounds the total variation distance by
//! Cauchy–Schwarz. The estimated mixing time is the first `t` whose
//! bound drops below `ε`. Work is `O(K·t_max)` walk steps plus `O(K)`
//! per evaluated `t` — independent of the graph size once the slabs are
//! built, which is what makes the `--scale xl` graphs measurable.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::{Csr, Graph, NodeId};

use crate::MixingError;

/// Parameters of a sampled (approximate) mixing estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SampleMixingConfig {
    /// Number of independent walks `K` (the collision estimator needs at
    /// least 2; variance shrinks like `1/K`).
    pub walks: usize,
    /// Longest walk length `t` to evaluate.
    pub max_walk: usize,
    /// Lazy self-loop probability; 0 gives the paper's simple walk.
    pub laziness: f64,
    /// RNG seed; walk `w` uses an independent stream derived from it.
    pub seed: u64,
}

impl Default for SampleMixingConfig {
    fn default() -> Self {
        SampleMixingConfig { walks: 256, max_walk: 200, laziness: 0.0, seed: 0x5a3b1e }
    }
}

/// The estimated distance-to-stationarity curve of one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SampleMixingEstimate {
    /// The walks' starting node.
    pub source: NodeId,
    /// `bound[t]` is the `½·√χ²` TVD upper bound after `t + 1` steps
    /// (index 0 holds `t = 1`), clamped below at 0 where sampling noise
    /// drives the χ² estimate negative.
    pub bound: Vec<f64>,
    /// Number of walks the estimate aggregated.
    pub walks: usize,
}

impl SampleMixingEstimate {
    /// First walk length whose estimated TVD bound drops below
    /// `epsilon` — the sampled analogue of
    /// [`SourceCurve::mixing_time`](crate::SourceCurve::mixing_time).
    pub fn mixing_time(&self, epsilon: f64) -> Option<usize> {
        self.bound.iter().position(|&d| d < epsilon).map(|t| t + 1)
    }
}

/// Runs the collision estimator on a graph (converting to CSR once).
///
/// # Errors
///
/// Returns [`MixingError::InvalidNode`] if `source` is out of range, and
/// [`MixingError::InvalidParameter`] if the graph has no edges, `source`
/// is isolated, `walks < 2`, `max_walk == 0`, or `laziness` is outside
/// `[0, 1)`.
pub fn estimate_mixing(
    graph: &Graph,
    source: NodeId,
    config: &SampleMixingConfig,
) -> Result<SampleMixingEstimate, MixingError> {
    graph.check_node(source)?;
    estimate_mixing_csr(&Csr::from_graph(graph), source, config)
}

/// Runs the collision estimator over prebuilt CSR slabs.
///
/// # Errors
///
/// Same contract as [`estimate_mixing`].
pub fn estimate_mixing_csr(
    csr: &Csr,
    source: NodeId,
    config: &SampleMixingConfig,
) -> Result<SampleMixingEstimate, MixingError> {
    let n = csr.node_count();
    if source.index() >= n {
        return Err(MixingError::InvalidNode(socnet_core::GraphError::NodeOutOfRange {
            node: source.index(),
            node_count: n,
        }));
    }
    if csr.edge_count() == 0 {
        return Err(MixingError::InvalidParameter(
            "mixing undefined without edges".to_string(),
        ));
    }
    if csr.degree(source.0) == 0 {
        return Err(MixingError::InvalidParameter(format!(
            "walks from isolated source {} never mix",
            source.0
        )));
    }
    if config.walks < 2 {
        return Err(MixingError::InvalidParameter(format!(
            "collision estimator needs at least 2 walks, got {}",
            config.walks
        )));
    }
    if config.max_walk == 0 {
        return Err(MixingError::InvalidParameter("max_walk must be at least 1".to_string()));
    }
    if !(0.0..1.0).contains(&config.laziness) {
        return Err(MixingError::InvalidParameter(format!(
            "laziness {} out of [0, 1)",
            config.laziness
        )));
    }

    let k = config.walks;
    let t_max = config.max_walk;

    // Per-step endpoints of every walk, walk-major: row w holds the node
    // the w-th walk sits on after 1..=t_max steps. Walk streams are
    // seeded independently so the trajectory set is deterministic per
    // config regardless of evaluation order.
    let mut endpoints = vec![0u32; k * t_max];
    for w in 0..k {
        let mut rng = StdRng::seed_from_u64(walk_seed(config.seed, w as u64));
        let mut cur = source.0;
        for t in 0..t_max {
            if config.laziness > 0.0 && rng.random_bool(config.laziness) {
                endpoints[w * t_max + t] = cur;
                continue;
            }
            let nbrs = csr.neighbors(cur);
            cur = nbrs[rng.random_range(0..nbrs.len())];
            endpoints[w * t_max + t] = cur;
        }
    }

    // π(v) = deg(v) / 2m; walks started on a positive-degree node can
    // never reach a zero-degree one, so every collision site has π > 0.
    let two_m = csr.degree_sum() as f64;
    let pair_count = (k * (k - 1)) as f64;

    let mut counts = vec![0u32; n];
    let mut touched: Vec<u32> = Vec::with_capacity(k);
    let mut bound = Vec::with_capacity(t_max);
    for t in 0..t_max {
        for w in 0..k {
            let v = endpoints[w * t_max + t];
            if counts[v as usize] == 0 {
                touched.push(v);
            }
            counts[v as usize] += 1;
        }
        let mut chi2 = 0.0f64;
        for &v in &touched {
            let c = counts[v as usize] as f64;
            counts[v as usize] = 0;
            if c > 1.0 {
                let pi_v = csr.degree(v) as f64 / two_m;
                chi2 += c * (c - 1.0) / (pair_count * pi_v);
            }
        }
        touched.clear();
        chi2 -= 1.0;
        bound.push(0.5 * chi2.max(0.0).sqrt());
    }

    Ok(SampleMixingEstimate { source, bound, walks: k })
}

/// SplitMix64-style mix so each walk gets a well-separated RNG stream.
fn walk_seed(seed: u64, walk: u64) -> u64 {
    let mut z = seed ^ walk.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Distribution, WalkOperator};
    use socnet_gen::{barbell, complete, ring};

    fn cfg(walks: usize, max_walk: usize, laziness: f64) -> SampleMixingConfig {
        SampleMixingConfig { walks, max_walk, laziness, seed: 0xfeed }
    }

    #[test]
    fn complete_graph_mixes_within_a_few_steps() {
        let g = complete(40);
        let est = estimate_mixing(&g, NodeId(0), &cfg(2_000, 8, 0.0)).expect("valid");
        assert_eq!(est.bound.len(), 8);
        let t = est.mixing_time(0.2).expect("complete graphs mix");
        assert!(t <= 5, "estimated mixing time {t}");
    }

    #[test]
    fn barbell_does_not_mix_within_a_short_horizon() {
        let g = barbell(8, 0);
        let est = estimate_mixing(&g, NodeId(0), &cfg(1_000, 6, 0.5)).expect("valid");
        assert_eq!(est.mixing_time(0.05), None, "bottleneck cannot mix in 6 steps");
    }

    #[test]
    fn estimates_are_deterministic_per_seed() {
        let g = ring(15);
        let a = estimate_mixing(&g, NodeId(3), &cfg(64, 20, 0.0)).expect("valid");
        let b = estimate_mixing(&g, NodeId(3), &cfg(64, 20, 0.0)).expect("valid");
        assert_eq!(a, b);
        let csr = Csr::from_graph(&g);
        let c = estimate_mixing_csr(&csr, NodeId(3), &cfg(64, 20, 0.0)).expect("valid");
        assert_eq!(a, c, "graph and csr entry points share the trajectory set");
    }

    #[test]
    fn bound_tracks_the_exact_tvd_curve() {
        // ½√χ² upper-bounds the true TVD; with enough walks the sampled
        // estimate must stay above exact TVD minus statistical slack.
        for g in [complete(30), barbell(6, 0)] {
            let n = g.node_count();
            let laziness = 0.5;
            let est = estimate_mixing(&g, NodeId(0), &cfg(4_000, 12, laziness)).expect("valid");

            let op = WalkOperator::with_laziness(&g, laziness);
            let pi = crate::stationary_distribution(&g);
            let mut x = Distribution::point_mass(n, NodeId(0)).into_vec();
            let mut scratch = vec![0.0; n];
            for t in 0..12 {
                op.step(&x, &mut scratch);
                std::mem::swap(&mut x, &mut scratch);
                let exact = crate::total_variation(&x, pi.as_slice());
                assert!(
                    est.bound[t] + 0.15 >= exact,
                    "t = {}: sampled bound {} far below exact TVD {}",
                    t + 1,
                    est.bound[t],
                    exact
                );
            }
        }
    }

    #[test]
    fn degenerate_inputs_are_errors() {
        let g = ring(6);
        let ok = cfg(8, 5, 0.0);
        assert!(estimate_mixing(&g, NodeId(9), &ok).is_err(), "source out of range");
        assert!(
            estimate_mixing(&g, NodeId(0), &cfg(1, 5, 0.0)).is_err(),
            "one walk cannot collide"
        );
        assert!(estimate_mixing(&g, NodeId(0), &cfg(8, 0, 0.0)).is_err(), "empty horizon");
        assert!(estimate_mixing(&g, NodeId(0), &cfg(8, 5, 1.0)).is_err(), "full laziness");
        let edgeless = socnet_core::Graph::from_edges(3, []);
        assert!(estimate_mixing(&edgeless, NodeId(0), &ok).is_err(), "no edges");
        let isolated = socnet_core::Graph::from_edges(3, [(0, 1)]);
        assert!(estimate_mixing(&isolated, NodeId(2), &ok).is_err(), "isolated source");
    }
}
