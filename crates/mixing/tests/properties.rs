//! Property-based tests of the mixing machinery.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet_core::{largest_component, Graph, NodeId};
use socnet_mixing::{
    endpoint_entropy, entropy_bits, sinclair_bounds, slem, stationary_distribution,
    total_variation, Distribution, ModulatedOperator, SpectralConfig, TrustModulation,
    WalkOperator,
};

fn arb_graph_with_edges() -> impl Strategy<Value = Graph> {
    (3usize..25).prop_flat_map(|n| {
        let edge = (0..n as u32, 0..n as u32);
        proptest::collection::vec(edge, 1..80)
            .prop_map(move |edges| Graph::from_edges(n, edges))
            .prop_filter("needs edges", |g| g.edge_count() > 0)
    })
}

proptest! {
    #[test]
    fn walk_step_conserves_and_stays_nonnegative(g in arb_graph_with_edges()) {
        let op = WalkOperator::new(&g);
        let n = g.node_count();
        let mut x = Distribution::uniform(n).into_vec();
        let mut y = vec![0.0; n];
        for _ in 0..4 {
            op.step(&x, &mut y);
            prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(y.iter().all(|&p| p >= -1e-12));
            std::mem::swap(&mut x, &mut y);
        }
    }

    #[test]
    fn tvd_to_stationarity_never_increases(g in arb_graph_with_edges(), src in 0u32..25) {
        // The contraction property holds for every Markov chain, lazy or
        // not, connected or not.
        prop_assume!((src as usize) < g.node_count());
        let pi = stationary_distribution(&g);
        let op = WalkOperator::with_laziness(&g, 0.3);
        let n = g.node_count();
        let mut x = vec![0.0; n];
        x[src as usize] = 1.0;
        let mut y = vec![0.0; n];
        let mut prev = total_variation(&x, pi.as_slice());
        for _ in 0..8 {
            op.step(&x, &mut y);
            std::mem::swap(&mut x, &mut y);
            let cur = total_variation(&x, pi.as_slice());
            prop_assert!(cur <= prev + 1e-9, "TVD rose {prev} -> {cur}");
            prev = cur;
        }
    }

    #[test]
    fn slem_is_within_the_unit_interval(g in arb_graph_with_edges()) {
        let s = slem(&g, &SpectralConfig { max_iterations: 3_000, ..Default::default() });
        prop_assert!((-1.0..=1.0).contains(&s.lambda2), "lambda2 {}", s.lambda2);
        prop_assert!((-1.0..=1.0).contains(&s.lambda_min));
        prop_assert!(s.lambda_min <= s.lambda2 + 1e-6);
        prop_assert!((0.0..=1.0).contains(&s.slem()));
    }

    #[test]
    fn sinclair_bracket_is_ordered(mu in 0.0f64..0.9999, n in 2usize..1_000_000, eps in 1e-9f64..0.49) {
        let b = sinclair_bounds(mu, n, eps);
        prop_assert!(b.lower >= 0.0);
        prop_assert!(b.lower <= b.upper, "{b:?}");
    }

    #[test]
    fn entropy_is_bounded_by_log_n(g in arb_graph_with_edges(), t in 0usize..10, src in 0u32..25) {
        prop_assume!((src as usize) < g.node_count());
        let h = endpoint_entropy(&g, NodeId(src), t).expect("source in range");
        let n = g.node_count() as f64;
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= n.log2() + 1e-9, "H = {h} > log2({n})");
        // Entropy of any distribution matches the generic helper.
        let uniform = vec![1.0 / n; g.node_count()];
        prop_assert!((entropy_bits(&uniform) - n.log2()).abs() < 1e-9);
    }

    #[test]
    fn modulated_schemes_conserve_mass(
        g in arb_graph_with_edges(),
        scheme in 0usize..4,
        src in 0u32..25,
    ) {
        prop_assume!((src as usize) < g.node_count());
        let modulation = match scheme {
            0 => TrustModulation::Uniform,
            1 => TrustModulation::Lazy { alpha: 0.4 },
            2 => TrustModulation::OriginatorBiased { beta: 0.3 },
            _ => TrustModulation::SimilarityBiased,
        };
        let op = ModulatedOperator::new(&g, modulation);
        let n = g.node_count();
        let mut x = vec![0.0; n];
        x[src as usize] = 1.0;
        let mut y = vec![0.0; n];
        for _ in 0..5 {
            op.step(NodeId(src), &x, &mut y);
            prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9, "{modulation:?}");
            prop_assert!(y.iter().all(|&p| p >= -1e-12));
            std::mem::swap(&mut x, &mut y);
        }
    }

    #[test]
    fn spectral_gap_upper_bounds_observed_mixing(seed in any::<u64>()) {
        // On a connected non-bipartite graph, the sampled T(eps) must not
        // beat the Sinclair *lower* bound by more than the sampling slack
        // (we check the consistent direction: measured <= upper bound).
        let g = socnet_gen::barabasi_albert(120, 3, &mut StdRng::seed_from_u64(seed));
        let (g, _) = largest_component(&g);
        let s = slem(&g, &SpectralConfig::default());
        let eps = 0.05;
        let bounds = sinclair_bounds(s.slem().min(1.0 - 1e-9), g.node_count(), eps);
        let m = socnet_mixing::MixingMeasurement::measure(
            &g,
            &socnet_mixing::MixingConfig { sources: 10, max_walk: 200, laziness: 0.0, seed },
        );
        if let Some(t) = m.mixing_time(eps) {
            prop_assert!(
                (t as f64) <= bounds.upper.ceil(),
                "measured {t} beyond upper bound {}",
                bounds.upper
            );
        }
    }
}
