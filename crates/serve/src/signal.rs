//! Minimal `SIGTERM`/`SIGINT` trapping without a libc crate.
//!
//! The workspace is dependency-free, so instead of pulling in `libc` or
//! `signal-hook` this module declares the one C function it needs —
//! `signal(2)` from the libc that `std` already links — and installs a
//! handler that does the only thing an async-signal-safe handler may
//! do here: flip an atomic flag. The server's accept loop polls
//! [`triggered`] between `accept` attempts and starts its graceful
//! drain once the flag is up.
//!
//! This is the single scoped exception to the crate's `deny(unsafe_code)`.

use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};

/// `SIGINT` — interactive interrupt (Ctrl-C).
const SIGINT: i32 = 2;
/// `SIGTERM` — polite termination request (what `kill` and CI send).
const SIGTERM: i32 = 15;

static TRIGGERED: AtomicBool = AtomicBool::new(false);
/// When >= 0, the handler also writes one byte here — the write end of
/// the event loop's self-pipe, so a signal interrupts `poll(2)` *now*
/// instead of at the next timeout tick. `write(2)` is on the
/// async-signal-safe list; flipping the atomic and writing a byte is
/// all the handler ever does.
static WAKE_FD: AtomicI32 = AtomicI32::new(-1);

#[allow(unsafe_code)]
mod ffi {
    extern "C" {
        /// `signal(2)`. The handler type is declared as `usize` because
        /// the only values crossing this boundary are function pointers
        /// we own; the return value (previous handler) is ignored.
        pub fn signal(signum: i32, handler: usize) -> usize;
        /// `write(2)` — async-signal-safe, used for the self-pipe wake.
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    pub extern "C" fn on_signal(_signum: i32) {
        // Only async-signal-safe work is allowed here: store, one
        // best-effort write to the (non-blocking) self-pipe, return.
        super::TRIGGERED.store(true, core::sync::atomic::Ordering::SeqCst);
        let fd = super::WAKE_FD.load(core::sync::atomic::Ordering::SeqCst);
        if fd >= 0 {
            let byte = [1u8];
            // SAFETY: fd is a live pipe write end registered by the
            // event loop; a failed or short write only costs the
            // instant wake-up (the poll timeout still notices).
            unsafe {
                write(fd, byte.as_ptr(), 1);
            }
        }
    }

    pub fn install(signum: i32) {
        // SAFETY: `signal` is the POSIX libc entry point and
        // `on_signal` is `extern "C"` with the required signature; it
        // touches nothing but an atomic. Re-installing is idempotent.
        let handler = on_signal as extern "C" fn(i32);
        unsafe {
            signal(signum, handler as usize);
        }
    }
}

/// Installs the termination handler for `SIGTERM` and `SIGINT`.
///
/// Idempotent; later calls re-install the same handler. After this,
/// a delivered signal no longer kills the process — callers **must**
/// poll [`triggered`] and shut down themselves.
pub fn install() {
    ffi::install(SIGTERM);
    ffi::install(SIGINT);
}

/// Whether a termination signal has been delivered since [`install`].
pub fn triggered() -> bool {
    TRIGGERED.load(Ordering::SeqCst)
}

/// Raises the flag exactly as a signal would — lets tests and
/// in-process embedders reuse the signal-driven shutdown path.
pub fn trigger_for_shutdown() {
    TRIGGERED.store(true, Ordering::SeqCst);
}

/// Registers the write end of the event loop's self-pipe: from now on
/// a delivered signal also writes one byte there, waking `poll(2)`
/// immediately. Pass the fd from [`crate::sys::WakePipe::write_fd`].
pub fn set_wake_fd(fd: i32) {
    WAKE_FD.store(fd, Ordering::SeqCst);
}

/// Deregisters the wake fd (the event loop is gone; its pipe fds are
/// about to close and must not be written to by a late signal).
pub fn clear_wake_fd() {
    WAKE_FD.store(-1, Ordering::SeqCst);
}

/// Clears the flag (test isolation; a fresh [`crate::Server`] also
/// clears it so a previous run's signal cannot kill the next).
pub fn reset() {
    TRIGGERED.store(false, Ordering::SeqCst);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_lifecycle_round_trips() {
        reset();
        assert!(!triggered());
        trigger_for_shutdown();
        assert!(triggered());
        reset();
        assert!(!triggered());
    }

    #[test]
    fn handler_writes_the_registered_wake_fd() {
        let pipe = crate::sys::WakePipe::new().expect("pipe");
        set_wake_fd(pipe.write_fd());
        ffi::on_signal(SIGTERM);
        let mut fds = [crate::sys::PollFd::new(pipe.read_fd(), crate::sys::POLLIN)];
        assert_eq!(crate::sys::poll(&mut fds, 1000).expect("poll"), 1, "signal must wake the pipe");
        // Clear before the pipe closes so a signal from a concurrent
        // test cannot write a dead fd.
        clear_wake_fd();
        reset();
    }

    #[test]
    fn install_is_idempotent_and_handler_sets_the_flag() {
        install();
        install();
        reset();
        // Invoke the handler directly — delivering a real signal would
        // race other tests in the same process.
        ffi::on_signal(SIGTERM);
        assert!(triggered());
        reset();
    }
}
