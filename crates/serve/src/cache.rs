//! A cost-aware memoizing cache for graph properties.
//!
//! Property computations (spectral SLEM, coreness decomposition, TVD
//! sweeps, flood-based admission) dominate request latency, and the
//! same query arrives over and over. The cache memoizes *typed* results
//! behind [`Arc`] so a decomposition computed for one node answers
//! every other node's coreness query for free.
//!
//! Three properties shape the design:
//!
//! - **Coalescing** — identical concurrent misses collapse into one
//!   computation on the shared panic-isolated [`Pool`]; every waiter
//!   gets the same `Arc`.
//! - **Cost-aware eviction** — each entry remembers what it cost to
//!   compute (wall time) and how big it is. When resident bytes exceed
//!   capacity, the *cheapest-to-recompute* entries go first, ties
//!   broken oldest-touch first; expensive spectral results survive
//!   pressure from cheap lookups.
//! - **Poisoning** — a panic inside a computation poisons *that entry
//!   only*: the panic message is retained, every subsequent request for
//!   the key is answered with the stored failure (a `500` upstream),
//!   and the rest of the cache keeps serving.

use std::any::Any;
use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use socnet_runner::{CancelToken, Metrics, Pool};

use crate::registry::panic_text;

/// How long a coalesced waiter sleeps between cancellation checks.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// A memoized property value: any `Send + Sync` result behind an `Arc`.
pub type CacheValue = Arc<dyn Any + Send + Sync>;

/// One ready entry: the value plus its recompute cost and size.
pub struct CachedEntry {
    /// The memoized value; downcast with [`CachedEntry::value`].
    pub raw: CacheValue,
    /// Wall time the computation took — the recompute cost that drives
    /// eviction order and backs warm/cold speedup accounting.
    pub cost: Duration,
    /// Approximate resident bytes.
    pub bytes: usize,
}

impl CachedEntry {
    /// Downcasts the stored value.
    pub fn value<T: Any + Send + Sync>(&self) -> Option<&T> {
        self.raw.downcast_ref::<T>()
    }
}

impl std::fmt::Debug for CachedEntry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CachedEntry")
            .field("cost", &self.cost)
            .field("bytes", &self.bytes)
            .finish_non_exhaustive()
    }
}

/// A persisted rendered response body — the unit the snapshot store
/// saves and restores. `key` is a full cache key (`body|label|route…`),
/// `cost` is the original compute wall time, carried across restarts so
/// hydrated entries keep their place in cost-aware eviction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StoredBody {
    /// Full cache key of the body entry.
    pub key: String,
    /// The rendered response body, byte-exact.
    pub body: Vec<u8>,
    /// Original compute cost (drives eviction priority after import).
    pub cost: Duration,
}

/// The in-cache value behind a `body|…` key. `hydrated` marks entries
/// that came off disk: only those short-circuit request handling (the
/// warm path); bodies recorded by this process exist for export and are
/// never consulted on the hot path — the typed property entries are.
struct BodyValue {
    body: Vec<u8>,
    hydrated: bool,
}

/// The outcome of one [`PropertyCache::get_or_compute`] call.
pub struct Lookup {
    /// The (shared) entry.
    pub entry: Arc<CachedEntry>,
    /// Whether this call was served from a ready entry.
    pub hit: bool,
    /// Wall time *this caller* spent inside the cache — for a hit,
    /// lock-and-clone; for a miss, the coalesced compute. The warm/cold
    /// speedup assertions compare these, not sleeps.
    pub wall: Duration,
    /// Whether this call arrived while another caller's compute for the
    /// same key was already in flight and waited for it (a coalesced
    /// hit). Always `false` for the owning miss and for ready hits.
    pub coalesced: bool,
}

impl std::fmt::Debug for Lookup {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Lookup")
            .field("entry", &self.entry)
            .field("hit", &self.hit)
            .field("wall", &self.wall)
            .finish()
    }
}

/// Why a lookup failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CacheError {
    /// A previous computation of this key panicked; the entry is
    /// poisoned and keeps answering with the original panic message.
    Poisoned(String),
    /// The computation returned an error (not a panic). The slot is
    /// cleared so a later identical request may retry.
    Failed(String),
    /// The caller's deadline expired before the computation resolved.
    DeadlineExceeded,
    /// The pool is draining; no new computations are accepted.
    Draining,
}

impl std::fmt::Display for CacheError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CacheError::Poisoned(m) => write!(f, "entry poisoned by panic: {m}"),
            CacheError::Failed(m) => write!(f, "computation failed: {m}"),
            CacheError::DeadlineExceeded => write!(f, "deadline expired inside the cache"),
            CacheError::Draining => write!(f, "cache is draining"),
        }
    }
}

impl std::error::Error for CacheError {}

enum Slot {
    /// A computation is in flight on the pool.
    Pending,
    /// Ready to serve.
    Ready { entry: Arc<CachedEntry>, hits: u64, touched: u64 },
    /// A panic happened inside the computation. Sticky: served as an
    /// error until evicted or the whole cache is dropped.
    Poisoned(String),
    /// The computation returned `Err`. Observe-and-remove: the first
    /// caller to see it clears the slot so a retry is possible.
    Failed(String),
}

#[derive(Default)]
struct CacheState {
    slots: HashMap<String, Slot>,
    resident_bytes: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
    poisonings: u64,
    /// Monotonic touch clock for LRU tie-breaking.
    clock: u64,
}

/// A point-in-time summary of cache behaviour.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Ready entries resident now.
    pub entries: usize,
    /// Poisoned entries resident now.
    pub poisoned: usize,
    /// Total bytes across ready entries.
    pub resident_bytes: usize,
    /// Lookups served from a ready entry.
    pub hits: u64,
    /// Lookups that started a computation.
    pub misses: u64,
    /// Entries evicted under byte pressure.
    pub evictions: u64,
    /// Computations that panicked and poisoned their entry.
    pub poisonings: u64,
}

impl CacheStats {
    /// Hits over total lookups, 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

struct Inner {
    state: Mutex<CacheState>,
    resolved: Condvar,
    capacity_bytes: usize,
}

fn lock(inner: &Inner) -> MutexGuard<'_, CacheState> {
    inner.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// The memoizing property cache. Cheap to clone (shared handle).
#[derive(Clone)]
pub struct PropertyCache {
    inner: Arc<Inner>,
}

impl PropertyCache {
    /// A cache that evicts once ready entries exceed `capacity_bytes`
    /// (at least one entry is always retained so progress is possible).
    pub fn new(capacity_bytes: usize) -> PropertyCache {
        PropertyCache {
            inner: Arc::new(Inner {
                state: Mutex::new(CacheState::default()),
                resolved: Condvar::new(),
                capacity_bytes,
            }),
        }
    }

    /// Returns the memoized entry for `key`, computing it on `pool` if
    /// absent. Identical concurrent misses coalesce into one submitted
    /// job; all callers block (bounded by `cancel`) until it resolves.
    ///
    /// `compute` returns the value plus its approximate size in bytes.
    /// If it returns `Err`, the slot is cleared and every waiter gets
    /// [`CacheError::Failed`]. If it *panics*, the entry is poisoned:
    /// this and every future lookup of the key yields
    /// [`CacheError::Poisoned`] with the panic text, and nothing else
    /// in the cache is touched.
    ///
    /// `compute` is `Clone` because a resolved entry can be reclaimed
    /// (operator evict, governor pressure) in the window between the
    /// job landing it and a coalesced waiter waking up; the waiter
    /// then retries the whole lookup as a fresh miss, which may need
    /// to recompute.
    ///
    /// # Errors
    ///
    /// See [`CacheError`].
    pub fn get_or_compute<F>(
        &self,
        key: &str,
        pool: &Pool,
        cancel: &CancelToken,
        compute: F,
    ) -> Result<Lookup, CacheError>
    where
        F: FnOnce() -> Result<(CacheValue, usize), String> + Clone + Send + 'static,
    {
        let start = Instant::now();
        // Bounds the vanished-entry retries, not ordinary waiting: a
        // request only burns an attempt when its freshly computed
        // entry was reclaimed before it could read it.
        const MAX_ATTEMPTS: usize = 8;
        for _attempt in 0..MAX_ATTEMPTS {
            match self.lookup_or_compute_once(key, pool, cancel, compute.clone(), start)? {
                Some(lookup) => return Ok(lookup),
                None => continue,
            }
        }
        Err(CacheError::Failed(
            "entry vanished before it could be read".to_string(),
        ))
    }

    /// One attempt of [`Self::get_or_compute`]: returns `Ok(None)`
    /// when the slot vanished between resolution and our wake-up (the
    /// caller retries as a fresh miss), `Ok(Some(_))` on success.
    fn lookup_or_compute_once<F>(
        &self,
        key: &str,
        pool: &Pool,
        cancel: &CancelToken,
        compute: F,
        start: Instant,
    ) -> Result<Option<Lookup>, CacheError>
    where
        F: FnOnce() -> Result<(CacheValue, usize), String> + Send + 'static,
    {
        let owns_compute = {
            let mut guard = lock(&self.inner);
            // Reborrow so field accesses are disjoint for the borrow
            // checker (slots vs the counters).
            let state = &mut *guard;
            match state.slots.get_mut(key) {
                Some(Slot::Ready { entry, hits, touched }) => {
                    let entry = Arc::clone(entry);
                    *hits += 1;
                    state.clock += 1;
                    *touched = state.clock;
                    state.hits += 1;
                    Metrics::global().incr("cache.hits", 1);
                    return Ok(Some(Lookup {
                        entry,
                        hit: true,
                        wall: start.elapsed(),
                        coalesced: false,
                    }));
                }
                Some(Slot::Poisoned(message)) => {
                    return Err(CacheError::Poisoned(message.clone()));
                }
                Some(Slot::Failed(message)) => {
                    let message = message.clone();
                    state.slots.remove(key);
                    return Err(CacheError::Failed(message));
                }
                Some(Slot::Pending) => {
                    Metrics::global().incr("cache.coalesced", 1);
                    false
                }
                None => {
                    state.slots.insert(key.to_string(), Slot::Pending);
                    state.misses += 1;
                    Metrics::global().incr("cache.misses", 1);
                    true
                }
            }
        };

        if owns_compute {
            let inner = Arc::clone(&self.inner);
            let job_key = key.to_string();
            let submitted = pool.submit(move || {
                let compute_start = Instant::now();
                let outcome = catch_unwind(AssertUnwindSafe(compute));
                let cost = compute_start.elapsed();
                let mut state = lock(&inner);
                match outcome {
                    Ok(Ok((raw, bytes))) => {
                        let entry = Arc::new(CachedEntry { raw, cost, bytes });
                        state.resident_bytes += bytes;
                        state.clock += 1;
                        let touched = state.clock;
                        state.slots.insert(job_key, Slot::Ready { entry, hits: 0, touched });
                        evict_over_capacity(&mut state, inner.capacity_bytes, true);
                        Metrics::global()
                            .gauge_set("cache.resident_bytes", state.resident_bytes as f64);
                    }
                    Ok(Err(message)) => {
                        state.slots.insert(job_key, Slot::Failed(message));
                    }
                    Err(payload) => {
                        state.poisonings += 1;
                        state.slots.insert(job_key, Slot::Poisoned(panic_text(payload.as_ref())));
                        Metrics::global().incr("cache.poisonings", 1);
                    }
                }
                drop(state);
                inner.resolved.notify_all();
            });
            if submitted.is_err() {
                let mut state = lock(&self.inner);
                state.slots.remove(key);
                drop(state);
                self.inner.resolved.notify_all();
                return Err(CacheError::Draining);
            }
        }

        // Wait (as either the submitter or a coalesced waiter) for the
        // slot to resolve.
        let mut guard = lock(&self.inner);
        loop {
            let state = &mut *guard;
            match state.slots.get_mut(key) {
                Some(Slot::Ready { entry, hits, touched }) => {
                    let entry = Arc::clone(entry);
                    if !owns_compute {
                        // The submitter's lookup is the miss itself,
                        // not an extra hit.
                        *hits += 1;
                        state.clock += 1;
                        *touched = state.clock;
                        state.hits += 1;
                        Metrics::global().incr("cache.hits", 1);
                    }
                    return Ok(Some(Lookup {
                        entry,
                        hit: !owns_compute,
                        wall: start.elapsed(),
                        coalesced: !owns_compute,
                    }));
                }
                Some(Slot::Poisoned(message)) => {
                    return Err(CacheError::Poisoned(message.clone()));
                }
                Some(Slot::Failed(message)) => {
                    let message = message.clone();
                    state.slots.remove(key);
                    return Err(CacheError::Failed(message));
                }
                Some(Slot::Pending) => {}
                None => {
                    // Evicted between resolution and our wake-up —
                    // the governor can reclaim any entry, including
                    // one with waiters still en route — or a Failed
                    // slot another waiter consumed. Either way the
                    // caller retries as a fresh miss.
                    return Ok(None);
                }
            }
            if cancel.is_cancelled() {
                return Err(CacheError::DeadlineExceeded);
            }
            let (next, _) = self
                .inner
                .resolved
                .wait_timeout(guard, WAIT_SLICE)
                .unwrap_or_else(|poisoned| poisoned.into_inner());
            guard = next;
        }
    }

    /// Drops the entry for `key` (ready or poisoned). Returns whether
    /// anything was removed.
    pub fn evict(&self, key: &str) -> bool {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        match state.slots.get(key) {
            Some(Slot::Ready { entry, .. }) => {
                debug_assert!(state.resident_bytes >= entry.bytes, "cache byte underflow on evict");
                state.resident_bytes = state.resident_bytes.saturating_sub(entry.bytes);
                state.slots.remove(key);
                state.evictions += 1;
                Metrics::global().incr("cache.evictions", 1);
                Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
                true
            }
            Some(Slot::Poisoned(_)) => {
                state.slots.remove(key);
                true
            }
            _ => false,
        }
    }

    /// Evicts every entry whose key names `label` as its graph — keys
    /// are `kind|label[|params…]` — and returns how many were removed.
    ///
    /// Poisoned entries go too: evicting a graph is how an operator
    /// heals a property poisoned by a worker panic. Pending entries are
    /// left alone (their submitter still owns the slot).
    pub fn evict_for_label(&self, label: &str) -> usize {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        let doomed: Vec<String> = state
            .slots
            .iter()
            .filter(|(key, slot)| {
                key.split('|').nth(1) == Some(label)
                    && matches!(slot, Slot::Ready { .. } | Slot::Poisoned(_))
            })
            .map(|(key, _)| key.clone())
            .collect();
        for key in &doomed {
            if let Some(Slot::Ready { entry, .. }) = state.slots.remove(key) {
                debug_assert!(state.resident_bytes >= entry.bytes, "cache byte underflow on evict");
                state.resident_bytes = state.resident_bytes.saturating_sub(entry.bytes);
                state.evictions += 1;
                Metrics::global().incr("cache.evictions", 1);
            }
        }
        if !doomed.is_empty() {
            Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
        }
        doomed.len()
    }

    /// Records the rendered body of a successful response under `key`
    /// (a `body|label|route…` key). The entry is a normal ready slot —
    /// byte-accounted, cost-ranked for eviction, evicted with its graph
    /// by [`PropertyCache::evict_for_label`] — but it is *not* served
    /// back by this process (`hydrated: false`); it exists so the
    /// drain-time snapshot has byte-exact bodies to persist.
    pub fn record_body(&self, key: &str, body: &[u8], cost: Duration) {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        let bytes = body.len();
        if let Some(Slot::Ready { entry, .. }) = state.slots.get(key) {
            // Re-recording an identical render: refresh nothing, the
            // stored body is already exact.
            if entry.bytes == bytes {
                return;
            }
            debug_assert!(state.resident_bytes >= entry.bytes, "cache byte underflow on re-record");
            state.resident_bytes = state.resident_bytes.saturating_sub(entry.bytes);
        }
        let raw: CacheValue = Arc::new(BodyValue { body: body.to_vec(), hydrated: false });
        let entry = Arc::new(CachedEntry { raw, cost, bytes });
        state.resident_bytes += bytes;
        state.clock += 1;
        let touched = state.clock;
        state.slots.insert(key.to_string(), Slot::Ready { entry, hits: 0, touched });
        evict_over_capacity(state, self.inner.capacity_bytes, true);
        Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
    }

    /// Returns the disk-hydrated body for `key`, if one survived import
    /// and eviction. Counts as a cache hit (it is one — the work was
    /// done by the pre-restart process) and as a `store.warm_hits`.
    /// Bodies recorded by *this* process return `None`: the live typed
    /// entries answer those, with their own hit accounting.
    pub fn hydrated_body(&self, key: &str) -> Option<Vec<u8>> {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        match state.slots.get_mut(key) {
            Some(Slot::Ready { entry, hits, touched }) => {
                let body = entry.raw.downcast_ref::<BodyValue>()?;
                if !body.hydrated {
                    return None;
                }
                let bytes = body.body.clone();
                *hits += 1;
                state.clock += 1;
                *touched = state.clock;
                state.hits += 1;
                Metrics::global().incr("cache.hits", 1);
                Metrics::global().incr("store.warm_hits", 1);
                Some(bytes)
            }
            _ => None,
        }
    }

    /// Every body entry currently resident, sorted by key — what the
    /// drain-time snapshot persists. Includes entries this process
    /// recorded *and* entries it hydrated (still warm, still valid).
    pub fn export_bodies(&self) -> Vec<StoredBody> {
        let state = lock(&self.inner);
        let mut bodies: Vec<StoredBody> = state
            .slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready { entry, .. } => entry.raw.downcast_ref::<BodyValue>().map(|b| {
                    StoredBody { key: key.clone(), body: b.body.clone(), cost: entry.cost }
                }),
                _ => None,
            })
            .collect();
        bodies.sort_by(|a, b| a.key.cmp(&b.key));
        bodies
    }

    /// Installs snapshot bodies as hydrated entries (`hydrated: true`,
    /// so [`PropertyCache::hydrated_body`] serves them). Resident bytes
    /// are re-accounted from the actual body lengths and capacity
    /// eviction runs afterwards, so an oversized snapshot cannot blow
    /// the byte budget. Returns how many entries were installed (before
    /// any capacity eviction).
    pub fn import_bodies(&self, bodies: Vec<StoredBody>) -> usize {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        let mut installed = 0;
        for stored in bodies {
            // Never clobber a slot this process already owns.
            if state.slots.contains_key(&stored.key) {
                continue;
            }
            let bytes = stored.body.len();
            let raw: CacheValue = Arc::new(BodyValue { body: stored.body, hydrated: true });
            let entry = Arc::new(CachedEntry { raw, cost: stored.cost, bytes });
            state.resident_bytes += bytes;
            state.clock += 1;
            let touched = state.clock;
            state.slots.insert(stored.key, Slot::Ready { entry, hits: 0, touched });
            installed += 1;
        }
        evict_over_capacity(state, self.inner.capacity_bytes, true);
        Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
        installed
    }

    /// Evicts ready entries — cheapest recompute cost first, the same
    /// order capacity pressure uses — until at least `bytes` have been
    /// freed (or nothing evictable remains). The governor's rung 1:
    /// recompute-cheap property bodies go before any graph does.
    /// Returns the bytes actually freed.
    pub fn reclaim(&self, bytes: usize) -> usize {
        let mut guard = lock(&self.inner);
        let state = &mut *guard;
        let before = state.resident_bytes;
        // No newest-entry exemption here: capacity eviction spares the
        // entry being inserted so an oversized result can land, but a
        // governor reclaim targets *bytes* and every body is
        // recompute-cheap by definition of rung 1.
        evict_over_capacity(state, before.saturating_sub(bytes), false);
        let freed = before - state.resident_bytes;
        if freed > 0 {
            Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
        }
        freed
    }

    /// Recomputes the `cache.resident_bytes` gauge from the live state.
    /// The evict paths already keep it fresh; the evict *route* calls
    /// this after compound registry + cache eviction so a metrics
    /// snapshot taken immediately afterwards is consistent.
    pub fn recompute_gauges(&self) {
        let state = lock(&self.inner);
        Metrics::global().gauge_set("cache.resident_bytes", state.resident_bytes as f64);
    }

    /// A point-in-time stats snapshot.
    pub fn stats(&self) -> CacheStats {
        let state = lock(&self.inner);
        CacheStats {
            entries: state
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Ready { .. }))
                .count(),
            poisoned: state
                .slots
                .values()
                .filter(|s| matches!(s, Slot::Poisoned(_)))
                .count(),
            resident_bytes: state.resident_bytes,
            hits: state.hits,
            misses: state.misses,
            evictions: state.evictions,
            poisonings: state.poisonings,
        }
    }
}

/// Evicts ready entries, cheapest recompute cost first (ties: oldest
/// touch first), until resident bytes fit `capacity`. With
/// `exempt_newest` the most recently installed entry is spared while
/// anything else can go, so a single oversized result still lands;
/// governor reclaims pass `false` — they target bytes, not capacity.
fn evict_over_capacity(state: &mut CacheState, capacity: usize, exempt_newest: bool) {
    while state.resident_bytes > capacity {
        let newest = state.clock;
        let victim = state
            .slots
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Ready { entry, touched, .. }
                    if !(exempt_newest && *touched == newest) =>
                {
                    Some((key.clone(), entry.cost, *touched, entry.bytes))
                }
                _ => None,
            })
            .min_by(|a, b| a.1.cmp(&b.1).then(a.2.cmp(&b.2)));
        let Some((key, _, _, bytes)) = victim else {
            break;
        };
        state.slots.remove(&key);
        debug_assert!(state.resident_bytes >= bytes, "cache byte underflow on capacity evict");
        state.resident_bytes = state.resident_bytes.saturating_sub(bytes);
        state.evictions += 1;
        Metrics::global().incr("cache.evictions", 1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn value_of(n: u64) -> CacheValue {
        Arc::new(n)
    }

    fn read(entry: &CachedEntry) -> u64 {
        *entry.value::<u64>().expect("stored a u64")
    }

    fn compute_ok(
        n: u64,
        bytes: usize,
    ) -> impl FnOnce() -> Result<(CacheValue, usize), String> + Clone {
        move || Ok((value_of(n), bytes))
    }

    #[test]
    fn memoizes_and_counts_hits() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Pool::new(1);
        let cancel = CancelToken::new();
        let calls = Arc::new(AtomicUsize::new(0));
        for round in 0..3 {
            let calls = calls.clone();
            let lookup = cache
                .get_or_compute("slem|k", &pool, &cancel, move || {
                    calls.fetch_add(1, Ordering::SeqCst);
                    Ok((value_of(41), 100))
                })
                .expect("resolves");
            assert_eq!(read(&lookup.entry), 41);
            assert_eq!(lookup.hit, round > 0);
        }
        assert_eq!(calls.load(Ordering::SeqCst), 1, "computed once");
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses), (2, 1));
        assert!((stats.hit_rate() - 2.0 / 3.0).abs() < 1e-12);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn concurrent_identical_misses_coalesce() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Arc::new(Pool::new(2));
        let calls = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..6)
            .map(|_| {
                let cache = cache.clone();
                let pool = Arc::clone(&pool);
                let calls = calls.clone();
                std::thread::spawn(move || {
                    let lookup = cache
                        .get_or_compute("expansion|k", &pool, &CancelToken::new(), move || {
                            calls.fetch_add(1, Ordering::SeqCst);
                            std::thread::sleep(Duration::from_millis(40));
                            Ok((value_of(7), 64))
                        })
                        .expect("resolves");
                    (read(&lookup.entry), Arc::as_ptr(&lookup.entry) as usize)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().expect("join")).collect();
        assert_eq!(calls.load(Ordering::SeqCst), 1, "exactly one computation ran");
        assert!(results.iter().all(|(v, _)| *v == 7));
        let first_ptr = results[0].1;
        assert!(results.iter().all(|(_, p)| *p == first_ptr), "all share one Arc");
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn panic_poisons_only_its_entry() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Pool::new(1);
        let cancel = CancelToken::new();
        let err = cache
            .get_or_compute("mixing|bad", &pool, &cancel, || {
                panic!("kernel blew up: negative probability")
            })
            .expect_err("poisoned");
        assert!(matches!(&err, CacheError::Poisoned(m) if m.contains("negative probability")));
        // The poisoned entry is sticky and does NOT recompute.
        let err2 = cache
            .get_or_compute("mixing|bad", &pool, &cancel, || {
                panic!("this closure must never run")
            })
            .expect_err("still poisoned");
        assert!(matches!(err2, CacheError::Poisoned(_)));
        // Other keys are untouched.
        let ok = cache
            .get_or_compute("mixing|good", &pool, &cancel, compute_ok(5, 10))
            .expect("other keys still work");
        assert_eq!(read(&ok.entry), 5);
        let stats = cache.stats();
        assert_eq!(stats.poisonings, 1);
        assert_eq!(stats.poisoned, 1);
        // Evicting the poisoned key clears the way for a recompute.
        assert!(cache.evict("mixing|bad"));
        let healed = cache
            .get_or_compute("mixing|bad", &pool, &cancel, compute_ok(9, 10))
            .expect("recomputes after evict");
        assert_eq!(read(&healed.entry), 9);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn failed_compute_clears_the_slot_for_retry() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Pool::new(1);
        let cancel = CancelToken::new();
        let err = cache
            .get_or_compute("cores|k", &pool, &cancel, || Err("graph has no edges".to_string()))
            .expect_err("fails");
        assert!(matches!(&err, CacheError::Failed(m) if m.contains("no edges")));
        let ok = cache
            .get_or_compute("cores|k", &pool, &cancel, compute_ok(3, 8))
            .expect("retry allowed");
        assert_eq!(read(&ok.entry), 3);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn eviction_is_cost_aware_cheapest_first() {
        let cache = PropertyCache::new(250);
        let pool = Pool::new(1);
        let cancel = CancelToken::new();
        // An expensive entry (simulated by a slow compute) and a cheap
        // one, then pressure from a third: the cheap one must go.
        cache
            .get_or_compute("expensive", &pool, &cancel, || {
                std::thread::sleep(Duration::from_millis(60));
                Ok((value_of(1), 100))
            })
            .expect("resolves");
        cache
            .get_or_compute("cheap", &pool, &cancel, compute_ok(2, 100))
            .expect("resolves");
        cache
            .get_or_compute("pressure", &pool, &cancel, compute_ok(3, 100))
            .expect("resolves");
        let stats = cache.stats();
        assert!(stats.resident_bytes <= 250, "under capacity after eviction");
        assert_eq!(stats.evictions, 1);
        // "expensive" survived; "cheap" was evicted and recomputes.
        let survivors = Arc::new(AtomicUsize::new(0));
        {
            let survivors = survivors.clone();
            cache
                .get_or_compute("expensive", &pool, &cancel, move || {
                    survivors.fetch_add(1, Ordering::SeqCst);
                    Ok((value_of(0), 1))
                })
                .expect("resolves");
        }
        assert_eq!(survivors.load(Ordering::SeqCst), 0, "expensive entry still resident");
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn warm_lookup_is_at_least_ten_times_cheaper_by_cache_accounting() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Pool::new(1);
        let cancel = CancelToken::new();
        let cold = cache
            .get_or_compute("speedup", &pool, &cancel, || {
                std::thread::sleep(Duration::from_millis(50));
                Ok((value_of(1), 16))
            })
            .expect("cold resolves");
        assert!(!cold.hit);
        let warm = cache
            .get_or_compute("speedup", &pool, &cancel, || {
                panic!("warm path must not recompute")
            })
            .expect("warm resolves");
        assert!(warm.hit);
        // The cache's own cost accounting: entry.cost is the recompute
        // price, warm.wall is what the hit actually cost this caller.
        assert!(warm.entry.cost >= Duration::from_millis(50));
        assert!(
            warm.wall * 10 <= cold.wall,
            "warm ({:?}) must be >=10x cheaper than cold ({:?})",
            warm.wall,
            cold.wall
        );
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn recorded_bodies_export_but_do_not_serve_warm() {
        let cache = PropertyCache::new(1 << 20);
        cache.record_body("body|g@1#1|mixing|eps=0.1", b"{\"slem\":0.9}", Duration::from_millis(5));
        // Re-recording the identical render is a no-op.
        cache.record_body("body|g@1#1|mixing|eps=0.1", b"{\"slem\":0.9}", Duration::from_millis(5));
        assert_eq!(
            cache.hydrated_body("body|g@1#1|mixing|eps=0.1"),
            None,
            "own recordings are not the warm path"
        );
        let exported = cache.export_bodies();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].body, b"{\"slem\":0.9}");
        assert_eq!(exported[0].cost, Duration::from_millis(5));
        // Body entries are byte-accounted like any other.
        assert_eq!(cache.stats().resident_bytes, exported[0].body.len());
    }

    #[test]
    fn imported_bodies_serve_warm_and_reexport_byte_identical() {
        let source = PropertyCache::new(1 << 20);
        source.record_body("body|g@1#1|cores", b"{\"k\":7}", Duration::from_millis(3));
        source.record_body("body|g@1#1|mixing|eps=0.1", b"{\"slem\":0.9}", Duration::from_millis(9));
        let exported = source.export_bodies();

        let restarted = PropertyCache::new(1 << 20);
        assert_eq!(restarted.import_bodies(exported.clone()), 2);
        assert_eq!(
            restarted.hydrated_body("body|g@1#1|cores").expect("warm"),
            b"{\"k\":7}".to_vec()
        );
        assert_eq!(restarted.hydrated_body("body|g@1#1|missing"), None);
        // Hydrated hit counts as a hit in the stats.
        assert_eq!(restarted.stats().hits, 1);
        // Resident bytes re-accounted from actual body lengths.
        let expected: usize = exported.iter().map(|b| b.body.len()).sum();
        assert_eq!(restarted.stats().resident_bytes, expected);
        // Hydrated entries re-export byte-identically (still sorted).
        assert_eq!(restarted.export_bodies(), exported);
    }

    #[test]
    fn import_respects_capacity_and_evict_for_label_drops_bodies() {
        let tiny = PropertyCache::new(10);
        let n = tiny.import_bodies(vec![
            StoredBody {
                key: "body|g@1#1|a".into(),
                body: vec![0u8; 8],
                cost: Duration::from_millis(1),
            },
            StoredBody {
                key: "body|g@1#1|b".into(),
                body: vec![0u8; 8],
                cost: Duration::from_millis(2),
            },
        ]);
        assert_eq!(n, 2, "both installed before capacity pass");
        assert!(tiny.stats().resident_bytes <= 10, "capacity enforced after import");
        // Evicting the graph label sweeps body entries with it.
        let cache = PropertyCache::new(1 << 20);
        cache.record_body("body|g@1#1|a", b"xx", Duration::from_millis(1));
        cache.import_bodies(vec![StoredBody {
            key: "body|g@1#1|b".into(),
            body: b"yy".to_vec(),
            cost: Duration::from_millis(1),
        }]);
        assert_eq!(cache.evict_for_label("g@1#1"), 2);
        assert_eq!(cache.stats().resident_bytes, 0);
        assert!(cache.export_bodies().is_empty());
    }

    #[test]
    fn draining_pool_is_reported_not_wedged() {
        let cache = PropertyCache::new(1 << 20);
        let pool = Pool::new(1);
        pool.drain(Duration::from_secs(1));
        let err = cache
            .get_or_compute("late", &pool, &CancelToken::new(), compute_ok(1, 1))
            .expect_err("pool is closed");
        assert_eq!(err, CacheError::Draining);
        // The Pending slot was rolled back — nothing is wedged.
        assert_eq!(cache.stats().entries, 0);
    }
}
