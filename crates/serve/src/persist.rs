//! Warm-start persistence: snapshot the serve caches at drain, restore
//! them at boot.
//!
//! The property cache holds results that are expensive to compute and
//! fully deterministic for a fixed (graph, seed, params) — so a restart
//! throwing them away is pure waste. This module encodes the serve
//! stack's state into `socnet-store` snapshots:
//!
//! - every **rendered body** the server produced (key + compute cost +
//!   byte-exact JSON), so the restarted process answers repeat queries
//!   with the exact bytes the old process computed, under
//!   `X-Cache: warm-disk`;
//! - the **graph registry metadata** (what was resident, how big, how
//!   hot), so `/datasets` can report what the pre-restart process was
//!   serving without eagerly rebuilding anything.
//!
//! Restores are paranoid by construction. The snapshot manifest carries
//! the git revision and a fingerprint of the dataset registry; either
//! changing means the cached bodies may describe graphs this binary
//! would generate differently, so the snapshot is rejected and the
//! server boots cold. Rejected, truncated, or bit-flipped snapshots are
//! *quarantined* (renamed aside), counted in `store.quarantined`, and
//! logged — hydration never panics and never fails the boot.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use socnet_gen::Dataset;
use socnet_runner::{git_rev, obs, Metrics};
use socnet_store::{
    quarantine, read_snapshot_expecting, write_snapshot, Expected, LoadError, Record, Snapshot,
    SnapshotMeta, StoreDir,
};

use crate::cache::{PropertyCache, StoredBody};
use crate::registry::{GraphMeta, GraphRegistry};

/// Name of the serve snapshot inside a store directory (`serve.snap`).
pub const SNAPSHOT_NAME: &str = "serve";

/// CRC-32 fingerprint of the dataset registry: names, paper sizes, and
/// generator configurations. Any change to what a dataset name *means*
/// changes this hash and invalidates old snapshots.
pub fn registry_hash() -> String {
    let mut text = String::new();
    for dataset in Dataset::ALL {
        let spec = dataset.spec();
        text.push_str(spec.name);
        text.push_str(&format!(":{}:{}:{:?};", spec.paper_nodes, spec.paper_edges, spec.kind));
    }
    format!("{:08x}", socnet_store::crc32(text.as_bytes()))
}

/// The manifest values a snapshot must match to be hydrated by this
/// process: current git revision + current registry fingerprint.
pub fn expected() -> Expected {
    Expected { git_rev: git_rev(), registry_hash: registry_hash() }
}

/// What [`flush`] wrote.
#[derive(Debug)]
pub struct FlushReport {
    /// The snapshot file.
    pub path: PathBuf,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Body records persisted.
    pub bodies: usize,
    /// Graph-metadata records persisted.
    pub graphs: usize,
}

/// How [`hydrate`] went.
#[derive(Debug)]
pub struct HydrateReport {
    /// `warm` (snapshot restored), `cold` (no snapshot), or
    /// `quarantined` (snapshot rejected and set aside).
    pub outcome: &'static str,
    /// Body entries installed into the cache.
    pub bodies: usize,
    /// Graph-metadata rows remembered by the registry.
    pub graphs: usize,
    /// Where the rejected snapshot went, when one was quarantined.
    pub quarantined_to: Option<PathBuf>,
}

fn encode_body(body: &StoredBody) -> Record {
    Record::new("body", &[&body.key, &body.cost.as_micros().to_string()], &body.body)
}

fn encode_graph(meta: &GraphMeta) -> Record {
    Record::new(
        "graph",
        &[
            meta.dataset.name(),
            &meta.scale.to_string(),
            &meta.seed.to_string(),
            &meta.approx_bytes.to_string(),
            &meta.load_wall.as_micros().to_string(),
            &meta.hits.to_string(),
        ],
        b"",
    )
}

fn dataset_by_name(name: &str) -> Option<Dataset> {
    Dataset::ALL.iter().copied().find(|d| d.name() == name)
}

fn micros(text: &str) -> Result<Duration, String> {
    let us: u64 = text.parse().map_err(|_| format!("bad duration {text:?}"))?;
    Ok(Duration::from_micros(us))
}

/// Decodes snapshot records back into cache bodies and registry rows.
/// Any malformed record condemns the whole snapshot — the store's
/// checksums mean a bad record is a logic or version mismatch, not a
/// disk flip, and partial hydration would be harder to reason about
/// than a cold boot.
fn decode_records(records: &[Record]) -> Result<(Vec<StoredBody>, Vec<GraphMeta>), String> {
    let mut bodies = Vec::new();
    let mut graphs = Vec::new();
    for record in records {
        match record.kind.as_str() {
            "body" => {
                let [key, cost] = record.fields.as_slice() else {
                    return Err(format!("body record has {} fields, want 2", record.fields.len()));
                };
                bodies.push(StoredBody {
                    key: key.clone(),
                    body: record.body.clone(),
                    cost: micros(cost)?,
                });
            }
            "graph" => {
                let [name, scale, seed, bytes, wall, hits] = record.fields.as_slice() else {
                    return Err(format!("graph record has {} fields, want 6", record.fields.len()));
                };
                let dataset = dataset_by_name(name)
                    .ok_or_else(|| format!("graph record names unknown dataset {name:?}"))?;
                graphs.push(GraphMeta {
                    dataset,
                    scale: scale.parse().map_err(|_| format!("bad scale {scale:?}"))?,
                    seed: seed.parse().map_err(|_| format!("bad seed {seed:?}"))?,
                    approx_bytes: bytes.parse().map_err(|_| format!("bad bytes {bytes:?}"))?,
                    load_wall: micros(wall)?,
                    hits: hits.parse().map_err(|_| format!("bad hits {hits:?}"))?,
                });
            }
            other => return Err(format!("unknown record kind {other:?}")),
        }
    }
    Ok((bodies, graphs))
}

/// Persists the cache's body entries and the registry's metadata as the
/// store's `serve` snapshot (atomic write; readers see old or new,
/// never a torn file).
///
/// # Errors
///
/// Any I/O error from creating the directory or writing the snapshot.
pub fn flush(dir: &Path, cache: &PropertyCache, registry: &GraphRegistry) -> io::Result<FlushReport> {
    let bodies = cache.export_bodies();
    let graphs = registry.export_meta();
    let mut records = Vec::with_capacity(bodies.len() + graphs.len());
    records.extend(bodies.iter().map(encode_body));
    records.extend(graphs.iter().map(encode_graph));
    let snapshot = Snapshot {
        meta: SnapshotMeta::new(&git_rev(), &registry_hash()),
        records,
    };
    std::fs::create_dir_all(dir)?;
    let path = StoreDir::new(dir).snapshot_path(SNAPSHOT_NAME);
    let bytes = write_snapshot(&path, &snapshot)?;
    Metrics::global().gauge_set("store.bytes", bytes as f64);
    obs::info(
        "store.flushed",
        &[
            ("path", path.display().to_string().into()),
            ("bytes", bytes.into()),
            ("bodies", (bodies.len() as u64).into()),
            ("graphs", (graphs.len() as u64).into()),
        ],
    );
    Ok(FlushReport { path, bytes, bodies: bodies.len(), graphs: graphs.len() })
}

/// Restores the `serve` snapshot from `dir`, if one exists and matches
/// this process (same git revision, same dataset registry).
///
/// Never fails the boot: a missing snapshot is a clean cold start; a
/// corrupt, truncated, or mismatched one is quarantined (renamed to
/// `serve.snap.quarantined`), counted, logged at warn, and then the
/// boot proceeds cold.
pub fn hydrate(dir: &Path, cache: &PropertyCache, registry: &GraphRegistry) -> HydrateReport {
    let path = StoreDir::new(dir).snapshot_path(SNAPSHOT_NAME);
    let rejected = |reason: String| {
        Metrics::global().incr("store.quarantined", 1);
        let quarantined_to = quarantine(&path).ok();
        obs::warn(
            "store.quarantined",
            &[
                ("path", path.display().to_string().into()),
                ("reason", reason.into()),
                (
                    "moved_to",
                    quarantined_to
                        .as_deref()
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "unmoved".to_string())
                        .into(),
                ),
            ],
        );
        HydrateReport { outcome: "quarantined", bodies: 0, graphs: 0, quarantined_to }
    };
    match read_snapshot_expecting(&path, &expected()) {
        Ok(snapshot) => match decode_records(&snapshot.records) {
            Ok((bodies, graphs)) => {
                let total_bytes: u64 = bodies.iter().map(|b| b.body.len() as u64).sum();
                let installed = cache.import_bodies(bodies);
                let remembered = registry.import_meta(graphs);
                Metrics::global().incr("store.hydrated", 1);
                Metrics::global().gauge_set("store.bytes", total_bytes as f64);
                obs::info(
                    "store.hydrated",
                    &[
                        ("path", path.display().to_string().into()),
                        ("bodies", (installed as u64).into()),
                        ("graphs", (remembered as u64).into()),
                        ("bytes", total_bytes.into()),
                    ],
                );
                HydrateReport {
                    outcome: "warm",
                    bodies: installed,
                    graphs: remembered,
                    quarantined_to: None,
                }
            }
            Err(reason) => rejected(reason),
        },
        Err(LoadError::Missing) => {
            obs::debug("store.cold", &[("path", path.display().to_string().into())]);
            HydrateReport { outcome: "cold", bodies: 0, graphs: 0, quarantined_to: None }
        }
        Err(err) => rejected(err.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("socnet-serve-persist-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    #[test]
    fn registry_hash_is_stable_and_hex() {
        let a = registry_hash();
        let b = registry_hash();
        assert_eq!(a, b);
        assert_eq!(a.len(), 8);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn flush_then_hydrate_round_trips_bodies_and_graph_meta() {
        let dir = scratch("roundtrip");
        let cache = PropertyCache::new(1 << 20);
        cache.record_body("body|g@0.05#42|cores|n=3", b"{\"coreness\":4}", Duration::from_millis(7));
        let registry = GraphRegistry::new();
        registry
            .get_or_load(
                &crate::registry::GraphKey::new(Dataset::RiceGrad, 0.05, 42),
                &socnet_runner::CancelToken::new(),
            )
            .expect("load");
        let report = flush(&dir, &cache, &registry).expect("flush");
        assert_eq!((report.bodies, report.graphs), (1, 1));
        assert!(report.path.is_file());

        let cache2 = PropertyCache::new(1 << 20);
        let registry2 = GraphRegistry::new();
        let hydrated = hydrate(&dir, &cache2, &registry2);
        assert_eq!(hydrated.outcome, "warm");
        assert_eq!((hydrated.bodies, hydrated.graphs), (1, 1));
        assert_eq!(
            cache2.hydrated_body("body|g@0.05#42|cores|n=3").expect("warm body"),
            b"{\"coreness\":4}".to_vec()
        );
        let remembered = registry2.remembered();
        assert_eq!(remembered.len(), 1);
        assert_eq!(remembered[0].label(), "Rice-grad@0.05#42");
        assert!(registry2.is_empty(), "hydration must not eagerly rebuild graphs");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_snapshot_is_a_cold_boot() {
        let dir = scratch("cold");
        let report = hydrate(&dir, &PropertyCache::new(1024), &GraphRegistry::new());
        assert_eq!(report.outcome, "cold");
        assert!(report.quarantined_to.is_none());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn corrupt_snapshot_is_quarantined_and_boot_is_cold() {
        let dir = scratch("corrupt");
        let path = StoreDir::new(&dir).snapshot_path(SNAPSHOT_NAME);
        std::fs::write(&path, b"socnet-store-v1\ngarbage that is not frames\n").expect("write");
        let cache = PropertyCache::new(1024);
        let report = hydrate(&dir, &cache, &GraphRegistry::new());
        assert_eq!(report.outcome, "quarantined");
        let moved = report.quarantined_to.expect("moved aside");
        assert!(moved.is_file());
        assert!(!path.exists(), "live snapshot must be gone after quarantine");
        assert_eq!(cache.stats().entries, 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unknown_record_kind_condemns_the_snapshot() {
        let dir = scratch("unknown-kind");
        let snapshot = Snapshot {
            meta: SnapshotMeta::new(&git_rev(), &registry_hash()),
            records: vec![Record::new("exotic", &["x"], b"")],
        };
        let path = StoreDir::new(&dir).snapshot_path(SNAPSHOT_NAME);
        write_snapshot(&path, &snapshot).expect("write");
        let report = hydrate(&dir, &PropertyCache::new(1024), &GraphRegistry::new());
        assert_eq!(report.outcome, "quarantined");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn rev_mismatch_is_rejected_not_hydrated() {
        let dir = scratch("rev-mismatch");
        let snapshot = Snapshot {
            meta: SnapshotMeta::new("someone-elses-rev", &registry_hash()),
            records: vec![Record::new("body", &["body|k", "5"], b"stale")],
        };
        let path = StoreDir::new(&dir).snapshot_path(SNAPSHOT_NAME);
        write_snapshot(&path, &snapshot).expect("write");
        let cache = PropertyCache::new(1024);
        let report = hydrate(&dir, &cache, &GraphRegistry::new());
        assert_eq!(report.outcome, "quarantined");
        assert_eq!(cache.hydrated_body("body|k"), None, "stale body must not serve");
        std::fs::remove_dir_all(dir).ok();
    }
}
