//! A minimal `poll(2)` + self-pipe shim without a libc crate.
//!
//! The event-loop front end needs exactly two things the standard
//! library does not expose: readiness multiplexing over many sockets
//! (`poll(2)`) and a file descriptor another thread — or a signal
//! handler — can write to in order to wake the loop (`pipe(2)` plus
//! `fcntl(2)` to make it non-blocking). Like [`crate::signal`], this
//! module declares the handful of C entry points it needs from the libc
//! `std` already links instead of pulling in a dependency, and wraps
//! them in a safe API: [`poll`] over a slice of [`PollFd`], and
//! [`WakePipe`] for the classic self-pipe trick.
//!
//! Everything here is Linux/POSIX; the serving stack already assumes as
//! much (see the signal shim). This is the second scoped exception to
//! the crate's `deny(unsafe_code)`.

use std::io;

/// Readable data is available (or a peer hang-up will read as EOF).
pub const POLLIN: i16 = 0x001;
/// Writing will not block.
pub const POLLOUT: i16 = 0x004;
/// Error condition (revents only).
pub const POLLERR: i16 = 0x008;
/// Peer hung up (revents only).
pub const POLLHUP: i16 = 0x010;
/// The fd is not open (revents only).
pub const POLLNVAL: i16 = 0x020;

/// One entry of the `poll(2)` interest set, ABI-compatible with the C
/// `struct pollfd`.
#[repr(C)]
#[derive(Debug, Clone, Copy)]
pub struct PollFd {
    /// The file descriptor to watch (negative entries are ignored by
    /// the kernel — handy for keeping slot positions stable).
    pub fd: i32,
    /// Requested events ([`POLLIN`] | [`POLLOUT`]).
    pub events: i16,
    /// Returned events, filled by [`poll`].
    pub revents: i16,
}

impl PollFd {
    /// An interest-set entry for `fd` watching `events`.
    pub fn new(fd: i32, events: i16) -> PollFd {
        PollFd { fd, events, revents: 0 }
    }

    /// Whether the kernel reported any of `mask` (after a [`poll`]).
    pub fn has(&self, mask: i16) -> bool {
        self.revents & mask != 0
    }

    /// Whether the kernel reported an error-ish condition: `POLLERR`,
    /// `POLLHUP`, or `POLLNVAL`.
    pub fn failed(&self) -> bool {
        self.has(POLLERR | POLLHUP | POLLNVAL)
    }
}

#[allow(unsafe_code)]
mod ffi {
    use super::PollFd;

    extern "C" {
        pub fn poll(fds: *mut PollFd, nfds: u64, timeout: i32) -> i32;
        pub fn pipe(fds: *mut i32) -> i32;
        pub fn fcntl(fd: i32, cmd: i32, arg: i32) -> i32;
        pub fn close(fd: i32) -> i32;
        pub fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        pub fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    }

    /// `F_SETFL` on Linux.
    pub const F_SETFL: i32 = 4;
    /// `O_NONBLOCK` on Linux.
    pub const O_NONBLOCK: i32 = 0o4000;

    /// SAFETY wrapper: `fds` is a valid, exclusively borrowed slice and
    /// the kernel writes only `revents` within it.
    pub fn poll_slice(fds: &mut [PollFd], timeout_ms: i32) -> i32 {
        unsafe { poll(fds.as_mut_ptr(), fds.len() as u64, timeout_ms) }
    }

    /// SAFETY wrapper: `out` is a valid 2-element array the kernel
    /// fills with the read and write ends.
    pub fn pipe_pair(out: &mut [i32; 2]) -> i32 {
        unsafe { pipe(out.as_mut_ptr()) }
    }

    /// SAFETY wrapper: plain fd-only syscalls.
    pub fn set_nonblocking(fd: i32) -> i32 {
        unsafe { fcntl(fd, F_SETFL, O_NONBLOCK) }
    }

    pub fn close_fd(fd: i32) {
        unsafe {
            close(fd);
        }
    }

    pub fn write_byte(fd: i32) -> isize {
        let byte = [1u8];
        unsafe { write(fd, byte.as_ptr(), 1) }
    }

    pub fn read_into(fd: i32, buf: &mut [u8]) -> isize {
        unsafe { read(fd, buf.as_mut_ptr(), buf.len()) }
    }
}

/// Blocks until at least one fd in `fds` is ready, the timeout expires,
/// or a signal interrupts the wait. Returns how many entries have
/// non-zero `revents` (0 on timeout or `EINTR` — callers loop anyway,
/// so an interrupted wait is reported as an empty wake-up, which also
/// lets the caller notice a signal-triggered shutdown promptly).
///
/// # Errors
///
/// Any `poll(2)` failure other than `EINTR`.
pub fn poll(fds: &mut [PollFd], timeout_ms: i32) -> io::Result<usize> {
    let n = ffi::poll_slice(fds, timeout_ms);
    if n < 0 {
        let err = io::Error::last_os_error();
        if err.kind() == io::ErrorKind::Interrupted {
            return Ok(0);
        }
        return Err(err);
    }
    Ok(n as usize)
}

/// A non-blocking self-pipe: any thread (or an async-signal-safe
/// handler) calls [`WakePipe::wake`]; the event loop polls
/// [`WakePipe::read_fd`] for `POLLIN` and calls [`WakePipe::drain`]
/// when it fires. Multiple wakes between drains coalesce — the pipe
/// carries "something happened", not a count.
#[derive(Debug)]
pub struct WakePipe {
    read_fd: i32,
    write_fd: i32,
}

impl WakePipe {
    /// Creates the pipe with both ends non-blocking (a full pipe must
    /// drop wakes, never block a waker — the loop is about to wake
    /// anyway).
    ///
    /// # Errors
    ///
    /// Any `pipe(2)`/`fcntl(2)` failure.
    pub fn new() -> io::Result<WakePipe> {
        let mut fds = [0i32; 2];
        if ffi::pipe_pair(&mut fds) != 0 {
            return Err(io::Error::last_os_error());
        }
        for fd in fds {
            if ffi::set_nonblocking(fd) != 0 {
                let err = io::Error::last_os_error();
                ffi::close_fd(fds[0]);
                ffi::close_fd(fds[1]);
                return Err(err);
            }
        }
        Ok(WakePipe { read_fd: fds[0], write_fd: fds[1] })
    }

    /// The fd the event loop registers for `POLLIN`.
    pub fn read_fd(&self) -> i32 {
        self.read_fd
    }

    /// The fd wakers write to — handed to [`crate::signal::set_wake_fd`]
    /// so a `SIGTERM` wakes the loop instantly instead of at the next
    /// poll timeout.
    pub fn write_fd(&self) -> i32 {
        self.write_fd
    }

    /// Wakes the poller. Never blocks: a full pipe (`EAGAIN`) means a
    /// wake is already pending, which is all this call promises.
    pub fn wake(&self) {
        ffi::write_byte(self.write_fd);
    }

    /// Empties the pipe so the next [`poll`] sleeps again.
    pub fn drain(&self) {
        let mut buf = [0u8; 64];
        while ffi::read_into(self.read_fd, &mut buf) > 0 {}
    }
}

impl Drop for WakePipe {
    fn drop(&mut self) {
        ffi::close_fd(self.read_fd);
        ffi::close_fd(self.write_fd);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poll_times_out_on_a_quiet_pipe() {
        let pipe = WakePipe::new().expect("pipe");
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll(&mut fds, 10).expect("poll");
        assert_eq!(n, 0, "nothing was written, so nothing is ready");
        assert!(!fds[0].has(POLLIN));
    }

    #[test]
    fn wake_makes_the_read_end_ready_and_drain_resets_it() {
        let pipe = WakePipe::new().expect("pipe");
        pipe.wake();
        pipe.wake(); // coalesces, must not block
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(fds[0].has(POLLIN));
        pipe.drain();
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        assert_eq!(poll(&mut fds, 10).expect("poll"), 0, "drained pipe is quiet");
    }

    #[test]
    fn wake_from_another_thread_is_observed() {
        let pipe = std::sync::Arc::new(WakePipe::new().expect("pipe"));
        let waker = std::sync::Arc::clone(&pipe);
        let handle = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(20));
            waker.wake();
        });
        let mut fds = [PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll(&mut fds, 5000).expect("poll");
        assert_eq!(n, 1, "the cross-thread wake must be seen");
        handle.join().expect("waker thread");
    }

    #[test]
    fn negative_fds_are_ignored_by_the_kernel() {
        let pipe = WakePipe::new().expect("pipe");
        pipe.wake();
        let mut fds =
            [PollFd::new(-1, POLLIN), PollFd::new(pipe.read_fd(), POLLIN)];
        let n = poll(&mut fds, 1000).expect("poll");
        assert_eq!(n, 1);
        assert!(!fds[0].has(POLLIN), "negative fd slot stays quiet");
        assert!(fds[1].has(POLLIN));
    }
}
