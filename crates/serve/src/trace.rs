//! Request-scoped tracing: span trees across the loop/pool boundary
//! plus a fixed-size ring of recently sealed traces.
//!
//! Every request the server answers gets a [`TraceHandle`] when its
//! head finishes parsing. The handle is a cheap `Arc` that both sides
//! of the thread boundary share: the event loop records `read_parse`,
//! `queue_wait`, and `write` around the handoff, the handler thread
//! opens `handle` plus the cache/store/graph stages inside
//! [`crate::routes`], and the compute pool attributes kernel sections
//! through the process-wide [`socnet_core::kernel_timing`] hook via a
//! thread-local *current trace* installed for the duration of the
//! compute closure. Stage nesting uses a shared open-stage stack; it is
//! correct across threads because a handler blocks while its compute
//! runs, so openings and closings interleave sequentially per trace.
//!
//! Lock discipline ("lock-light"): each trace has its own mutex —
//! uncontended except at the two handoff points — and the ring takes
//! one short lock per *sealed* trace, never per stage. With tracing
//! disabled no handle exists and the per-request cost is zero.
//!
//! Sealed traces serialize as single-line `socnet-trace-v1` JSON: the
//! drain writes the ring to `<out>/traces.jsonl`, `GET
//! /debug/trace/<id>` and `GET /debug/slow` render the same records as
//! nested span trees, and [`is_valid_trace_jsonl`] is the `obs-check`
//! validator for the artifact.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use socnet_runner::{json, Metrics};

/// Root stage names, in request-lifecycle order. Every sealed trace's
/// root stages come from this set (plus injected test stages), which is
/// what keeps the per-stage histogram label space bounded.
pub const ROOT_STAGES: [&str; 4] = ["read_parse", "queue_wait", "handle", "write"];

static NEXT_ID: AtomicU64 = AtomicU64::new(1);

/// One completed (or still-open) span within a trace.
#[derive(Debug, Clone)]
pub struct Stage {
    /// Static stage name (`read_parse`, `handle`, `cache:mixing`, ...).
    pub name: &'static str,
    /// Free-form annotation (`hit`, `miss`, `coalesced`, a dataset
    /// label); empty when none.
    pub detail: String,
    /// Index of the enclosing stage, `None` for a root stage.
    pub parent: Option<u32>,
    /// Offset from the trace start, microseconds.
    pub start_us: u64,
    /// Stage duration, microseconds (0 while still open).
    pub dur_us: u64,
}

struct TraceState {
    stages: Vec<Stage>,
    /// Indices of currently-open stages, innermost last.
    stack: Vec<u32>,
    /// When [`TraceHandle::mark_dispatched`] ran (queue-wait start).
    dispatched: Option<Instant>,
    route: &'static str,
    status: u16,
    finished: bool,
}

struct TraceInner {
    id: u64,
    method: String,
    path: String,
    /// t0 for every stage offset: when the connection started waiting
    /// for this request's bytes, not when parsing finished — so the
    /// trace total matches what the client observes.
    started: Instant,
    state: Mutex<TraceState>,
}

/// A shared handle to one in-flight request's trace.
#[derive(Clone)]
pub struct TraceHandle(Arc<TraceInner>);

impl TraceHandle {
    /// Starts a trace whose clock began at `started` (the instant the
    /// front end began reading this request).
    pub fn begin(method: &str, path: &str, started: Instant) -> TraceHandle {
        TraceHandle(Arc::new(TraceInner {
            id: NEXT_ID.fetch_add(1, Ordering::Relaxed),
            method: method.to_string(),
            path: path.to_string(),
            started,
            state: Mutex::new(TraceState {
                stages: Vec::with_capacity(8),
                stack: Vec::with_capacity(4),
                dispatched: None,
                route: "",
                status: 0,
                finished: false,
            }),
        }))
    }

    /// The wire form of the trace id (the `X-Trace-Id` header value).
    pub fn id_text(&self) -> String {
        format!("{:016x}", self.0.id)
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceState> {
        self.0.state.lock().unwrap_or_else(|p| p.into_inner())
    }

    fn offset_us(&self, at: Instant) -> u64 {
        at.saturating_duration_since(self.0.started).as_micros() as u64
    }

    /// Opens a nested stage; the returned guard closes it on drop.
    pub fn stage(&self, name: &'static str) -> StageGuard {
        let start = Instant::now();
        let mut state = self.lock();
        let index = state.stages.len() as u32;
        let parent = state.stack.last().copied();
        state.stages.push(Stage {
            name,
            detail: String::new(),
            parent,
            start_us: self.offset_us(start),
            dur_us: 0,
        });
        state.stack.push(index);
        StageGuard { trace: self.clone(), index, opened: start }
    }

    /// Appends an already-measured leaf stage ending now (kernel hook,
    /// read_parse, queue_wait) under the innermost open stage.
    pub fn leaf(&self, name: &'static str, detail: &str, dur: std::time::Duration) {
        let end = Instant::now();
        let start_us = self.offset_us(end).saturating_sub(dur.as_micros() as u64);
        let mut state = self.lock();
        if state.finished {
            return;
        }
        let parent = state.stack.last().copied();
        state.stages.push(Stage {
            name,
            detail: detail.to_string(),
            parent,
            start_us,
            dur_us: dur.as_micros() as u64,
        });
    }

    /// Records the instant the request left the loop for the handler
    /// pool; [`note_queue_wait`](Self::note_queue_wait) closes the gap.
    pub fn mark_dispatched(&self) {
        self.lock().dispatched = Some(Instant::now());
    }

    /// Called first thing on the handler thread: records the
    /// `queue_wait` leaf spanning dispatch → now.
    pub fn note_queue_wait(&self) {
        let dispatched = self.lock().dispatched.take();
        if let Some(at) = dispatched {
            self.leaf("queue_wait", "", at.elapsed());
        }
    }

    /// Records the route class the handler resolved to.
    pub fn set_route(&self, route: &'static str) {
        self.lock().route = route;
    }

    /// Records the response status.
    pub fn set_status(&self, status: u16) {
        self.lock().status = status;
    }

    /// Seals the trace into `ring` and records its latency histograms
    /// (`trace.total_s` per route, `trace.stage_s` per root stage).
    /// Idempotent: a second finish (e.g. reap racing a write) is a
    /// no-op.
    pub fn finish(&self, ring: &TraceRing) {
        self.finish_with(ring, false)
    }

    /// Seals a trace whose request was cut short (reaped, closed
    /// mid-write): stages still open keep zero duration and the record
    /// is marked aborted.
    pub fn finish_aborted(&self, ring: &TraceRing) {
        self.finish_with(ring, true)
    }

    fn finish_with(&self, ring: &TraceRing, aborted: bool) {
        let total_us = self.offset_us(Instant::now());
        let sealed = {
            let mut state = self.lock();
            if state.finished {
                return;
            }
            state.finished = true;
            state.stack.clear();
            Arc::new(SealedTrace {
                id: self.0.id,
                method: self.0.method.clone(),
                path: self.0.path.clone(),
                route: state.route,
                status: state.status,
                aborted,
                total_us,
                stages: std::mem::take(&mut state.stages),
            })
        };
        let m = Metrics::global();
        m.observe(
            &format!("trace.total_s|route={}", if sealed.route.is_empty() { "unknown" } else { sealed.route }),
            total_us as f64 / 1e6,
        );
        for stage in sealed.stages.iter().filter(|s| s.parent.is_none()) {
            m.observe(&format!("trace.stage_s|stage={}", stage.name), stage.dur_us as f64 / 1e6);
        }
        ring.push(sealed);
    }
}

/// Closes its stage on drop; [`detail`](Self::detail) annotates it.
pub struct StageGuard {
    trace: TraceHandle,
    index: u32,
    opened: Instant,
}

impl StageGuard {
    /// Annotates the stage (`hit` / `miss` / `coalesced` / ...).
    pub fn detail(&self, detail: &str) {
        let mut state = self.trace.lock();
        if let Some(stage) = state.stages.get_mut(self.index as usize) {
            stage.detail = detail.to_string();
        }
    }
}

impl Drop for StageGuard {
    fn drop(&mut self) {
        let dur_us = self.opened.elapsed().as_micros() as u64;
        let mut state = self.trace.lock();
        if let Some(stage) = state.stages.get_mut(self.index as usize) {
            stage.dur_us = dur_us;
        }
        // Pop this stage (and, defensively, anything opened after it
        // that leaked past its guard).
        while let Some(&top) = state.stack.last() {
            state.stack.pop();
            if top == self.index {
                break;
            }
        }
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceHandle>> = const { RefCell::new(None) };
}

/// The trace installed on this thread, if any.
pub fn current() -> Option<TraceHandle> {
    CURRENT.with(|c| c.borrow().clone())
}

/// Installs `trace` as this thread's current trace for the guard's
/// lifetime (handler jobs and compute closures wrap themselves in one
/// so the kernel hook can attribute its sections).
pub fn enter(trace: Option<TraceHandle>) -> EnterGuard {
    let prev = CURRENT.with(|c| c.replace(trace));
    EnterGuard { prev }
}

/// Restores the previously-installed trace on drop.
pub struct EnterGuard {
    prev: Option<TraceHandle>,
}

impl Drop for EnterGuard {
    fn drop(&mut self) {
        CURRENT.with(|c| *c.borrow_mut() = self.prev.take());
    }
}

/// Kernel-hook sink: attributes one timed kernel section to the current
/// trace as a leaf stage (the hook also records registry histograms —
/// see `Server::bind`).
pub fn on_kernel(name: &'static str, secs: f64) {
    if let Some(trace) = current() {
        trace.leaf(name, "kernel", std::time::Duration::from_secs_f64(secs));
    }
}

/// An immutable, completed trace record.
#[derive(Debug)]
pub struct SealedTrace {
    /// The numeric trace id ([`SealedTrace::id_text`] is the wire form).
    pub id: u64,
    /// Request method.
    pub method: String,
    /// Request path (no query).
    pub path: String,
    /// Route class the handler resolved to (empty if cut short).
    pub route: &'static str,
    /// Response status (0 if the request never produced one).
    pub status: u16,
    /// Whether the connection was reaped/closed before the response
    /// finished writing.
    pub aborted: bool,
    /// End-to-end wall time, first byte wait → response flushed, µs.
    pub total_us: u64,
    /// Every recorded stage, in open order.
    pub stages: Vec<Stage>,
}

impl SealedTrace {
    /// The wire form of the trace id.
    pub fn id_text(&self) -> String {
        format!("{:016x}", self.id)
    }

    /// Approximate resident bytes of this record: string payloads plus
    /// a fixed per-stage overhead — what the governor charges the ring.
    pub fn approx_bytes(&self) -> usize {
        let stage_bytes: usize =
            self.stages.iter().map(|s| s.name.len() + s.detail.len() + 48).sum();
        std::mem::size_of::<SealedTrace>() + self.method.len() + self.path.len() + stage_bytes
    }

    /// Sum of root-stage durations, µs — the coverage check: for a
    /// fully-traced request this approaches [`SealedTrace::total_us`].
    pub fn root_stage_sum_us(&self) -> u64 {
        self.stages.iter().filter(|s| s.parent.is_none()).map(|s| s.dur_us).sum()
    }

    /// Duration of the first stage with `name`, if recorded, µs.
    pub fn stage_us(&self, name: &str) -> Option<u64> {
        self.stages.iter().find(|s| s.name == name).map(|s| s.dur_us)
    }

    /// Sum of durations of stages whose name starts with `prefix`, µs.
    pub fn stage_prefix_sum_us(&self, prefix: &str) -> u64 {
        self.stages.iter().filter(|s| s.name.starts_with(prefix)).map(|s| s.dur_us).sum()
    }

    /// The single-line `socnet-trace-v1` record (`traces.jsonl`).
    pub fn to_json(&self) -> String {
        let mut stages = json::Arr::new();
        for stage in &self.stages {
            stages.push_raw(stage_json(stage));
        }
        let mut o = json::Obj::new();
        o.str("schema", "socnet-trace-v1")
            .str("trace_id", &self.id_text())
            .str("method", &self.method)
            .str("path", &self.path)
            .str("route", self.route)
            .int("status", u64::from(self.status))
            .bool("aborted", self.aborted)
            .num("total_ms", self.total_us as f64 / 1e3, 3)
            .raw("stages", &stages.finish());
        o.finish()
    }

    /// The same record with stages nested as a span *tree* (children
    /// arrays instead of parent indices) — what `/debug/trace/<id>`
    /// and `/debug/slow` serve.
    pub fn to_json_tree(&self) -> String {
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.stages.len()];
        let mut roots = Vec::new();
        for (i, stage) in self.stages.iter().enumerate() {
            match stage.parent {
                Some(p) => children[p as usize].push(i),
                None => roots.push(i),
            }
        }
        let mut spans = json::Arr::new();
        for &root in &roots {
            spans.push_raw(render_span(&self.stages, &children, root));
        }
        let mut o = json::Obj::new();
        o.str("schema", "socnet-trace-v1")
            .str("trace_id", &self.id_text())
            .str("method", &self.method)
            .str("path", &self.path)
            .str("route", self.route)
            .int("status", u64::from(self.status))
            .bool("aborted", self.aborted)
            .num("total_ms", self.total_us as f64 / 1e3, 3)
            .num("root_stage_sum_ms", self.root_stage_sum_us() as f64 / 1e3, 3)
            .raw("spans", &spans.finish());
        o.finish()
    }
}

fn stage_json(stage: &Stage) -> String {
    let mut o = json::Obj::new();
    o.str("name", stage.name);
    if !stage.detail.is_empty() {
        o.str("detail", &stage.detail);
    }
    match stage.parent {
        Some(p) => o.int("parent", u64::from(p)),
        None => o.raw("parent", "null"),
    };
    o.int("start_us", stage.start_us).int("dur_us", stage.dur_us);
    o.finish()
}

fn render_span(stages: &[Stage], children: &[Vec<usize>], index: usize) -> String {
    let stage = &stages[index];
    let mut o = json::Obj::new();
    o.str("name", stage.name);
    if !stage.detail.is_empty() {
        o.str("detail", &stage.detail);
    }
    o.int("start_us", stage.start_us).int("dur_us", stage.dur_us);
    if !children[index].is_empty() {
        let mut kids = json::Arr::new();
        for &child in &children[index] {
            kids.push_raw(render_span(stages, children, child));
        }
        o.raw("children", &kids.finish());
    }
    o.finish()
}

/// Fixed-size ring of the most recent sealed traces.
pub struct TraceRing {
    inner: Mutex<RingInner>,
    capacity: usize,
}

struct RingInner {
    buf: Vec<Option<Arc<SealedTrace>>>,
    next: usize,
    sealed: u64,
    /// Approximate bytes across resident records, maintained on push
    /// (new record in, overwritten record out) — the ring's governor
    /// accountant line.
    bytes: usize,
}

impl TraceRing {
    /// A ring keeping the last `capacity` traces (min 1).
    pub fn new(capacity: usize) -> TraceRing {
        let capacity = capacity.max(1);
        TraceRing {
            inner: Mutex::new(RingInner { buf: vec![None; capacity], next: 0, sealed: 0, bytes: 0 }),
            capacity,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, RingInner> {
        self.inner.lock().unwrap_or_else(|p| p.into_inner())
    }

    /// Inserts a sealed trace, evicting the oldest once full.
    pub fn push(&self, trace: Arc<SealedTrace>) {
        let mut inner = self.lock();
        let slot = inner.next;
        if let Some(old) = &inner.buf[slot] {
            let freed = old.approx_bytes();
            debug_assert!(inner.bytes >= freed, "trace ring byte underflow");
            inner.bytes = inner.bytes.saturating_sub(freed);
        }
        inner.bytes += trace.approx_bytes();
        inner.buf[slot] = Some(trace);
        inner.next = (slot + 1) % self.capacity;
        inner.sealed += 1;
    }

    /// Approximate bytes across resident records.
    pub fn resident_bytes(&self) -> usize {
        self.lock().bytes
    }

    /// Traces sealed over the ring's lifetime (not just resident).
    pub fn sealed_total(&self) -> u64 {
        self.lock().sealed
    }

    /// Looks up a resident trace by its wire id.
    pub fn find(&self, id_text: &str) -> Option<Arc<SealedTrace>> {
        let id = u64::from_str_radix(id_text, 16).ok()?;
        self.lock().buf.iter().flatten().find(|t| t.id == id).cloned()
    }

    /// Every resident trace, oldest first.
    pub fn all(&self) -> Vec<Arc<SealedTrace>> {
        let inner = self.lock();
        let mut out = Vec::new();
        for i in 0..self.capacity {
            let slot = (inner.next + i) % self.capacity;
            if let Some(t) = &inner.buf[slot] {
                out.push(Arc::clone(t));
            }
        }
        out
    }

    /// The `n` slowest resident traces at or over `threshold_ms`,
    /// slowest first.
    pub fn slowest(&self, threshold_ms: f64, n: usize) -> Vec<Arc<SealedTrace>> {
        let mut all: Vec<Arc<SealedTrace>> = self
            .lock()
            .buf
            .iter()
            .flatten()
            .filter(|t| t.total_us as f64 / 1e3 >= threshold_ms)
            .cloned()
            .collect();
        all.sort_by(|a, b| b.total_us.cmp(&a.total_us).then(a.id.cmp(&b.id)));
        all.truncate(n);
        all
    }

    /// Renders every resident trace as `socnet-trace-v1` JSONL,
    /// oldest first (the drain artifact).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for trace in self.all() {
            out.push_str(&trace.to_json());
            out.push('\n');
        }
        out
    }
}

/// Validates a `traces.jsonl` artifact: at least one line, every line
/// valid JSON carrying the `socnet-trace-v1` schema tag and the keys
/// consumers rely on (`trace_id`, `status`, `total_ms`, `stages`).
pub fn is_valid_trace_jsonl(text: &str) -> bool {
    let mut lines = 0usize;
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        if !json::is_valid(line) {
            return false;
        }
        for key in
            ["\"schema\":\"socnet-trace-v1\"", "\"trace_id\":", "\"status\":", "\"total_ms\":", "\"stages\":"]
        {
            if !line.contains(key) {
                return false;
            }
        }
        lines += 1;
    }
    lines > 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn finished(trace: &TraceHandle, ring: &TraceRing) -> Arc<SealedTrace> {
        trace.finish(ring);
        ring.find(&trace.id_text()).expect("sealed trace is resident")
    }

    #[test]
    fn stages_nest_and_seal_in_order() {
        let ring = TraceRing::new(8);
        let t = TraceHandle::begin("GET", "/graphs/x/mixing", Instant::now());
        t.leaf("read_parse", "", Duration::from_micros(120));
        t.mark_dispatched();
        t.note_queue_wait();
        {
            let handle = t.stage("handle");
            handle.detail("mixing");
            {
                let cache = t.stage("cache:mixing");
                cache.detail("miss");
                t.leaf("slem", "kernel", Duration::from_micros(300));
            }
        }
        t.set_route("mixing");
        t.set_status(200);
        let sealed = finished(&t, &ring);
        let names: Vec<&str> = sealed.stages.iter().map(|s| s.name).collect();
        assert_eq!(names, ["read_parse", "queue_wait", "handle", "cache:mixing", "slem"]);
        // Parent links: roots for the first three, then nesting.
        assert_eq!(sealed.stages[0].parent, None);
        assert_eq!(sealed.stages[1].parent, None);
        assert_eq!(sealed.stages[2].parent, None);
        assert_eq!(sealed.stages[3].parent, Some(2));
        assert_eq!(sealed.stages[4].parent, Some(3));
        assert_eq!(sealed.route, "mixing");
        assert_eq!(sealed.status, 200);
        assert!(!sealed.aborted);
        let line = sealed.to_json();
        assert!(json::is_valid(&line), "{line}");
        assert!(is_valid_trace_jsonl(&format!("{line}\n")));
        let tree = sealed.to_json_tree();
        assert!(json::is_valid(&tree), "{tree}");
        assert!(tree.contains("\"children\""), "{tree}");
    }

    #[test]
    fn finish_is_idempotent_and_abort_marks() {
        let ring = TraceRing::new(4);
        let t = TraceHandle::begin("GET", "/healthz", Instant::now());
        t.finish(&ring);
        t.finish_aborted(&ring);
        assert_eq!(ring.sealed_total(), 1, "second finish must be a no-op");
        let t2 = TraceHandle::begin("GET", "/healthz", Instant::now());
        t2.finish_aborted(&ring);
        let sealed = ring.find(&t2.id_text()).unwrap();
        assert!(sealed.aborted);
    }

    #[test]
    fn ring_evicts_oldest_and_ranks_slowest() {
        let ring = TraceRing::new(2);
        let mut ids = Vec::new();
        for i in 0..3 {
            let t = TraceHandle::begin("GET", "/healthz", Instant::now() - Duration::from_millis(i * 10));
            ids.push(t.id_text());
            t.finish(&ring);
        }
        assert!(ring.find(&ids[0]).is_none(), "oldest evicted");
        assert!(ring.find(&ids[2]).is_some());
        assert_eq!(ring.all().len(), 2);
        assert_eq!(ring.sealed_total(), 3);
        // Slowest first: the trace that "started" 20ms ago has the
        // largest total.
        let slow = ring.slowest(0.0, 10);
        assert_eq!(slow.len(), 2);
        assert!(slow[0].total_us >= slow[1].total_us);
        assert!(ring.slowest(1e9, 10).is_empty(), "threshold filters");
    }

    #[test]
    fn thread_local_current_restores_on_drop() {
        assert!(current().is_none());
        let t = TraceHandle::begin("GET", "/x", Instant::now());
        {
            let _g = enter(Some(t.clone()));
            assert_eq!(current().unwrap().id_text(), t.id_text());
            {
                let _inner = enter(None);
                assert!(current().is_none());
            }
            assert!(current().is_some());
        }
        assert!(current().is_none());
    }

    #[test]
    fn kernel_attribution_lands_under_open_stage() {
        let ring = TraceRing::new(4);
        let t = TraceHandle::begin("GET", "/x", Instant::now());
        let _g = enter(Some(t.clone()));
        {
            let _compute = t.stage("cache:coreness");
            on_kernel("kcore", 0.002);
        }
        drop(_g);
        let sealed = finished(&t, &ring);
        let kernel = sealed.stages.iter().find(|s| s.name == "kcore").expect("kernel stage");
        assert_eq!(kernel.parent, Some(0));
        assert_eq!(kernel.detail, "kernel");
        assert!(kernel.dur_us >= 1_900);
    }

    #[test]
    fn trace_jsonl_validator_rejects_garbage() {
        assert!(!is_valid_trace_jsonl(""));
        assert!(!is_valid_trace_jsonl("not json\n"));
        assert!(!is_valid_trace_jsonl("{\"schema\":\"other\"}\n"));
        let ring = TraceRing::new(2);
        let t = TraceHandle::begin("GET", "/x", Instant::now());
        let sealed = finished(&t, &ring);
        assert!(is_valid_trace_jsonl(&ring.render_jsonl()));
        // A truncated line (torn write) must fail.
        let line = sealed.to_json();
        assert!(!is_valid_trace_jsonl(&line[..line.len() - 5]));
    }
}
