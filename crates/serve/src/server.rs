//! The long-running daemon: bind, accept, handle, drain.
//!
//! Two front ends answer the sockets. The default is the
//! single-threaded non-blocking readiness loop in [`crate::eventloop`]
//! (`poll(2)` over every connection, per-connection state machines,
//! admission control); the legacy thread-per-connection loop survives
//! behind [`Frontend::Threads`] for overload comparisons. In both,
//! property computations run on the shared panic-isolated [`Pool`] so a
//! hundred waiting connections never pile a hundred concurrent kernels
//! onto the box, keep-alive is bounded by
//! [`MAX_REQUESTS_PER_CONNECTION`] and an idle read deadline, and the
//! process-level flag from [`crate::signal`] or the server's own
//! [`CancelToken`] handle triggers the drain.
//!
//! When a store directory is configured, boot *hydrates* the property
//! cache and registry metadata from the last drain's snapshot (rejected
//! snapshots are quarantined and the boot proceeds cold), and shutdown
//! is a *graceful drain*: stop accepting, let in-flight requests finish
//! (bounded), drain the pool, flush the snapshot, then the metrics
//! snapshot and a `run.json` manifest describing what was served.

use std::collections::BTreeMap;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use socnet_runner::{
    git_rev, hostname, obs, write_atomic, CancelToken, DrainReport, Metrics, Pool, RunManifest,
    RunReport, StageReport, UnitRecord,
};

use crate::cache::PropertyCache;
use crate::http::{self, HttpError};
use crate::registry::GraphRegistry;
use crate::trace::{self, TraceHandle, TraceRing};
use crate::{persist, routes, signal};

/// Most requests one keep-alive connection may issue before the server
/// closes it (fairness: one chatty client cannot pin a thread forever).
pub const MAX_REQUESTS_PER_CONNECTION: usize = 32;

/// Which connection front end answers the sockets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Frontend {
    /// The single-threaded non-blocking readiness loop (`poll(2)`):
    /// connection count decouples from thread count, slow clients are
    /// reaped by deadline, overload sheds with `503` + `Retry-After`.
    /// The default.
    EventLoop,
    /// The legacy thread-per-connection loop — kept for comparison
    /// benchmarks (`serveload --frontend threads`): every connection
    /// pins an OS thread for its lifetime, so a slow-loris herd
    /// translates directly into thread pressure.
    Threads,
}

impl Frontend {
    /// The label used in logs, flags, and manifests.
    pub fn label(self) -> &'static str {
        match self {
            Frontend::EventLoop => "event",
            Frontend::Threads => "threads",
        }
    }
}

impl std::str::FromStr for Frontend {
    type Err = String;

    fn from_str(s: &str) -> Result<Frontend, String> {
        match s {
            "event" | "eventloop" | "event-loop" => Ok(Frontend::EventLoop),
            "threads" | "thread" => Ok(Frontend::Threads),
            other => Err(format!("expected event|threads, got {other:?}")),
        }
    }
}

/// How long a keep-alive connection may sit idle between requests
/// before the server hangs up (both front ends).
pub(crate) const KEEP_ALIVE_IDLE: Duration = Duration::from_secs(5);

/// Everything `socnet serve` can tune.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7676` (port 0 picks a free port).
    pub addr: String,
    /// Worker threads on the compute pool.
    pub threads: usize,
    /// Property-cache capacity in bytes.
    pub cache_bytes: usize,
    /// Per-request deadline.
    pub request_deadline: Duration,
    /// Dataset scale when a query does not pass `scale=`.
    pub default_scale: f64,
    /// Generation seed when a query does not pass `seed=`.
    pub default_seed: u64,
    /// Where the drain writes `run.json` and the metrics snapshot.
    pub out_dir: PathBuf,
    /// How long the drain waits for connections and pool jobs.
    pub drain_deadline: Duration,
    /// Enables the `__panic=1` test hook on the mixing route. Never on
    /// by default; integration tests use it to exercise poisoning.
    pub panic_injection: bool,
    /// Snapshot store directory. When set, boot hydrates the caches
    /// from `<dir>/serve.snap` (cold + quarantine on any mismatch) and
    /// drain flushes a fresh snapshot there. `None` disables
    /// persistence entirely.
    pub store_dir: Option<PathBuf>,
    /// Which connection front end runs (`--frontend`).
    pub frontend: Frontend,
    /// Connection budget for the event loop (`--max-conns`): accepts
    /// past this answer `503` + `Retry-After` and close immediately.
    pub max_conns: usize,
    /// How long a connection may take to deliver a complete request
    /// head, and how long a response write may go without progress,
    /// before the connection is reaped (`--header-deadline`). Applies
    /// uniformly — the *first* request on a fresh connection included,
    /// so a client that connects and sends nothing cannot hold a slot.
    pub header_deadline: Duration,
    /// Pending-compute high-water mark: once the handler backlog
    /// (queued + running request jobs) passes this, new requests are
    /// shed with `503` + `Retry-After` instead of queueing without
    /// bound (`--shed-highwater`).
    pub shed_highwater: usize,
    /// Whether requests are traced at boot (`--tracing`). Runtime
    /// toggleable via [`AppState::set_tracing`]; benchmarks flip it to
    /// measure the overhead of tracing itself.
    pub tracing: bool,
    /// How many sealed traces the debug ring keeps (`--trace-ring`).
    pub trace_ring: usize,
    /// How many delta ops a live graph absorbs into its overlay before
    /// the server folds a fresh CSR and swaps it into the registry
    /// (`--live-rebuild-threshold`).
    pub live_rebuild_threshold: usize,
    /// How far past a live graph's current node count one delta batch
    /// may grow it (`--live-node-headroom`). Ids beyond the cap are
    /// rejected with 400 before the ack — node count (and every O(n)
    /// structure sized from it) must never jump to an arbitrary u32
    /// from one 16-byte op.
    pub live_node_headroom: usize,
    /// Process-wide resident-byte budget (`--mem-budget`) arbitrated
    /// by [`crate::govern::Governor`] across the registry, property
    /// cache, live overlays, and trace ring. `None` (the default)
    /// disables governance entirely — behavior is byte-identical to a
    /// build without it.
    pub mem_budget: Option<usize>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7676".to_string(),
            threads: 2,
            cache_bytes: 64 * 1024 * 1024,
            request_deadline: Duration::from_secs(30),
            default_scale: 0.05,
            default_seed: 42,
            out_dir: PathBuf::from("serve-out"),
            drain_deadline: Duration::from_secs(10),
            panic_injection: false,
            store_dir: None,
            frontend: Frontend::EventLoop,
            max_conns: 1024,
            header_deadline: Duration::from_secs(5),
            shed_highwater: 64,
            tracing: true,
            trace_ring: 512,
            live_rebuild_threshold: 4096,
            live_node_headroom: 4096,
            mem_budget: None,
        }
    }
}

/// Per-route-class accounting for the manifest.
#[derive(Debug, Default, Clone, Copy)]
struct RouteStat {
    requests: u64,
    errors: u64,
    wall: Duration,
}

/// Shared state every connection thread sees.
pub struct AppState {
    /// The load-once graph store.
    pub registry: GraphRegistry,
    /// The memoizing property cache.
    pub cache: PropertyCache,
    /// The compute pool property misses run on.
    pub pool: Pool,
    /// The server's configuration.
    pub config: ServerConfig,
    /// Cancelled when the server starts draining.
    pub shutdown: CancelToken,
    /// The ring of recently sealed request traces (`/debug/*` reads
    /// it; the drain writes it to `traces.jsonl`).
    pub traces: TraceRing,
    /// The live-graph subsystem: WAL-acked delta ingestion, version
    /// stamps, and threshold-driven CSR swaps.
    pub live: crate::live::LiveManager,
    /// The process-wide memory governor (`--mem-budget`). A no-op
    /// unless a budget is configured.
    pub govern: crate::govern::Governor,
    tracing: AtomicBool,
    requests: AtomicU64,
    route_stats: Mutex<BTreeMap<&'static str, RouteStat>>,
    active: Mutex<usize>,
    all_idle: Condvar,
}

impl AppState {
    /// Total requests accepted so far.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Whether new requests get traces right now.
    pub fn tracing_enabled(&self) -> bool {
        self.tracing.load(Ordering::Relaxed)
    }

    /// Toggles tracing at runtime (only *new* requests are affected;
    /// in-flight traces seal normally).
    pub fn set_tracing(&self, on: bool) {
        self.tracing.store(on, Ordering::Relaxed);
    }

    /// A fresh trace for a request whose bytes started arriving at
    /// `started`, or `None` while tracing is disabled.
    pub(crate) fn begin_trace(
        &self,
        method: &str,
        path: &str,
        started: Instant,
    ) -> Option<TraceHandle> {
        if self.tracing_enabled() {
            Some(TraceHandle::begin(method, path, started))
        } else {
            None
        }
    }

    /// The governor's view of every resident-byte accountant — what
    /// reclaim rounds and the `/datasets` pressure fields read.
    pub fn accountants(&self) -> crate::govern::Accountants<'_> {
        crate::govern::Accountants {
            registry: &self.registry,
            cache: &self.cache,
            live: &self.live,
            traces: &self.traces,
        }
    }

    /// Accounts one parsed (or rejected) request. Both front ends call
    /// this exactly once per request they answer.
    pub(crate) fn count_request(&self) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        Metrics::global().incr("http.requests", 1);
    }

    /// Accounts one response: status-class counter, latency histogram,
    /// and per-route-class manifest stats.
    pub(crate) fn account_response(&self, class: &'static str, status: u16, wall: Duration) {
        let status_class = match status {
            200..=299 => "http.responses.2xx",
            400..=499 => "http.responses.4xx",
            _ => "http.responses.5xx",
        };
        Metrics::global().incr(status_class, 1);
        Metrics::global().observe("http.request_s", wall.as_secs_f64());
        // The labeled twin renders as a per-route Prometheus histogram
        // (`http_request_seconds_bucket{route="..."}`); the route-class
        // set is static, so the label space is bounded.
        Metrics::global().observe(&format!("http.request_s|route={class}"), wall.as_secs_f64());
        let mut stats = self.route_stats.lock().unwrap_or_else(|p| p.into_inner());
        let stat = stats.entry(class).or_default();
        stat.requests += 1;
        if status >= 400 {
            stat.errors += 1;
        }
        stat.wall += wall;
    }
}

/// What [`Server::serve`] reports after the drain.
#[derive(Debug)]
pub struct ServeSummary {
    /// Requests accepted over the server's lifetime.
    pub requests: u64,
    /// The compute pool's drain report.
    pub drain: DrainReport,
    /// Uptime from bind to drain completion.
    pub uptime: Duration,
    /// Where the run manifest was written.
    pub manifest_path: PathBuf,
    /// Where the metrics snapshot was written.
    pub metrics_path: PathBuf,
    /// Where the warm-start snapshot was written, when a store
    /// directory is configured and the flush succeeded.
    pub snapshot_path: Option<PathBuf>,
}

/// The bound-but-not-yet-serving daemon.
pub struct Server {
    listener: TcpListener,
    state: Arc<AppState>,
    started: Instant,
}

impl Server {
    /// Binds the listener and assembles the shared state. When a store
    /// directory is configured, hydrates the property cache and
    /// registry metadata from the last drain's snapshot — a rejected
    /// snapshot is quarantined and the boot proceeds cold; hydration
    /// can never fail the bind.
    ///
    /// Clears a stale signal flag so a previous run's `SIGTERM` cannot
    /// kill this one at birth.
    ///
    /// # Errors
    ///
    /// Any I/O error from binding `config.addr`.
    pub fn bind(config: ServerConfig) -> std::io::Result<Server> {
        signal::reset();
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        // The kernel timing hook is process-global and installs once
        // (re-binding in tests must not stack hooks): every timed
        // kernel section lands in a registry histogram and, when the
        // running thread carries a current trace, as a leaf span.
        socnet_core::kernel_timing::install(|name, secs| {
            Metrics::global().observe(&format!("kernel.{name}_s"), secs);
            trace::on_kernel(name, secs);
        });
        // Pre-register the counters operators alert on, so `/metrics`
        // exposes every required series from the first scrape instead
        // of only after the first matching event.
        let m = Metrics::global();
        for name in [
            "http.requests",
            "http.connections",
            "http.responses.2xx",
            "http.responses.4xx",
            "http.responses.5xx",
            "http.shed_conns",
            "http.shed_requests",
            "http.reaped_idle",
            "http.reaped_slowloris",
            "http.reaped_slow_reader",
            "http.reaped_inflight",
            "http.drain_killed",
            "http.rejected_oversize",
            "http.keepalive_reuses",
            "cache.hits",
            "cache.misses",
            "cache.coalesced",
            "cache.evictions",
            "cache.poisonings",
            "store.hydrated",
            "store.warm_hits",
            "store.quarantined",
            "live.deltas",
            "live.ops",
            "live.rebuilds",
            "live.stale_served",
            "wal.appends",
            "wal.replayed",
            "govern.load_shed",
            "govern.reclaims|rung=1",
            "govern.reclaims|rung=2",
            "govern.reclaims|rung=3",
            "govern.reclaims|rung=4",
        ] {
            m.incr(name, 0);
        }
        let tracing = config.tracing;
        let trace_ring = config.trace_ring;
        // The live boot replays the delta WAL before the listener
        // answers anything, so the first query already sees every
        // acked batch from before the restart.
        let live = crate::live::LiveManager::boot(
            config.store_dir.as_deref(),
            config.live_rebuild_threshold,
            config.live_node_headroom,
        );
        m.gauge_set("govern.budget_bytes", config.mem_budget.unwrap_or(0) as f64);
        m.gauge_set("govern.resident_bytes", 0.0);
        let state = Arc::new(AppState {
            registry: GraphRegistry::new(),
            cache: PropertyCache::new(config.cache_bytes),
            pool: Pool::new(config.threads),
            live,
            govern: crate::govern::Governor::new(config.mem_budget),
            config,
            shutdown: CancelToken::new(),
            traces: TraceRing::new(trace_ring),
            tracing: AtomicBool::new(tracing),
            requests: AtomicU64::new(0),
            route_stats: Mutex::new(BTreeMap::new()),
            active: Mutex::new(0),
            all_idle: Condvar::new(),
        });
        if let Some(dir) = state.config.store_dir.clone() {
            persist::hydrate(&dir, &state.cache, &state.registry);
        }
        Ok(Server { listener, state, started: Instant::now() })
    }

    /// The actual bound address (resolves port 0).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot report the local address of a bound
    /// listener (not observed in practice).
    pub fn local_addr(&self) -> SocketAddr {
        self.listener.local_addr().expect("bound listener has a local address")
    }

    /// A token other threads can cancel to trigger a graceful drain —
    /// the in-process equivalent of `SIGTERM`.
    pub fn shutdown_handle(&self) -> CancelToken {
        self.state.shutdown.clone()
    }

    /// The shared state (tests inspect cache/registry stats through it).
    pub fn state(&self) -> Arc<AppState> {
        Arc::clone(&self.state)
    }

    /// Runs the accept loop until `SIGTERM`/`SIGINT` or the shutdown
    /// handle fires, then drains and flushes artifacts.
    ///
    /// # Errors
    ///
    /// Only artifact-write failures surface; per-connection I/O errors
    /// are handled (or logged) inline.
    pub fn serve(self) -> std::io::Result<ServeSummary> {
        let addr = self.local_addr();
        obs::info(
            "serve.start",
            &[
                ("addr", addr.to_string().into()),
                ("frontend", self.state.config.frontend.label().into()),
                ("threads", (self.state.pool.threads() as u64).into()),
                ("cache_bytes", (self.state.config.cache_bytes as u64).into()),
            ],
        );
        match self.state.config.frontend {
            Frontend::EventLoop => {
                crate::eventloop::run(&self.listener, Arc::clone(&self.state))?;
            }
            Frontend::Threads => self.serve_threads(),
        }
        self.drain(addr)
    }

    /// The legacy thread-per-connection accept loop.
    fn serve_threads(&self) {
        loop {
            if signal::triggered() || self.state.shutdown.is_cancelled() {
                break;
            }
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    Metrics::global().incr("http.connections", 1);
                    let state = Arc::clone(&self.state);
                    {
                        let mut active =
                            state.active.lock().unwrap_or_else(|p| p.into_inner());
                        *active += 1;
                    }
                    std::thread::spawn(move || {
                        // A panicking handler must not take the server
                        // down, and must still decrement the gauge.
                        let result = catch_unwind(AssertUnwindSafe(|| {
                            handle_connection(&state, stream);
                        }));
                        if result.is_err() {
                            Metrics::global().incr("http.handler_panics", 1);
                        }
                        let mut active =
                            state.active.lock().unwrap_or_else(|p| p.into_inner());
                        *active -= 1;
                        drop(active);
                        state.all_idle.notify_all();
                    });
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => {
                    // Transient accept failure (e.g. EMFILE): back off.
                    std::thread::sleep(Duration::from_millis(50));
                }
            }
        }
    }

    /// Stop-the-world shutdown: no new connections (the accept loop has
    /// exited), in-flight requests get `drain_deadline` to finish, then
    /// the pool drains and artifacts are flushed.
    fn drain(self, addr: SocketAddr) -> std::io::Result<ServeSummary> {
        let drain_start = Instant::now();
        self.state.shutdown.cancel();
        drop(self.listener);

        // Wait for connection handlers.
        {
            let deadline = self.state.config.drain_deadline;
            let mut active = self.state.active.lock().unwrap_or_else(|p| p.into_inner());
            while *active > 0 {
                let elapsed = drain_start.elapsed();
                if elapsed >= deadline {
                    break;
                }
                let (guard, _) = self
                    .state
                    .all_idle
                    .wait_timeout(active, deadline - elapsed)
                    .unwrap_or_else(|p| p.into_inner());
                active = guard;
            }
        }
        let drain = self.state.pool.drain(self.state.config.drain_deadline);
        let uptime = self.started.elapsed();

        // Compact the live-delta WAL into its snapshot before the
        // warm-start flush: both are best-effort — a failed compaction
        // leaves the WAL intact, so the next boot replays instead.
        if let Err(e) = self.state.live.compact() {
            obs::warn("live.compact_failed", &[("error", e.to_string().into())]);
        }
        // Flush the warm-start snapshot first so its gauges land in the
        // metrics snapshot below. A failed flush degrades to no
        // snapshot — the next boot is cold — never a failed drain.
        let mut snapshot_path = None;
        if let Some(dir) = &self.state.config.store_dir {
            match persist::flush(dir, &self.state.cache, &self.state.registry) {
                Ok(report) => snapshot_path = Some(report.path),
                Err(e) => obs::warn(
                    "store.flush_failed",
                    &[
                        ("dir", dir.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                ),
            }
        }

        // Flush artifacts: metrics snapshot + run manifest.
        let out_dir = &self.state.config.out_dir;
        std::fs::create_dir_all(out_dir)?;
        let cache = self.state.cache.stats();
        let m = Metrics::global();
        m.gauge_set("serve.uptime_s", uptime.as_secs_f64());
        m.gauge_set("serve.cache_hit_rate", cache.hit_rate());
        m.gauge_set("serve.resident_graphs", self.state.registry.len() as f64);
        let metrics_path = out_dir.join("serve_metrics.json");
        m.write_snapshot(&metrics_path)?;

        // The trace ring becomes a durable artifact: one
        // `socnet-trace-v1` line per resident trace, oldest first
        // (validated by `socnet obs-check`). Only written when at
        // least one trace sealed — an untraced run has nothing to say.
        if self.state.traces.sealed_total() > 0 {
            let traces_path = out_dir.join("traces.jsonl");
            if let Err(e) = write_atomic(&traces_path, self.state.traces.render_jsonl().as_bytes())
            {
                obs::warn(
                    "trace.flush_failed",
                    &[
                        ("path", traces_path.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                );
            }
        }

        let mut manifest = RunManifest::new("serve");
        manifest
            .arg_str("addr", &addr.to_string())
            .arg_int("threads", self.state.pool.threads() as u64)
            .arg_int("cache_bytes", self.state.config.cache_bytes as u64)
            .arg_num("default_scale", self.state.config.default_scale, 6)
            .arg_int("default_seed", self.state.config.default_seed)
            .arg_int("requests", self.state.requests())
            .arg_int("cache_hits", cache.hits)
            .arg_int("cache_misses", cache.misses)
            .arg_int("cache_evictions", cache.evictions)
            .arg_int("cache_poisonings", cache.poisonings);
        manifest.set_git_rev(&git_rev()).set_hostname(&hostname());

        let mut stage = StageReport::new("requests");
        stage.wall = uptime;
        {
            let stats = self.state.route_stats.lock().unwrap_or_else(|p| p.into_inner());
            for (class, stat) in stats.iter() {
                let attempts = u32::try_from(stat.requests).unwrap_or(u32::MAX);
                let record = if stat.errors == 0 {
                    UnitRecord::completed(*class, attempts)
                } else {
                    UnitRecord::failed(
                        *class,
                        attempts,
                        format!("{} of {} responses were errors", stat.errors, stat.requests),
                    )
                };
                stage.units.push(record.with_wall(stat.wall));
            }
        }
        let mut report = RunReport::new();
        report.push(stage);
        let manifest_path = out_dir.join("run.json");
        manifest.write(&report, &manifest_path)?;

        obs::info(
            "serve.drain",
            &[
                ("requests", self.state.requests().into()),
                ("abandoned", (drain.abandoned as u64).into()),
                ("uptime_s", uptime.as_secs_f64().into()),
            ],
        );
        Ok(ServeSummary {
            requests: self.state.requests(),
            drain,
            uptime,
            manifest_path,
            metrics_path,
            snapshot_path,
        })
    }
}

fn handle_connection(state: &Arc<AppState>, stream: TcpStream) {
    // Bound how long a slow or malicious client can hold the thread.
    let io_deadline = state.config.request_deadline;
    stream.set_write_timeout(Some(io_deadline)).ok();
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = stream;
    // The header-read deadline applies uniformly — the first request
    // included — so a client that connects and sends nothing cannot
    // hold the thread for the full request deadline. (Keep-alive reuse
    // keeps its shorter idle window.)
    let header_deadline = state.config.header_deadline.min(io_deadline);
    for served in 0..MAX_REQUESTS_PER_CONNECTION {
        let read_deadline =
            if served == 0 { header_deadline } else { KEEP_ALIVE_IDLE.min(header_deadline) };
        writer.set_read_timeout(Some(read_deadline)).ok();
        let request_start = Instant::now();
        let mut request_trace: Option<TraceHandle> = None;
        let (class, response, client_keep_alive) = match http::read_request(&mut reader) {
            Ok(request) => {
                state.count_request();
                let trace = state.begin_trace(&request.method, &request.path, request_start);
                if let Some(t) = &trace {
                    t.leaf("read_parse", "", request_start.elapsed());
                }
                let cancel = CancelToken::with_budget(state.config.request_deadline);
                let (class, response) = {
                    let _tl = trace::enter(trace.clone());
                    let _handle_span = trace.as_ref().map(|t| t.stage("handle"));
                    routes::handle(state, &request, &cancel)
                };
                if let Some(t) = &trace {
                    t.set_route(class);
                    t.set_status(response.status);
                }
                request_trace = trace;
                (class, response, request.keep_alive)
            }
            Err(HttpError::PayloadTooLarge) => {
                state.count_request();
                Metrics::global().incr("http.rejected_oversize", 1);
                ("malformed", routes::error_response(413, "request body too large"), false)
            }
            Err(HttpError::HeadersTooLarge) => {
                state.count_request();
                Metrics::global().incr("http.rejected_oversize", 1);
                ("malformed", routes::error_response(431, "request head too large"), false)
            }
            Err(HttpError::BadRequest(message)) => {
                state.count_request();
                ("malformed", routes::error_response(400, &message), false)
            }
            // A keep-alive client hanging up between requests, or a
            // socket error mid-read: nothing to say either way.
            Err(HttpError::Closed) | Err(HttpError::Io(_)) => return,
        };
        state.account_response(class, response.status, request_start.elapsed());
        let response = match &request_trace {
            Some(t) => response.with_header("X-Trace-Id", &t.id_text()),
            None => response,
        };
        // Advertise keep-alive only when the server will actually read
        // another request: the client asked, the per-connection budget
        // has room, and no drain is underway.
        let keep_alive = client_keep_alive
            && served + 1 < MAX_REQUESTS_PER_CONNECTION
            && !state.shutdown.is_cancelled();
        let write_result = {
            let _write_span = request_trace.as_ref().map(|t| t.stage("write"));
            response.write_to(&mut writer, keep_alive)
        };
        if let Some(t) = &request_trace {
            if write_result.is_ok() {
                t.finish(&state.traces);
            } else {
                t.finish_aborted(&state.traces);
            }
        }
        if write_result.is_err() || !keep_alive {
            return;
        }
        Metrics::global().incr("http.keepalive_reuses", 1);
    }
}
