//! Load-once / share-many graph residency, sharded.
//!
//! Every query route needs a [`Graph`], and building one (scaling a
//! dataset model, wiring a CSR) is orders of magnitude more expensive
//! than answering a cached property question about it. The registry
//! makes residency explicit: graphs are keyed by *(dataset, scale,
//! seed)*, built at most once per key, and handed out behind [`Arc`] so
//! a hundred concurrent requests share one copy. Concurrent loads of
//! the same key coalesce — one caller builds, the rest park on a
//! condvar until the graph (or the build error) is in.
//!
//! The key space is split across a fixed array of [`SHARD_COUNT`]
//! shards, each with its own mutex, condvar, and resident-byte counter,
//! so lookups of different graphs never contend on one lock and a slow
//! build only stalls waiters for *its* key's shard. Each shard accounts
//! for itself; [`GraphRegistry::resident_bytes`] sums the counters, and
//! cross-shard eviction pressure arrives through
//! [`GraphRegistry::evict_coldest`] — the memory governor's rung 3
//! squeezes the fattest shard's coldest graph (see `crate::govern`).

use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use socnet_core::{Csr, Graph};
use socnet_gen::Dataset;
use socnet_runner::{CancelToken, Metrics};

/// How long a coalesced waiter sleeps between cancellation checks.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Fixed number of key-hashed shards. A small power of two: enough that
/// a handful of resident graphs land on distinct locks, small enough
/// that summing per-shard counters stays trivial.
pub const SHARD_COUNT: usize = 8;

/// Identity of one resident graph: dataset + generation parameters.
///
/// The scale is stored by bit pattern so the key is `Eq + Hash` without
/// float comparisons; two textually different but numerically equal
/// scales (`0.1` vs `1e-1`) therefore collapse to the same key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphKey {
    dataset: Dataset,
    scale_bits: u64,
    seed: u64,
}

impl GraphKey {
    /// Builds a key. `scale` must be finite and positive — the same
    /// contract `Dataset::generate_scaled` enforces; the route layer
    /// validates before constructing a key.
    pub fn new(dataset: Dataset, scale: f64, seed: u64) -> GraphKey {
        GraphKey { dataset, scale_bits: scale.to_bits(), seed }
    }

    /// The dataset this key resolves.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The generation scale.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A canonical human-readable label, also used as the prefix of
    /// every property-cache key derived from this graph.
    pub fn label(&self) -> String {
        format!("{}@{}#{}", self.dataset.name(), self.scale(), self.seed)
    }
}

/// A resident graph plus the bookkeeping the registry reports about it.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The shared graph.
    pub graph: Graph,
    /// Compact CSR slabs of the same graph, built once at load so every
    /// property kernel the routes run shares them without converting.
    pub csr: Csr,
    /// Approximate resident size: graph CSR offsets + adjacency, plus
    /// the compact slabs.
    pub approx_bytes: usize,
    /// How long the build took.
    pub load_wall: Duration,
}

pub(crate) fn approx_graph_bytes(g: &Graph, csr: &Csr) -> usize {
    // Graph CSR layout ((n + 1) 8-byte offsets + one 4-byte entry per
    // directed edge slot) plus the resident compact slabs.
    (g.node_count() + 1) * 8 + g.degree_sum() * 4 + csr.byte_size()
}

/// One row of [`GraphRegistry::list`].
#[derive(Debug, Clone)]
pub struct ResidentInfo {
    /// The graph's key.
    pub key: GraphKey,
    /// Nodes in the resident graph.
    pub nodes: usize,
    /// Undirected edges in the resident graph.
    pub edges: usize,
    /// Approximate resident bytes.
    pub bytes: usize,
    /// Lookups served since load.
    pub hits: u64,
    /// Build wall time.
    pub load_wall: Duration,
}

/// Persistable metadata of one graph: everything the registry knows
/// about a residency except the graph itself. Exported at drain and
/// imported at boot, where the rows become *remembered* graphs — the
/// server reports them but rebuilds lazily on first touch.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphMeta {
    /// The dataset.
    pub dataset: Dataset,
    /// Generation scale.
    pub scale: f64,
    /// Generation seed.
    pub seed: u64,
    /// Approximate resident bytes the graph occupied.
    pub approx_bytes: usize,
    /// How long the build took.
    pub load_wall: Duration,
    /// Lookups served before the snapshot.
    pub hits: u64,
}

impl GraphMeta {
    /// The canonical label of the graph this row describes.
    pub fn label(&self) -> String {
        GraphKey::new(self.dataset, self.scale, self.seed).label()
    }
}

/// Why a load failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The builder returned an error or panicked.
    Build(String),
    /// The caller's deadline expired while waiting for another
    /// caller's in-flight build of the same key.
    DeadlineExceeded,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Build(m) => write!(f, "graph build failed: {m}"),
            RegistryError::DeadlineExceeded => {
                write!(f, "deadline expired while waiting for a graph load")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

enum Slot {
    /// Some caller is building; everyone else waits on the condvar.
    Loading,
    /// Built and shared. `touched` is a registry-global LRU stamp,
    /// bumped on every lookup — the governor's rung 3 evicts the
    /// coldest stamp in the fattest shard.
    Resident { graph: Arc<LoadedGraph>, hits: u64, touched: u64 },
}

type Builder = Box<dyn Fn(&GraphKey) -> Graph + Send + Sync>;

/// One shard: its keys, its lock, its waiters, its byte count.
struct Shard {
    state: Mutex<ShardState>,
    loaded: Condvar,
}

#[derive(Default)]
struct ShardState {
    slots: HashMap<GraphKey, Slot>,
    /// Bytes across this shard's resident graphs, maintained
    /// incrementally on insert/evict.
    resident_bytes: usize,
}

/// The load-once / share-many graph store.
pub struct GraphRegistry {
    shards: Vec<Shard>,
    builder: Builder,
    /// Graph metadata hydrated from a snapshot: reported, not resident.
    remembered: Mutex<Vec<GraphMeta>>,
    /// Registry-global monotonic touch clock for LRU stamps. Atomic so
    /// a stamp never requires more than the one shard lock the toucher
    /// already holds.
    clock: AtomicU64,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::new()
    }
}

fn lock(shard: &Shard) -> MutexGuard<'_, ShardState> {
    shard.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl GraphRegistry {
    /// A registry that builds graphs via `Dataset::generate_scaled`.
    pub fn new() -> GraphRegistry {
        GraphRegistry::with_builder(Box::new(|key: &GraphKey| {
            key.dataset().generate_scaled(key.scale(), key.seed())
        }))
    }

    /// A registry with an injected builder — tests use this to make
    /// builds slow, observable, or failing on demand.
    pub fn with_builder(builder: Builder) -> GraphRegistry {
        let shards = (0..SHARD_COUNT)
            .map(|_| Shard { state: Mutex::new(ShardState::default()), loaded: Condvar::new() })
            .collect();
        GraphRegistry {
            shards,
            builder,
            remembered: Mutex::new(Vec::new()),
            clock: AtomicU64::new(0),
        }
    }

    /// The next LRU touch stamp.
    fn tick(&self) -> u64 {
        self.clock.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Which shard owns `key`.
    pub fn shard_of(&self, key: &GraphKey) -> usize {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        key.hash(&mut hasher);
        (hasher.finish() % self.shards.len() as u64) as usize
    }

    /// The fixed shard count.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Per-shard resident bytes, indexed by shard.
    pub fn shard_bytes(&self) -> Vec<usize> {
        self.shards.iter().map(|s| lock(s).resident_bytes).collect()
    }

    /// Returns the resident graph for `key`, building it if absent.
    ///
    /// Exactly one caller runs the builder per key; concurrent callers
    /// for the same key block until that build resolves. The build runs
    /// under `catch_unwind`, so a panicking generator becomes a
    /// [`RegistryError::Build`] for the builder instead of a crash; a
    /// failed slot is removed, so waiters (and later identical
    /// requests) retry with a fresh build.
    /// Only `key`'s shard is locked at any point — loads of graphs on
    /// other shards proceed untouched.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Build`] if the builder fails or panics;
    /// [`RegistryError::DeadlineExceeded`] if `cancel` fires while
    /// waiting on another caller's build.
    pub fn get_or_load(
        &self,
        key: &GraphKey,
        cancel: &CancelToken,
    ) -> Result<Arc<LoadedGraph>, RegistryError> {
        let shard = &self.shards[self.shard_of(key)];
        {
            let mut state = lock(shard);
            loop {
                match state.slots.get_mut(key) {
                    Some(Slot::Resident { graph, hits, touched }) => {
                        *hits += 1;
                        *touched = self.tick();
                        Metrics::global().incr("registry.hits", 1);
                        return Ok(Arc::clone(graph));
                    }
                    Some(Slot::Loading) => {
                        if cancel.is_cancelled() {
                            return Err(RegistryError::DeadlineExceeded);
                        }
                        let (guard, _) = shard
                            .loaded
                            .wait_timeout(state, WAIT_SLICE)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        state = guard;
                    }
                    None => {
                        state.slots.insert(key.clone(), Slot::Loading);
                        break;
                    }
                }
            }
        }

        // We own the build. Run it unlocked so every other key — even
        // on this shard — stays live for resident lookups elsewhere.
        let start = Instant::now();
        let built = catch_unwind(AssertUnwindSafe(|| (self.builder)(key)));
        let result = {
            let mut state = lock(shard);
            match built {
                Ok(graph) => {
                    let csr = Csr::from_graph(&graph);
                    let loaded = Arc::new(LoadedGraph {
                        approx_bytes: approx_graph_bytes(&graph, &csr),
                        load_wall: start.elapsed(),
                        csr,
                        graph,
                    });
                    Metrics::global().incr("registry.loads", 1);
                    state.resident_bytes += loaded.approx_bytes;
                    let touched = self.tick();
                    state.slots.insert(
                        key.clone(),
                        Slot::Resident { graph: Arc::clone(&loaded), hits: 0, touched },
                    );
                    Ok(loaded)
                }
                Err(payload) => {
                    state.slots.remove(key);
                    Err(RegistryError::Build(panic_text(payload.as_ref())))
                }
            }
        };
        shard.loaded.notify_all();
        self.recompute_gauges();
        result
    }

    /// Swaps a freshly built graph into `key`'s slot under the shard
    /// lock — the live subsystem's rebuild path. Readers flip
    /// atomically from the old slabs to the new; the old `Arc` drains
    /// as in-flight requests finish. Hit counts carry over from the
    /// replaced residency.
    ///
    /// Returns the new [`LoadedGraph`] and whether the swap happened:
    /// when a cold load of the same key is in flight the slot is left
    /// alone (the builder owns it and would clobber the swap anyway)
    /// and the caller gets `false` — compute on the returned graph,
    /// retry the swap later.
    pub fn replace(
        &self,
        key: &GraphKey,
        graph: Graph,
        csr: Csr,
        load_wall: Duration,
    ) -> (Arc<LoadedGraph>, bool) {
        let loaded = Arc::new(LoadedGraph {
            approx_bytes: approx_graph_bytes(&graph, &csr),
            load_wall,
            csr,
            graph,
        });
        let shard = &self.shards[self.shard_of(key)];
        let swapped = {
            let mut state = lock(shard);
            let hits = match state.slots.remove(key) {
                Some(Slot::Resident { graph: old, hits, .. }) => {
                    debug_assert!(
                        state.resident_bytes >= old.approx_bytes,
                        "registry byte underflow on replace"
                    );
                    state.resident_bytes = state.resident_bytes.saturating_sub(old.approx_bytes);
                    Some(hits)
                }
                Some(Slot::Loading) => {
                    state.slots.insert(key.clone(), Slot::Loading);
                    None
                }
                None => Some(0),
            };
            if let Some(hits) = hits {
                state.resident_bytes += loaded.approx_bytes;
                let touched = self.tick();
                state.slots.insert(
                    key.clone(),
                    Slot::Resident { graph: Arc::clone(&loaded), hits, touched },
                );
                true
            } else {
                false
            }
        };
        if swapped {
            shard.loaded.notify_all();
            self.recompute_gauges();
        }
        (loaded, swapped)
    }

    /// Drops the resident graph for `key`, if any. Returns whether a
    /// resident entry was removed (an in-flight load is left alone).
    /// The shard's byte counter and the resident-byte gauge are
    /// recomputed before this returns, so a metrics snapshot taken
    /// right after an evict never reports the evicted bytes.
    pub fn evict(&self, key: &GraphKey) -> bool {
        let shard = &self.shards[self.shard_of(key)];
        let removed = {
            let mut state = lock(shard);
            match state.slots.get(key) {
                Some(Slot::Resident { graph, .. }) => {
                    debug_assert!(
                        state.resident_bytes >= graph.approx_bytes,
                        "registry byte underflow on evict"
                    );
                    state.resident_bytes = state.resident_bytes.saturating_sub(graph.approx_bytes);
                    state.slots.remove(key);
                    true
                }
                _ => false,
            }
        };
        if removed {
            Metrics::global().incr("registry.evictions", 1);
            self.recompute_gauges();
        }
        removed
    }

    /// Evicts the coldest graph (oldest LRU touch stamp) in the fattest
    /// shard — the governor's rung 3. The globally newest-touched graph
    /// is exempt unless `allow_newest`, mirroring the property cache's
    /// newest-entry exemption: the graph a request just loaded must not
    /// be shot out from under it except as a last resort.
    ///
    /// Returns the evicted key and its approximate bytes, or `None`
    /// when nothing eligible is resident. Shards are locked one at a
    /// time (snapshot, then a normal [`GraphRegistry::evict`]), never
    /// two at once.
    pub fn evict_coldest(&self, allow_newest: bool) -> Option<(GraphKey, usize)> {
        // Snapshot (shard, key, touched, bytes) of every resident graph.
        let mut rows: Vec<(usize, GraphKey, u64, usize)> = Vec::new();
        let mut shard_totals = vec![0usize; self.shards.len()];
        for (i, shard) in self.shards.iter().enumerate() {
            let state = lock(shard);
            shard_totals[i] = state.resident_bytes;
            rows.extend(state.slots.iter().filter_map(|(key, slot)| match slot {
                Slot::Resident { graph, touched, .. } => {
                    Some((i, key.clone(), *touched, graph.approx_bytes))
                }
                _ => None,
            }));
        }
        let newest = rows.iter().map(|r| r.2).max()?;
        let victim = rows
            .iter()
            .filter(|r| allow_newest || r.2 != newest || rows.len() == 1)
            .min_by(|a, b| shard_totals[b.0].cmp(&shard_totals[a.0]).then(a.2.cmp(&b.2)))?;
        let (_, key, _, bytes) = victim.clone();
        if self.evict(&key) {
            Some((key, bytes))
        } else {
            None
        }
    }

    /// Every resident graph, sorted by label for stable output.
    pub fn list(&self) -> Vec<ResidentInfo> {
        let mut rows: Vec<ResidentInfo> = Vec::new();
        for shard in &self.shards {
            let state = lock(shard);
            rows.extend(state.slots.iter().filter_map(|(key, slot)| match slot {
                Slot::Resident { graph, hits, .. } => Some(ResidentInfo {
                    key: key.clone(),
                    nodes: graph.graph.node_count(),
                    edges: graph.graph.edge_count(),
                    bytes: graph.approx_bytes,
                    hits: *hits,
                    load_wall: graph.load_wall,
                }),
                _ => None,
            }));
        }
        rows.sort_by(|a, b| a.key.label().cmp(&b.key.label()));
        rows
    }

    /// Total approximate bytes across resident graphs (sum of the
    /// per-shard counters).
    pub fn resident_bytes(&self) -> usize {
        self.shards.iter().map(|s| lock(s).resident_bytes).sum()
    }

    /// Number of resident graphs (loads in flight excluded).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| lock(s).slots.values().filter(|v| matches!(v, Slot::Resident { .. })).count())
            .sum()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Metadata of every resident graph, sorted by label — what the
    /// drain-time snapshot persists.
    pub fn export_meta(&self) -> Vec<GraphMeta> {
        let mut rows: Vec<GraphMeta> = Vec::new();
        for shard in &self.shards {
            let state = lock(shard);
            rows.extend(state.slots.iter().filter_map(|(key, slot)| match slot {
                Slot::Resident { graph, hits, .. } => Some(GraphMeta {
                    dataset: key.dataset(),
                    scale: key.scale(),
                    seed: key.seed(),
                    approx_bytes: graph.approx_bytes,
                    load_wall: graph.load_wall,
                    hits: *hits,
                }),
                _ => None,
            }));
        }
        rows.sort_by_key(GraphMeta::label);
        rows
    }

    /// Installs hydrated metadata rows as *remembered* graphs. Nothing
    /// becomes resident — graphs rebuild lazily on first touch — but
    /// the rows show up in [`GraphRegistry::remembered`] so `/datasets`
    /// can say what the pre-restart process was serving. Returns how
    /// many rows were installed.
    pub fn import_meta(&self, rows: Vec<GraphMeta>) -> usize {
        let mut remembered = self.remembered.lock().unwrap_or_else(|p| p.into_inner());
        *remembered = rows;
        remembered.len()
    }

    /// The metadata rows hydrated at boot, if any.
    pub fn remembered(&self) -> Vec<GraphMeta> {
        self.remembered.lock().unwrap_or_else(|p| p.into_inner()).clone()
    }

    /// Recomputes the `registry.resident_bytes` gauge from the shard
    /// counters. Called on every load and evict; public so the evict
    /// route can force a refresh after compound operations.
    pub fn recompute_gauges(&self) {
        Metrics::global().gauge_set("registry.resident_bytes", self.resident_bytes() as f64);
    }
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_key() -> GraphKey {
        GraphKey::new(Dataset::RiceGrad, 0.05, 42)
    }

    #[test]
    fn key_identity_is_by_value_and_label_is_canonical() {
        let a = GraphKey::new(Dataset::WikiVote, 0.1, 7);
        let b = GraphKey::new(Dataset::WikiVote, 1e-1, 7);
        assert_eq!(a, b, "numerically equal scales are one key");
        assert_eq!(a.label(), "Wiki-vote@0.1#7");
        assert_ne!(a, GraphKey::new(Dataset::WikiVote, 0.1, 8));
    }

    #[test]
    fn loads_once_and_shares_thereafter() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = {
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                builds.fetch_add(1, Ordering::SeqCst);
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        };
        let cancel = CancelToken::new();
        let key = tiny_key();
        let first = registry.get_or_load(&key, &cancel).expect("load");
        let second = registry.get_or_load(&key, &cancel).expect("hit");
        assert!(Arc::ptr_eq(&first, &second), "same resident graph");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "built exactly once");
        assert_eq!(registry.len(), 1);
        assert!(registry.resident_bytes() > 0);
        let rows = registry.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].hits, 1, "second lookup counted as a hit");
        assert_eq!(rows[0].nodes, first.graph.node_count());
    }

    #[test]
    fn concurrent_loads_of_one_key_coalesce() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new({
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                builds.fetch_add(1, Ordering::SeqCst);
                // Make the build window wide enough that the other
                // threads demonstrably arrive during it.
                std::thread::sleep(Duration::from_millis(50));
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    registry.get_or_load(&tiny_key(), &CancelToken::new()).expect("load")
                })
            })
            .collect();
        let graphs: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "one builder ran");
        for g in &graphs[1..] {
            assert!(Arc::ptr_eq(&graphs[0], g));
        }
    }

    #[test]
    fn failed_build_reports_and_allows_retry() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = {
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                if builds.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("generator exploded");
                }
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        };
        let cancel = CancelToken::new();
        let err = registry.get_or_load(&tiny_key(), &cancel).expect_err("first build fails");
        assert!(matches!(&err, RegistryError::Build(m) if m.contains("generator exploded")));
        assert_eq!(registry.len(), 0, "failed slot is not resident");
        // The failure was observed and removed — a retry succeeds.
        registry.get_or_load(&tiny_key(), &cancel).expect("retry succeeds");
        assert_eq!(builds.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn evict_frees_residency() {
        let registry = GraphRegistry::new();
        let key = tiny_key();
        registry.get_or_load(&key, &CancelToken::new()).expect("load");
        assert!(!registry.is_empty());
        assert!(registry.evict(&key));
        assert!(!registry.evict(&key), "second evict finds nothing");
        assert!(registry.is_empty());
        assert_eq!(registry.resident_bytes(), 0);
    }

    #[test]
    fn cancelled_waiter_gets_deadline_error() {
        let registry = Arc::new(GraphRegistry::with_builder(Box::new(|key| {
            std::thread::sleep(Duration::from_millis(400));
            key.dataset().generate_scaled(key.scale(), key.seed())
        })));
        let builder_handle = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.get_or_load(&tiny_key(), &CancelToken::new()))
        };
        // Give the builder thread time to claim the Loading slot.
        std::thread::sleep(Duration::from_millis(50));
        let cancel = CancelToken::with_budget(Duration::from_millis(1));
        let err = registry.get_or_load(&tiny_key(), &cancel).expect_err("deadline");
        assert_eq!(err, RegistryError::DeadlineExceeded);
        builder_handle.join().expect("no panic").expect("build succeeds");
    }

    #[test]
    fn shard_byte_accounting_sums_to_the_total_and_tracks_eviction() {
        let registry = GraphRegistry::new();
        let cancel = CancelToken::new();
        // Several distinct keys (different seeds) so multiple shards
        // are exercised with high probability.
        let keys: Vec<GraphKey> =
            (0..6).map(|seed| GraphKey::new(Dataset::RiceGrad, 0.05, seed)).collect();
        for key in &keys {
            registry.get_or_load(key, &cancel).expect("load");
        }
        assert_eq!(registry.len(), keys.len());
        let per_shard = registry.shard_bytes();
        assert_eq!(per_shard.len(), SHARD_COUNT);
        assert_eq!(per_shard.iter().sum::<usize>(), registry.resident_bytes());
        assert!(
            per_shard.iter().filter(|&&b| b > 0).count() >= 2,
            "6 keys all hashed to one shard: {per_shard:?}"
        );
        // Evicting one key decrements exactly its shard.
        let victim = &keys[3];
        let victim_shard = registry.shard_of(victim);
        let before = registry.shard_bytes();
        assert!(registry.evict(victim));
        let after = registry.shard_bytes();
        assert!(after[victim_shard] < before[victim_shard]);
        for (i, (b, a)) in before.iter().zip(&after).enumerate() {
            if i != victim_shard {
                assert_eq!(b, a, "unrelated shard {i} changed");
            }
        }
        assert_eq!(after.iter().sum::<usize>(), registry.resident_bytes());
    }

    #[test]
    fn export_import_meta_round_trips_without_residency() {
        let registry = GraphRegistry::new();
        let cancel = CancelToken::new();
        let key = tiny_key();
        registry.get_or_load(&key, &cancel).expect("load");
        registry.get_or_load(&key, &cancel).expect("hit");
        let exported = registry.export_meta();
        assert_eq!(exported.len(), 1);
        assert_eq!(exported[0].label(), key.label());
        assert_eq!(exported[0].hits, 1);
        assert!(exported[0].approx_bytes > 0);

        let fresh = GraphRegistry::new();
        assert_eq!(fresh.import_meta(exported.clone()), 1);
        assert_eq!(fresh.remembered(), exported);
        assert!(fresh.is_empty(), "imported metadata must not fake residency");
        assert_eq!(fresh.resident_bytes(), 0);
    }
}
