//! Load-once / share-many graph residency.
//!
//! Every query route needs a [`Graph`], and building one (scaling a
//! dataset model, wiring a CSR) is orders of magnitude more expensive
//! than answering a cached property question about it. The registry
//! makes residency explicit: graphs are keyed by *(dataset, scale,
//! seed)*, built at most once per key, and handed out behind [`Arc`] so
//! a hundred concurrent requests share one copy. Concurrent loads of
//! the same key coalesce — one caller builds, the rest park on a
//! condvar until the graph (or the build error) is in.

use std::collections::HashMap;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use socnet_core::Graph;
use socnet_gen::Dataset;
use socnet_runner::{CancelToken, Metrics};

/// How long a coalesced waiter sleeps between cancellation checks.
const WAIT_SLICE: Duration = Duration::from_millis(25);

/// Identity of one resident graph: dataset + generation parameters.
///
/// The scale is stored by bit pattern so the key is `Eq + Hash` without
/// float comparisons; two textually different but numerically equal
/// scales (`0.1` vs `1e-1`) therefore collapse to the same key.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct GraphKey {
    dataset: Dataset,
    scale_bits: u64,
    seed: u64,
}

impl GraphKey {
    /// Builds a key. `scale` must be finite and positive — the same
    /// contract `Dataset::generate_scaled` enforces; the route layer
    /// validates before constructing a key.
    pub fn new(dataset: Dataset, scale: f64, seed: u64) -> GraphKey {
        GraphKey { dataset, scale_bits: scale.to_bits(), seed }
    }

    /// The dataset this key resolves.
    pub fn dataset(&self) -> Dataset {
        self.dataset
    }

    /// The generation scale.
    pub fn scale(&self) -> f64 {
        f64::from_bits(self.scale_bits)
    }

    /// The generation seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// A canonical human-readable label, also used as the prefix of
    /// every property-cache key derived from this graph.
    pub fn label(&self) -> String {
        format!("{}@{}#{}", self.dataset.name(), self.scale(), self.seed)
    }
}

/// A resident graph plus the bookkeeping the registry reports about it.
#[derive(Debug)]
pub struct LoadedGraph {
    /// The shared graph.
    pub graph: Graph,
    /// Approximate resident size: CSR offsets + adjacency.
    pub approx_bytes: usize,
    /// How long the build took.
    pub load_wall: Duration,
}

fn approx_graph_bytes(g: &Graph) -> usize {
    // CSR layout: (n + 1) 8-byte offsets + one 4-byte entry per
    // directed edge slot.
    (g.node_count() + 1) * 8 + g.degree_sum() * 4
}

/// One row of [`GraphRegistry::list`].
#[derive(Debug, Clone)]
pub struct ResidentInfo {
    /// The graph's key.
    pub key: GraphKey,
    /// Nodes in the resident graph.
    pub nodes: usize,
    /// Undirected edges in the resident graph.
    pub edges: usize,
    /// Approximate resident bytes.
    pub bytes: usize,
    /// Lookups served since load.
    pub hits: u64,
    /// Build wall time.
    pub load_wall: Duration,
}

/// Why a load failed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegistryError {
    /// The builder returned an error or panicked.
    Build(String),
    /// The caller's deadline expired while waiting for another
    /// caller's in-flight build of the same key.
    DeadlineExceeded,
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Build(m) => write!(f, "graph build failed: {m}"),
            RegistryError::DeadlineExceeded => {
                write!(f, "deadline expired while waiting for a graph load")
            }
        }
    }
}

impl std::error::Error for RegistryError {}

enum Slot {
    /// Some caller is building; everyone else waits on the condvar.
    Loading,
    /// Built and shared.
    Resident { graph: Arc<LoadedGraph>, hits: u64 },
    /// The build failed; waiters copy the message and the observer
    /// removes the slot so a later identical request may retry.
    Failed(String),
}

type Builder = Box<dyn Fn(&GraphKey) -> Graph + Send + Sync>;

/// The load-once / share-many graph store.
pub struct GraphRegistry {
    state: Mutex<HashMap<GraphKey, Slot>>,
    loaded: Condvar,
    builder: Builder,
}

impl Default for GraphRegistry {
    fn default() -> Self {
        GraphRegistry::new()
    }
}

fn lock(state: &Mutex<HashMap<GraphKey, Slot>>) -> MutexGuard<'_, HashMap<GraphKey, Slot>> {
    state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

impl GraphRegistry {
    /// A registry that builds graphs via `Dataset::generate_scaled`.
    pub fn new() -> GraphRegistry {
        GraphRegistry::with_builder(Box::new(|key: &GraphKey| {
            key.dataset().generate_scaled(key.scale(), key.seed())
        }))
    }

    /// A registry with an injected builder — tests use this to make
    /// builds slow, observable, or failing on demand.
    pub fn with_builder(builder: Builder) -> GraphRegistry {
        GraphRegistry { state: Mutex::new(HashMap::new()), loaded: Condvar::new(), builder }
    }

    /// Returns the resident graph for `key`, building it if absent.
    ///
    /// Exactly one caller runs the builder per key; concurrent callers
    /// for the same key block until that build resolves. The build runs
    /// under `catch_unwind`, so a panicking generator becomes a
    /// [`RegistryError::Build`] for every waiter instead of a crash.
    ///
    /// # Errors
    ///
    /// [`RegistryError::Build`] if the builder fails or panics;
    /// [`RegistryError::DeadlineExceeded`] if `cancel` fires while
    /// waiting on another caller's build.
    pub fn get_or_load(
        &self,
        key: &GraphKey,
        cancel: &CancelToken,
    ) -> Result<Arc<LoadedGraph>, RegistryError> {
        {
            let mut state = lock(&self.state);
            loop {
                match state.get_mut(key) {
                    Some(Slot::Resident { graph, hits }) => {
                        *hits += 1;
                        Metrics::global().incr("registry.hits", 1);
                        return Ok(Arc::clone(graph));
                    }
                    Some(Slot::Failed(message)) => {
                        let message = message.clone();
                        // Observe-and-remove: the next identical
                        // request gets a fresh build attempt.
                        state.remove(key);
                        return Err(RegistryError::Build(message));
                    }
                    Some(Slot::Loading) => {
                        if cancel.is_cancelled() {
                            return Err(RegistryError::DeadlineExceeded);
                        }
                        let (guard, _) = self
                            .loaded
                            .wait_timeout(state, WAIT_SLICE)
                            .unwrap_or_else(|poisoned| poisoned.into_inner());
                        state = guard;
                    }
                    None => {
                        state.insert(key.clone(), Slot::Loading);
                        break;
                    }
                }
            }
        }

        // We own the build. Run it unlocked so other keys stay live.
        let start = Instant::now();
        let built = catch_unwind(AssertUnwindSafe(|| (self.builder)(key)));
        let slot = match built {
            Ok(graph) => {
                let loaded = Arc::new(LoadedGraph {
                    approx_bytes: approx_graph_bytes(&graph),
                    load_wall: start.elapsed(),
                    graph,
                });
                Metrics::global().incr("registry.loads", 1);
                Slot::Resident { graph: loaded, hits: 0 }
            }
            Err(payload) => Slot::Failed(panic_text(payload.as_ref())),
        };
        let result = {
            let mut state = lock(&self.state);
            state.insert(key.clone(), slot);
            match state.get(key) {
                Some(Slot::Resident { graph, .. }) => Ok(Arc::clone(graph)),
                Some(Slot::Failed(message)) => {
                    let message = message.clone();
                    state.remove(key);
                    Err(RegistryError::Build(message))
                }
                _ => unreachable!("slot was just inserted"),
            }
        };
        self.loaded.notify_all();
        self.update_gauge();
        result
    }

    /// Drops the resident graph for `key`, if any. Returns whether a
    /// resident entry was removed (an in-flight load is left alone).
    pub fn evict(&self, key: &GraphKey) -> bool {
        let removed = {
            let mut state = lock(&self.state);
            match state.get(key) {
                Some(Slot::Resident { .. }) => {
                    state.remove(key);
                    true
                }
                _ => false,
            }
        };
        if removed {
            Metrics::global().incr("registry.evictions", 1);
            self.update_gauge();
        }
        removed
    }

    /// Every resident graph, sorted by label for stable output.
    pub fn list(&self) -> Vec<ResidentInfo> {
        let state = lock(&self.state);
        let mut rows: Vec<ResidentInfo> = state
            .iter()
            .filter_map(|(key, slot)| match slot {
                Slot::Resident { graph, hits } => Some(ResidentInfo {
                    key: key.clone(),
                    nodes: graph.graph.node_count(),
                    edges: graph.graph.edge_count(),
                    bytes: graph.approx_bytes,
                    hits: *hits,
                    load_wall: graph.load_wall,
                }),
                _ => None,
            })
            .collect();
        rows.sort_by(|a, b| a.key.label().cmp(&b.key.label()));
        rows
    }

    /// Total approximate bytes across resident graphs.
    pub fn resident_bytes(&self) -> usize {
        let state = lock(&self.state);
        state
            .values()
            .map(|slot| match slot {
                Slot::Resident { graph, .. } => graph.approx_bytes,
                _ => 0,
            })
            .sum()
    }

    /// Number of resident graphs (loads in flight excluded).
    pub fn len(&self) -> usize {
        let state = lock(&self.state);
        state.values().filter(|s| matches!(s, Slot::Resident { .. })).count()
    }

    /// Whether nothing is resident.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn update_gauge(&self) {
        Metrics::global().gauge_set("registry.resident_bytes", self.resident_bytes() as f64);
    }
}

/// Best-effort text of a panic payload.
pub(crate) fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn tiny_key() -> GraphKey {
        GraphKey::new(Dataset::RiceGrad, 0.05, 42)
    }

    #[test]
    fn key_identity_is_by_value_and_label_is_canonical() {
        let a = GraphKey::new(Dataset::WikiVote, 0.1, 7);
        let b = GraphKey::new(Dataset::WikiVote, 1e-1, 7);
        assert_eq!(a, b, "numerically equal scales are one key");
        assert_eq!(a.label(), "Wiki-vote@0.1#7");
        assert_ne!(a, GraphKey::new(Dataset::WikiVote, 0.1, 8));
    }

    #[test]
    fn loads_once_and_shares_thereafter() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = {
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                builds.fetch_add(1, Ordering::SeqCst);
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        };
        let cancel = CancelToken::new();
        let key = tiny_key();
        let first = registry.get_or_load(&key, &cancel).expect("load");
        let second = registry.get_or_load(&key, &cancel).expect("hit");
        assert!(Arc::ptr_eq(&first, &second), "same resident graph");
        assert_eq!(builds.load(Ordering::SeqCst), 1, "built exactly once");
        assert_eq!(registry.len(), 1);
        assert!(registry.resident_bytes() > 0);
        let rows = registry.list();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].hits, 1, "second lookup counted as a hit");
        assert_eq!(rows[0].nodes, first.graph.node_count());
    }

    #[test]
    fn concurrent_loads_of_one_key_coalesce() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = Arc::new({
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                builds.fetch_add(1, Ordering::SeqCst);
                // Make the build window wide enough that the other
                // threads demonstrably arrive during it.
                std::thread::sleep(Duration::from_millis(50));
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        });
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let registry = Arc::clone(&registry);
                std::thread::spawn(move || {
                    registry.get_or_load(&tiny_key(), &CancelToken::new()).expect("load")
                })
            })
            .collect();
        let graphs: Vec<_> = handles.into_iter().map(|h| h.join().expect("no panic")).collect();
        assert_eq!(builds.load(Ordering::SeqCst), 1, "one builder ran");
        for g in &graphs[1..] {
            assert!(Arc::ptr_eq(&graphs[0], g));
        }
    }

    #[test]
    fn failed_build_reports_and_allows_retry() {
        let builds = Arc::new(AtomicUsize::new(0));
        let registry = {
            let builds = builds.clone();
            GraphRegistry::with_builder(Box::new(move |key| {
                if builds.fetch_add(1, Ordering::SeqCst) == 0 {
                    panic!("generator exploded");
                }
                key.dataset().generate_scaled(key.scale(), key.seed())
            }))
        };
        let cancel = CancelToken::new();
        let err = registry.get_or_load(&tiny_key(), &cancel).expect_err("first build fails");
        assert!(matches!(&err, RegistryError::Build(m) if m.contains("generator exploded")));
        assert_eq!(registry.len(), 0, "failed slot is not resident");
        // The failure was observed and removed — a retry succeeds.
        registry.get_or_load(&tiny_key(), &cancel).expect("retry succeeds");
        assert_eq!(builds.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn evict_frees_residency() {
        let registry = GraphRegistry::new();
        let key = tiny_key();
        registry.get_or_load(&key, &CancelToken::new()).expect("load");
        assert!(!registry.is_empty());
        assert!(registry.evict(&key));
        assert!(!registry.evict(&key), "second evict finds nothing");
        assert!(registry.is_empty());
        assert_eq!(registry.resident_bytes(), 0);
    }

    #[test]
    fn cancelled_waiter_gets_deadline_error() {
        let registry = Arc::new(GraphRegistry::with_builder(Box::new(|key| {
            std::thread::sleep(Duration::from_millis(400));
            key.dataset().generate_scaled(key.scale(), key.seed())
        })));
        let builder_handle = {
            let registry = Arc::clone(&registry);
            std::thread::spawn(move || registry.get_or_load(&tiny_key(), &CancelToken::new()))
        };
        // Give the builder thread time to claim the Loading slot.
        std::thread::sleep(Duration::from_millis(50));
        let cancel = CancelToken::with_budget(Duration::from_millis(1));
        let err = registry.get_or_load(&tiny_key(), &cancel).expect_err("deadline");
        assert_eq!(err, RegistryError::DeadlineExceeded);
        builder_handle.join().expect("no panic").expect("build succeeds");
    }
}
