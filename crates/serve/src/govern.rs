//! The memory governor: one process-wide byte budget arbitrating every
//! resident-byte accountant in the serve stack.
//!
//! Each subsystem already accounts for itself — the registry's sharded
//! graph bytes, the property cache's entry bytes, the live manager's
//! overlay state, the trace ring's sealed records — but nothing ties
//! them together: under multi-dataset load the process can blow past
//! any real memory envelope with every individual gauge looking
//! healthy. The governor holds the line: when the sum crosses the
//! configured budget (`--mem-budget`, default off = unlimited), it
//! reclaims **synchronously, at the accounting site that crossed** —
//! no background thread, no races with the thing that allocated — by
//! walking a ladder in recompute-cost order:
//!
//! | rung | action | cost to re-derive |
//! |------|--------|-------------------|
//! | 1 | evict recompute-cheap property-cache bodies ([`PropertyCache::reclaim`], cheapest wall-cost first) | one kernel run |
//! | 2 | demote the fattest live overlay to its pending row + compact ([`LiveManager::squeeze_fattest`]: flatten + WAL reset) | rematerialize on next touch |
//! | 3 | evict the fattest shard's coldest graph ([`GraphRegistry::evict_coldest`], LRU touch stamps) | regenerate + CSR build |
//! | 4 | shed `/graphs/<name>/load` with `503 + Retry-After` | nothing — the graph never lands |
//!
//! **Invariant:** after every reclaim round,
//! `registry + cache + live + trace resident bytes <= budget` — or the
//! round records a violation (counted, gauged) because even emptying
//! every rung could not get under, which only an impossibly small
//! budget produces.
//!
//! # Lock order
//!
//! The governor's reclaim mutex sits strictly **above** every
//! subsystem lock: a reclaim round locks one subsystem at a time
//! (cache state, live `tables` → states → `wal`, registry shards one
//! by one) and never holds one subsystem's lock while entering
//! another. No subsystem ever calls the governor, so the pair
//! (governor → subsystem) is acyclic by construction. Enforce sites
//! run on route threads holding **no** subsystem locks.
//!
//! Exported series: `govern.budget_bytes` / `govern.resident_bytes`
//! gauges, `govern.reclaims_total{rung=…}` and `govern.load_shed`
//! counters, and the `govern.reclaim_seconds` histogram.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

use socnet_runner::Metrics;

use crate::cache::PropertyCache;
use crate::live::LiveManager;
use crate::registry::GraphRegistry;
use crate::trace::TraceRing;

/// The four subsystem accountants a reclaim round may squeeze,
/// borrowed together so the governor stays a passive policy object
/// with no `Arc` cycles back into [`crate::server::AppState`].
pub struct Accountants<'a> {
    /// The sharded graph registry (rung 3).
    pub registry: &'a GraphRegistry,
    /// The property cache (rung 1).
    pub cache: &'a PropertyCache,
    /// The live-overlay manager (rung 2).
    pub live: &'a LiveManager,
    /// The sealed-trace ring (accounted, never squeezed — it is
    /// already hard-bounded by its capacity).
    pub traces: &'a TraceRing,
}

impl Accountants<'_> {
    /// The process-wide resident sum the budget is checked against.
    pub fn resident_bytes(&self) -> usize {
        self.registry.resident_bytes()
            + self.cache.stats().resident_bytes
            + self.live.resident_bytes()
            + self.traces.resident_bytes()
    }
}

/// The process-wide byte-budget arbiter. `None` budget = unlimited:
/// every enforce is a no-op and behavior is byte-identical to a build
/// without the governor.
pub struct Governor {
    budget: Option<usize>,
    /// Serializes reclaim rounds: concurrent enforcers queue here
    /// instead of stampeding the same victims. Sits strictly above
    /// every subsystem lock (see the module doc).
    reclaim: Mutex<()>,
    /// Per-rung reclaim actions, mirrors of the labeled metric
    /// counters (indexed rung-1 … rung-4).
    rungs: [AtomicU64; 4],
    /// Loads shed at rung 4.
    shed: AtomicU64,
    /// Rounds that ended still over budget.
    violations: AtomicU64,
    /// Wall seconds of completed reclaim rounds, for p99 reporting.
    walls: Mutex<Vec<f64>>,
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

impl Governor {
    /// A governor holding `budget` bytes (`None` = unlimited).
    pub fn new(budget: Option<usize>) -> Governor {
        Governor {
            budget,
            reclaim: Mutex::new(()),
            rungs: [const { AtomicU64::new(0) }; 4],
            shed: AtomicU64::new(0),
            violations: AtomicU64::new(0),
            walls: Mutex::new(Vec::new()),
        }
    }

    /// The configured budget, if one is set.
    pub fn budget_bytes(&self) -> Option<usize> {
        self.budget
    }

    /// Whether a budget is being enforced.
    pub fn enabled(&self) -> bool {
        self.budget.is_some()
    }

    /// Per-rung reclaim counts (rung 1 at index 0).
    pub fn rung_counts(&self) -> [u64; 4] {
        [0, 1, 2, 3].map(|i| self.rungs[i].load(Ordering::Relaxed))
    }

    /// Loads shed at rung 4.
    pub fn shed_count(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Reclaim rounds that could not get under budget.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }

    /// Wall seconds of every completed reclaim round so far.
    pub fn reclaim_walls(&self) -> Vec<f64> {
        plock(&self.walls).clone()
    }

    fn note_rung(&self, rung: usize) {
        self.rungs[rung - 1].fetch_add(1, Ordering::Relaxed);
        Metrics::global().incr(&format!("govern.reclaims|rung={rung}"), 1);
    }

    /// Records a rung-4 shed (the route layer answered `503` instead
    /// of admitting a graph that cannot fit). Counts as a rung-4
    /// reclaim action *and* on the dedicated shed counter.
    pub fn note_shed(&self) {
        self.rungs[3].fetch_add(1, Ordering::Relaxed);
        self.shed.fetch_add(1, Ordering::Relaxed);
        let m = Metrics::global();
        m.incr("govern.reclaims|rung=4", 1);
        m.incr("govern.load_shed", 1);
    }

    /// Checks the budget and, when crossed, runs one synchronous
    /// reclaim round on the calling thread. Returns whether the
    /// resident sum is under (or at) budget afterwards — `false` means
    /// even a full ladder walk could not fit, and an admission-point
    /// caller should shed (rung 4) rather than admit more bytes.
    ///
    /// With no budget configured this is one branch and no locks.
    pub fn enforce(&self, a: &Accountants<'_>) -> bool {
        let Some(budget) = self.budget else { return true };
        let resident = a.resident_bytes();
        Metrics::global().gauge_set("govern.resident_bytes", resident as f64);
        if resident <= budget {
            return true;
        }
        let _round = plock(&self.reclaim);
        // Re-read under the round lock: the round that queued us may
        // already have reclaimed what we saw.
        let mut resident = a.resident_bytes();
        if resident <= budget {
            Metrics::global().gauge_set("govern.resident_bytes", resident as f64);
            return true;
        }
        let started = Instant::now();
        // The ladder, cheapest recompute first. Loop because one rung's
        // action can unlock the next round's cheaper option (rung 3's
        // graph evictions reset live stamps, making overlays rung-2
        // eligible); stop when under budget or nothing moved.
        loop {
            let excess = resident.saturating_sub(budget);
            if excess == 0 {
                break;
            }
            if a.cache.reclaim(excess) > 0 {
                self.note_rung(1);
                resident = a.resident_bytes();
                continue;
            }
            if let Some((_label, _bytes)) = a.live.squeeze_fattest() {
                self.note_rung(2);
                resident = a.resident_bytes();
                continue;
            }
            if let Some((key, _bytes)) = a.registry.evict_coldest(false) {
                self.evicted_graph(a, &key.label());
                self.note_rung(3);
                resident = a.resident_bytes();
                continue;
            }
            // Last resort inside rung 3: the newest-touch exemption
            // falls — better to evict the graph a request just loaded
            // (it still holds its `Arc`) than to stand in violation.
            if let Some((key, _bytes)) = a.registry.evict_coldest(true) {
                self.evicted_graph(a, &key.label());
                self.note_rung(3);
                resident = a.resident_bytes();
                continue;
            }
            break;
        }
        let wall = started.elapsed().as_secs_f64();
        plock(&self.walls).push(wall);
        let m = Metrics::global();
        m.observe("govern.reclaim_s", wall);
        m.gauge_set("govern.resident_bytes", resident as f64);
        if resident > budget {
            self.violations.fetch_add(1, Ordering::Relaxed);
            false
        } else {
            true
        }
    }

    /// Mirrors the evict route's compound sweep after a rung-3 graph
    /// eviction: the graph's cached properties and its live CSR stamp
    /// go with it, and the gauges are refreshed so a scrape taken
    /// mid-round is consistent.
    fn evicted_graph(&self, a: &Accountants<'_>, label: &str) {
        a.cache.evict_for_label(label);
        a.live.note_evicted(label);
        a.registry.recompute_gauges();
        a.cache.recompute_gauges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::GraphKey;
    use socnet_gen::Dataset;
    use socnet_runner::CancelToken;
    use std::time::Duration;

    fn accountants<'a>(
        registry: &'a GraphRegistry,
        cache: &'a PropertyCache,
        live: &'a LiveManager,
        traces: &'a TraceRing,
    ) -> Accountants<'a> {
        Accountants { registry, cache, live, traces }
    }

    #[test]
    fn no_budget_means_no_ops_and_no_locks_taken_per_request() {
        let governor = Governor::new(None);
        let registry = GraphRegistry::new();
        let cache = PropertyCache::new(1 << 20);
        let live = LiveManager::boot(None, 4096, 1024);
        let traces = TraceRing::new(4);
        let a = accountants(&registry, &cache, &live, &traces);
        assert!(governor.enforce(&a));
        assert!(!governor.enabled());
        assert_eq!(governor.rung_counts(), [0, 0, 0, 0]);
        assert_eq!(governor.violations(), 0);
    }

    #[test]
    fn rung_one_squeezes_cheap_cache_bodies_before_any_graph() {
        let registry = GraphRegistry::new();
        let cache = PropertyCache::new(1 << 20);
        let live = LiveManager::boot(None, 4096, 1024);
        let traces = TraceRing::new(4);
        let cancel = CancelToken::new();
        let key = GraphKey::new(Dataset::RiceGrad, 0.05, 42);
        registry.get_or_load(&key, &cancel).expect("load");
        let graph_bytes = registry.resident_bytes();
        // Enough cache bytes that evicting them alone gets under.
        cache.record_body("body|x@1#1|cores", &vec![0u8; 4096], Duration::from_millis(1));
        let budget = graph_bytes + 64;
        let governor = Governor::new(Some(budget));
        let a = accountants(&registry, &cache, &live, &traces);
        assert!(governor.enforce(&a));
        let rungs = governor.rung_counts();
        assert!(rungs[0] >= 1, "cache bodies went first: {rungs:?}");
        assert_eq!(rungs[2], 0, "no graph eviction was needed");
        assert_eq!(registry.len(), 1, "the graph survived");
        assert!(a.resident_bytes() <= budget, "invariant holds after the round");
    }

    #[test]
    fn rung_three_evicts_coldest_graph_and_rung_four_counts_sheds() {
        let registry = GraphRegistry::new();
        let cache = PropertyCache::new(1 << 20);
        let live = LiveManager::boot(None, 4096, 1024);
        let traces = TraceRing::new(4);
        let cancel = CancelToken::new();
        let cold = GraphKey::new(Dataset::RiceGrad, 0.05, 1);
        let warm = GraphKey::new(Dataset::RiceGrad, 0.05, 2);
        registry.get_or_load(&cold, &cancel).expect("load");
        let warm_graph = registry.get_or_load(&warm, &cancel).expect("load");
        // Budget fits roughly one graph: the colder one must go.
        let budget = registry.resident_bytes() - warm_graph.approx_bytes / 2;
        let governor = Governor::new(Some(budget));
        let a = accountants(&registry, &cache, &live, &traces);
        assert!(governor.enforce(&a));
        assert!(governor.rung_counts()[2] >= 1, "a graph was evicted");
        assert!(a.resident_bytes() <= budget, "invariant holds after the round");
        let survivors: Vec<String> =
            registry.list().into_iter().map(|r| r.key.label()).collect();
        assert_eq!(survivors, vec![warm.label()], "the newest-touched graph survived");
        governor.note_shed();
        assert_eq!(governor.shed_count(), 1);
    }

    #[test]
    fn an_impossible_budget_records_a_violation_not_a_hang() {
        let registry = GraphRegistry::new();
        let cache = PropertyCache::new(1 << 20);
        let live = LiveManager::boot(None, 4096, 1024);
        let traces = TraceRing::new(4);
        // A sealed trace the governor cannot squeeze.
        let t = crate::trace::TraceHandle::begin("GET", "/x", Instant::now());
        t.finish(&traces);
        let governor = Governor::new(Some(1));
        let a = accountants(&registry, &cache, &live, &traces);
        assert!(!governor.enforce(&a), "cannot fit under one byte");
        assert_eq!(governor.violations(), 1);
        assert_eq!(governor.reclaim_walls().len(), 1, "the round completed and was timed");
    }
}
