//! A minimal HTTP/1.1 request parser and response writer.
//!
//! The repo is deliberately dependency-free, so the front end speaks
//! just enough HTTP/1.1 over [`std::net`] for `curl`, browsers, and the
//! load harness: request-line + headers + optional `Content-Length`
//! body, percent-decoded query strings, and opt-in connection reuse — a
//! client that sends `Connection: keep-alive` may pipeline further
//! requests on the same socket (the server bounds how many, and how
//! long it waits between them); everyone else gets the classic
//! one-request `Connection: close` behaviour. Every malformed input
//! maps to a typed [`HttpError`] that the server turns into a `400` —
//! parsing never panics, whatever the bytes. A clean EOF *between*
//! requests is [`HttpError::Closed`], not an error worth logging: it is
//! how keep-alive clients hang up.

use std::io::{self, BufRead, Write};

/// Upper bound on one header or request line, in bytes.
pub const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of request headers.
pub const MAX_HEADERS: usize = 100;
/// Upper bound on a request body, in bytes.
pub const MAX_BODY_BYTES: usize = 1024 * 1024;
/// Upper bound on the whole head section (request line + headers), in
/// bytes — the most a client can buffer server-side without ever
/// finishing its headers. Everything past this is a `431`.
pub const MAX_HEAD_BYTES: usize = 64 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not a well-formed HTTP/1.x request.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`] — a `413`.
    PayloadTooLarge,
    /// A request line or header exceeds [`MAX_LINE_BYTES`], there are
    /// more than [`MAX_HEADERS`] headers, or the head section passes
    /// [`MAX_HEAD_BYTES`] without terminating — a `431`. The server
    /// never buffers past these bounds.
    HeadersTooLarge,
    /// The peer closed the connection cleanly before sending any byte
    /// of a next request — the normal end of a keep-alive exchange.
    Closed,
    /// The socket failed mid-read (client went away, read timeout).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge => write!(f, "request body too large"),
            HttpError::HeadersTooLarge => write!(f, "request headers too large"),
            HttpError::Closed => write!(f, "connection closed between requests"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// The percent-decoded path, query string excluded.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The raw body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked for connection reuse with an explicit
    /// `Connection: keep-alive`. Anything else — absent header,
    /// `close`, junk — means close after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a query parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Query parameters merged with `key=value&...` pairs from the body
    /// (the `POST` convention the admit endpoint uses).
    pub fn params_with_body(&self) -> Vec<(String, String)> {
        let mut all = self.query.clone();
        if let Ok(text) = std::str::from_utf8(&self.body) {
            all.extend(parse_query(text.trim()));
        }
        all
    }
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim (never an error — the route layer validates semantics).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded `key=value` pairs. Pairs without
/// `=` get an empty value; empty chunks are skipped.
pub fn parse_query(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| match chunk.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(chunk), String::new()),
        })
        .collect()
}

/// The parsed head section: everything before the body.
struct Head {
    method: String,
    path: String,
    query: Vec<(String, String)>,
    content_length: usize,
    keep_alive: bool,
}

/// Parses the request line from its text.
fn parse_request_line(request_line: &str) -> Result<(String, String, Vec<(String, String)>), HttpError> {
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".to_string()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("request target {target:?} is not a path")));
    }
    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok((method, percent_decode(raw_path), parse_query(raw_query)))
}

/// Parses one header line into the accumulating head.
fn parse_header_line(line: &str, head: &mut Head) -> Result<(), HttpError> {
    let (name, value) = line
        .split_once(':')
        .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
    let name = name.trim();
    if name.eq_ignore_ascii_case("content-length") {
        head.content_length = value
            .trim()
            .parse::<usize>()
            .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
    } else if name.eq_ignore_ascii_case("connection") {
        head.keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
    }
    Ok(())
}

/// Reads one `\n`-terminated line. `at_request_boundary` marks the
/// request line: EOF before its first byte is [`HttpError::Closed`]
/// (a keep-alive client hanging up), EOF anywhere else is malformed.
fn read_line(reader: &mut impl BufRead, at_request_boundary: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            if at_request_boundary && line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::BadRequest("connection closed mid-line".to_string()));
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("header line is not UTF-8".to_string()))
}

/// Reads one request from `reader` (the blocking path the
/// thread-per-connection front end uses).
///
/// # Errors
///
/// Returns [`HttpError::BadRequest`] for malformed request lines,
/// headers, or bodies; [`HttpError::PayloadTooLarge`] for oversized
/// bodies; [`HttpError::HeadersTooLarge`] for oversized lines or too
/// many headers; [`HttpError::Closed`] on clean EOF before the first
/// byte; [`HttpError::Io`] when the socket fails.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader, true)?;
    let (method, path, query) = parse_request_line(&request_line)?;
    let mut head = Head { method, path, query, content_length: 0, keep_alive: false };
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        let line = read_line(reader, false)?;
        if line.is_empty() {
            break;
        }
        parse_header_line(&line, &mut head)?;
    }
    if head.content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; head.content_length];
    if head.content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Request {
        method: head.method,
        path: head.path,
        query: head.query,
        body,
        keep_alive: head.keep_alive,
    })
}

/// The outcome of one [`try_parse`] attempt over a partial buffer.
#[derive(Debug)]
pub enum Parsed {
    /// The buffer does not yet hold a complete request — keep reading.
    /// The bounds have already been checked: an `Incomplete` buffer is
    /// always still allowed to grow.
    Incomplete,
    /// One complete request, and how many buffer bytes it consumed
    /// (pipelined bytes after `consumed` belong to the next request).
    Request {
        /// The parsed request.
        request: Request,
        /// Bytes of the buffer this request spans.
        consumed: usize,
    },
}

/// Incrementally parses the front of `buf` (the non-blocking path the
/// event-loop front end uses). Call after every read with everything
/// accumulated so far; on [`Parsed::Request`], drain `consumed` bytes
/// and call again — the client may have pipelined.
///
/// # Errors
///
/// The same classification as [`read_request`], raised as soon as the
/// partial bytes prove the request hopeless: [`HttpError::HeadersTooLarge`]
/// once the head passes its bounds *even before it terminates* (so a
/// slow-loris client cannot grow the buffer forever),
/// [`HttpError::PayloadTooLarge`] as soon as the declared length is
/// oversized, [`HttpError::BadRequest`] for malformed bytes.
pub fn try_parse(buf: &[u8]) -> Result<Parsed, HttpError> {
    // Split the head into lines, looking for the empty line that
    // terminates it. Lines end at '\n' with an optional '\r' before.
    let mut lines: Vec<&[u8]> = Vec::new();
    let mut line_start = 0usize;
    let mut head_end = None;
    for (i, &byte) in buf.iter().enumerate() {
        if byte != b'\n' {
            if i - line_start >= MAX_LINE_BYTES {
                return Err(HttpError::HeadersTooLarge);
            }
            continue;
        }
        let mut line = &buf[line_start..i];
        if line.last() == Some(&b'\r') {
            line = &line[..line.len() - 1];
        }
        if line.is_empty() && !lines.is_empty() {
            head_end = Some(i + 1);
            break;
        }
        lines.push(line);
        if lines.len() > 1 + MAX_HEADERS {
            return Err(HttpError::HeadersTooLarge);
        }
        line_start = i + 1;
    }
    let Some(head_end) = head_end else {
        if buf.len() > MAX_HEAD_BYTES {
            return Err(HttpError::HeadersTooLarge);
        }
        // An empty first line (bare CRLF before any request line) is
        // junk the blocking path rejects too; surface it now rather
        // than waiting for more bytes that cannot help.
        if let Some(first) = lines.first() {
            if first.is_empty() {
                return Err(HttpError::BadRequest("empty request line".to_string()));
            }
        }
        return Ok(Parsed::Incomplete);
    };

    let text_of = |raw: &[u8]| -> Result<String, HttpError> {
        std::str::from_utf8(raw)
            .map(str::to_string)
            .map_err(|_| HttpError::BadRequest("header line is not UTF-8".to_string()))
    };
    let request_line = text_of(lines[0])?;
    let (method, path, query) = parse_request_line(&request_line)?;
    let mut head = Head { method, path, query, content_length: 0, keep_alive: false };
    for raw in &lines[1..] {
        let line = text_of(raw)?;
        parse_header_line(&line, &mut head)?;
    }
    if head.content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    if buf.len() < head_end + head.content_length {
        return Ok(Parsed::Incomplete);
    }
    let body = buf[head_end..head_end + head.content_length].to_vec();
    Ok(Parsed::Request {
        request: Request {
            method: head.method,
            path: head.path,
            query: head.query,
            body,
            keep_alive: head.keep_alive,
        },
        consumed: head_end + head.content_length,
    })
}

/// One response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `X-Cache`.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", headers: Vec::new(), body }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8", headers: Vec::new(), body }
    }

    /// Adds one extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response (status line, headers, body) to `w`.
    /// `keep_alive` selects the `Connection` header: the server passes
    /// `true` only when it will actually read another request from this
    /// socket, so the advertised header always matches the behaviour.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the socket.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// The reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
        assert_eq!(req.segments(), vec!["healthz"]);
        assert!(!req.keep_alive, "reuse is opt-in, not default");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").expect("parses");
        assert!(req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nCONNECTION:   Keep-Alive  \r\n\r\n").expect("parses");
        assert!(req.keep_alive, "header name and value are case-insensitive");
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").expect("parses");
        assert!(!req.keep_alive, "unknown tokens mean close");
    }

    #[test]
    fn clean_eof_between_requests_is_closed_not_bad_request() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        // EOF *inside* a request line stays a bad request.
        assert!(matches!(parse("GET /x HT"), Err(HttpError::BadRequest(_))));
        // Two pipelined requests then EOF: second parse sees Closed.
        let wire = "GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(read_request(&mut reader).is_ok());
        assert!(matches!(read_request(&mut reader), Err(HttpError::Closed)));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = parse("GET /graphs/Wiki%2Dvote/mixing?eps=0.125&x=a+b HTTP/1.1\r\n\r\n")
            .expect("parses");
        assert_eq!(req.path, "/graphs/Wiki-vote/mixing");
        assert_eq!(req.param("eps"), Some("0.125"));
        assert_eq!(req.param("x"), Some("a b"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /graphs/DBLP/gatekeeper/admit HTTP/1.1\r\nContent-Length: 9\r\n\r\nsybils=50")
            .expect("parses");
        assert_eq!(req.body, b"sybils=50");
        let params = req.params_with_body();
        assert!(params.iter().any(|(k, v)| k == "sybils" && v == "50"));
    }

    #[test]
    fn bare_lf_lines_parse_like_crlf() {
        let req = parse("GET /datasets HTTP/1.1\nHost: x\n\n").expect("parses");
        assert_eq!(req.path, "/datasets");
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /a /b HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn oversized_header_lines_are_431_not_400() {
        let raw = format!("GET /x HTTP/1.1\r\nX-Big: {}\r\n\r\n", "a".repeat(MAX_LINE_BYTES + 1));
        assert!(matches!(parse(&raw), Err(HttpError::HeadersTooLarge)));
        assert!(matches!(try_parse(raw.as_bytes()), Err(HttpError::HeadersTooLarge)));
    }

    #[test]
    fn incremental_parse_reports_incomplete_then_a_full_request() {
        let wire = b"POST /graphs/DBLP/gatekeeper/admit HTTP/1.1\r\nContent-Length: 9\r\n\r\nsybils=50";
        // Every strict prefix is Incomplete, never an error.
        for cut in 0..wire.len() {
            assert!(
                matches!(try_parse(&wire[..cut]), Ok(Parsed::Incomplete)),
                "prefix of {cut} bytes must be incomplete"
            );
        }
        match try_parse(wire).expect("parses") {
            Parsed::Request { request, consumed } => {
                assert_eq!(consumed, wire.len());
                assert_eq!(request.method, "POST");
                assert_eq!(request.body, b"sybils=50");
            }
            Parsed::Incomplete => panic!("complete request must parse"),
        }
    }

    #[test]
    fn incremental_parse_handles_pipelined_requests() {
        let wire = b"GET /healthz HTTP/1.1\r\n\r\nGET /datasets HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let Parsed::Request { request, consumed } = try_parse(wire).expect("first") else {
            panic!("first request must parse");
        };
        assert_eq!(request.path, "/healthz");
        assert!(!request.keep_alive);
        let Parsed::Request { request, consumed: second } = try_parse(&wire[consumed..]).expect("second")
        else {
            panic!("second request must parse");
        };
        assert_eq!(request.path, "/datasets");
        assert!(request.keep_alive);
        assert_eq!(consumed + second, wire.len());
    }

    #[test]
    fn incremental_parse_matches_the_blocking_parser() {
        for wire in [
            "GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n",
            "GET /graphs/Wiki%2Dvote/mixing?eps=0.125&x=a+b HTTP/1.1\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 3\r\n\r\nabc",
            "GET /datasets HTTP/1.1\nHost: x\n\n",
        ] {
            let blocking = parse(wire).expect("blocking parses");
            let Parsed::Request { request, .. } = try_parse(wire.as_bytes()).expect("incremental")
            else {
                panic!("incremental must see a complete request in {wire:?}");
            };
            assert_eq!(request, blocking, "parsers disagree on {wire:?}");
        }
    }

    #[test]
    fn incremental_parse_rejects_hopeless_buffers_early() {
        // A head that can never terminate within bounds is rejected
        // before the client finishes sending it — the slow-loris case.
        let endless = vec![b'a'; MAX_HEAD_BYTES + 1];
        assert!(matches!(try_parse(&endless), Err(HttpError::HeadersTooLarge)));
        // An oversized declared body is rejected as soon as the head
        // completes, without waiting for the body bytes.
        let huge = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(try_parse(huge.as_bytes()), Err(HttpError::PayloadTooLarge)));
        // Malformed request lines fail as soon as the head terminates.
        assert!(matches!(
            try_parse(b"GARBAGE\r\n\r\n"),
            Err(HttpError::BadRequest(_))
        ));
        assert!(matches!(try_parse(b"\r\n\r\n"), Err(HttpError::BadRequest(_))));
    }

    #[test]
    fn percent_decode_passes_junk_through() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("bad%zzesc"), "bad%zzesc");
        assert_eq!(percent_decode("plus+plus"), "plus plus");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("X-Cache", "hit")
            .write_to(&mut out, false)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_responses_advertise_reuse() {
        let mut out = Vec::new();
        Response::text(200, "ok".to_string()).write_to(&mut out, true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 431, 500, 503, 504] {
            assert_ne!(status_reason(code), "Unknown");
        }
        assert_eq!(status_reason(418), "Unknown");
    }
}
