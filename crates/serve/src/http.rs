//! A minimal HTTP/1.1 request parser and response writer.
//!
//! The repo is deliberately dependency-free, so the front end speaks
//! just enough HTTP/1.1 over [`std::net`] for `curl`, browsers, and the
//! load harness: request-line + headers + optional `Content-Length`
//! body, percent-decoded query strings, and opt-in connection reuse — a
//! client that sends `Connection: keep-alive` may pipeline further
//! requests on the same socket (the server bounds how many, and how
//! long it waits between them); everyone else gets the classic
//! one-request `Connection: close` behaviour. Every malformed input
//! maps to a typed [`HttpError`] that the server turns into a `400` —
//! parsing never panics, whatever the bytes. A clean EOF *between*
//! requests is [`HttpError::Closed`], not an error worth logging: it is
//! how keep-alive clients hang up.

use std::io::{self, BufRead, Write};

/// Upper bound on one header or request line, in bytes.
const MAX_LINE_BYTES: usize = 8 * 1024;
/// Upper bound on the number of request headers.
const MAX_HEADERS: usize = 100;
/// Upper bound on a request body, in bytes.
const MAX_BODY_BYTES: usize = 1024 * 1024;

/// Why a request could not be read.
#[derive(Debug)]
pub enum HttpError {
    /// The bytes on the wire are not a well-formed HTTP/1.x request.
    BadRequest(String),
    /// The declared body exceeds [`MAX_BODY_BYTES`].
    PayloadTooLarge,
    /// The peer closed the connection cleanly before sending any byte
    /// of a next request — the normal end of a keep-alive exchange.
    Closed,
    /// The socket failed mid-read (client went away, read timeout).
    Io(io::Error),
}

impl std::fmt::Display for HttpError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HttpError::BadRequest(m) => write!(f, "bad request: {m}"),
            HttpError::PayloadTooLarge => write!(f, "request body too large"),
            HttpError::Closed => write!(f, "connection closed between requests"),
            HttpError::Io(e) => write!(f, "i/o error: {e}"),
        }
    }
}

impl std::error::Error for HttpError {}

impl From<io::Error> for HttpError {
    fn from(e: io::Error) -> Self {
        HttpError::Io(e)
    }
}

/// One parsed request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// The request method, uppercased (`GET`, `POST`, ...).
    pub method: String,
    /// The percent-decoded path, query string excluded.
    pub path: String,
    /// Decoded `key=value` pairs from the query string, in order.
    pub query: Vec<(String, String)>,
    /// The raw body (empty without a `Content-Length`).
    pub body: Vec<u8>,
    /// Whether the client asked for connection reuse with an explicit
    /// `Connection: keep-alive`. Anything else — absent header,
    /// `close`, junk — means close after the response.
    pub keep_alive: bool,
}

impl Request {
    /// The first value of a query parameter, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// The path split into non-empty segments.
    pub fn segments(&self) -> Vec<&str> {
        self.path.split('/').filter(|s| !s.is_empty()).collect()
    }

    /// Query parameters merged with `key=value&...` pairs from the body
    /// (the `POST` convention the admit endpoint uses).
    pub fn params_with_body(&self) -> Vec<(String, String)> {
        let mut all = self.query.clone();
        if let Ok(text) = std::str::from_utf8(&self.body) {
            all.extend(parse_query(text.trim()));
        }
        all
    }
}

/// Decodes `%XX` escapes and `+`-as-space; invalid escapes pass through
/// verbatim (never an error — the route layer validates semantics).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' if i + 2 < bytes.len() + 1 && i + 2 < bytes.len() + 1 => {
                let hex = bytes.get(i + 1..i + 3);
                match hex.and_then(|h| u8::from_str_radix(std::str::from_utf8(h).ok()?, 16).ok()) {
                    Some(b) => {
                        out.push(b);
                        i += 3;
                    }
                    None => {
                        out.push(b'%');
                        i += 1;
                    }
                }
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Splits a query string into decoded `key=value` pairs. Pairs without
/// `=` get an empty value; empty chunks are skipped.
pub fn parse_query(s: &str) -> Vec<(String, String)> {
    s.split('&')
        .filter(|chunk| !chunk.is_empty())
        .map(|chunk| match chunk.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(chunk), String::new()),
        })
        .collect()
}

/// Reads one `\n`-terminated line. `at_request_boundary` marks the
/// request line: EOF before its first byte is [`HttpError::Closed`]
/// (a keep-alive client hanging up), EOF anywhere else is malformed.
fn read_line(reader: &mut impl BufRead, at_request_boundary: bool) -> Result<String, HttpError> {
    let mut line = Vec::new();
    loop {
        let mut byte = [0u8; 1];
        let n = reader.read(&mut byte)?;
        if n == 0 {
            if at_request_boundary && line.is_empty() {
                return Err(HttpError::Closed);
            }
            return Err(HttpError::BadRequest("connection closed mid-line".to_string()));
        }
        if byte[0] == b'\n' {
            break;
        }
        line.push(byte[0]);
        if line.len() > MAX_LINE_BYTES {
            return Err(HttpError::BadRequest("header line too long".to_string()));
        }
    }
    if line.last() == Some(&b'\r') {
        line.pop();
    }
    String::from_utf8(line)
        .map_err(|_| HttpError::BadRequest("header line is not UTF-8".to_string()))
}

/// Reads one request from `reader`.
///
/// # Errors
///
/// Returns [`HttpError::BadRequest`] for malformed request lines,
/// headers, or bodies; [`HttpError::PayloadTooLarge`] for oversized
/// bodies; [`HttpError::Closed`] on clean EOF before the first byte;
/// [`HttpError::Io`] when the socket fails.
pub fn read_request(reader: &mut impl BufRead) -> Result<Request, HttpError> {
    let request_line = read_line(reader, true)?;
    let mut parts = request_line.split_whitespace();
    let method = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("empty request line".to_string()))?
        .to_ascii_uppercase();
    let target = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing request target".to_string()))?;
    let version = parts
        .next()
        .ok_or_else(|| HttpError::BadRequest("missing HTTP version".to_string()))?;
    if parts.next().is_some() || !version.starts_with("HTTP/1.") {
        return Err(HttpError::BadRequest(format!("malformed request line {request_line:?}")));
    }
    if !target.starts_with('/') {
        return Err(HttpError::BadRequest(format!("request target {target:?} is not a path")));
    }

    let (raw_path, raw_query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let path = percent_decode(raw_path);
    let query = parse_query(raw_query);

    let mut content_length = 0usize;
    let mut keep_alive = false;
    for i in 0.. {
        if i >= MAX_HEADERS {
            return Err(HttpError::BadRequest("too many headers".to_string()));
        }
        let line = read_line(reader, false)?;
        if line.is_empty() {
            break;
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| HttpError::BadRequest(format!("malformed header {line:?}")))?;
        let name = name.trim();
        if name.eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse::<usize>()
                .map_err(|_| HttpError::BadRequest(format!("bad content-length {value:?}")))?;
        } else if name.eq_ignore_ascii_case("connection") {
            keep_alive = value.trim().eq_ignore_ascii_case("keep-alive");
        }
    }
    if content_length > MAX_BODY_BYTES {
        return Err(HttpError::PayloadTooLarge);
    }
    let mut body = vec![0u8; content_length];
    if content_length > 0 {
        reader.read_exact(&mut body)?;
    }
    Ok(Request { method, path, query, body, keep_alive })
}

/// One response under construction.
#[derive(Debug, Clone)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers (name, value) — e.g. `X-Cache`.
    pub headers: Vec<(String, String)>,
    /// The response body.
    pub body: String,
}

impl Response {
    /// A JSON response.
    pub fn json(status: u16, body: String) -> Self {
        Response { status, content_type: "application/json", headers: Vec::new(), body }
    }

    /// A plain-text response.
    pub fn text(status: u16, body: String) -> Self {
        Response { status, content_type: "text/plain; charset=utf-8", headers: Vec::new(), body }
    }

    /// Adds one extra header.
    pub fn with_header(mut self, name: &str, value: &str) -> Self {
        self.headers.push((name.to_string(), value.to_string()));
        self
    }

    /// Serializes the response (status line, headers, body) to `w`.
    /// `keep_alive` selects the `Connection` header: the server passes
    /// `true` only when it will actually read another request from this
    /// socket, so the advertised header always matches the behaviour.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the socket.
    pub fn write_to(&self, w: &mut impl Write, keep_alive: bool) -> io::Result<()> {
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let mut head = format!(
            "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
            self.status,
            status_reason(self.status),
            self.content_type,
            self.body.len()
        );
        for (name, value) in &self.headers {
            head.push_str(name);
            head.push_str(": ");
            head.push_str(value);
            head.push_str("\r\n");
        }
        head.push_str("\r\n");
        w.write_all(head.as_bytes())?;
        w.write_all(self.body.as_bytes())?;
        w.flush()
    }
}

/// The reason phrase for the status codes the server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        413 => "Payload Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        _ => "Unknown",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, HttpError> {
        read_request(&mut BufReader::new(raw.as_bytes()))
    }

    #[test]
    fn parses_a_plain_get() {
        let req = parse("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n").expect("parses");
        assert_eq!(req.method, "GET");
        assert_eq!(req.path, "/healthz");
        assert!(req.query.is_empty());
        assert!(req.body.is_empty());
        assert_eq!(req.segments(), vec!["healthz"]);
        assert!(!req.keep_alive, "reuse is opt-in, not default");
    }

    #[test]
    fn connection_header_controls_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: keep-alive\r\n\r\n").expect("parses");
        assert!(req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nCONNECTION:   Keep-Alive  \r\n\r\n").expect("parses");
        assert!(req.keep_alive, "header name and value are case-insensitive");
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").expect("parses");
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.1\r\nConnection: upgrade\r\n\r\n").expect("parses");
        assert!(!req.keep_alive, "unknown tokens mean close");
    }

    #[test]
    fn clean_eof_between_requests_is_closed_not_bad_request() {
        assert!(matches!(parse(""), Err(HttpError::Closed)));
        // EOF *inside* a request line stays a bad request.
        assert!(matches!(parse("GET /x HT"), Err(HttpError::BadRequest(_))));
        // Two pipelined requests then EOF: second parse sees Closed.
        let wire = "GET /a HTTP/1.1\r\nConnection: keep-alive\r\n\r\n";
        let mut reader = BufReader::new(wire.as_bytes());
        assert!(read_request(&mut reader).is_ok());
        assert!(matches!(read_request(&mut reader), Err(HttpError::Closed)));
    }

    #[test]
    fn parses_query_and_percent_escapes() {
        let req = parse("GET /graphs/Wiki%2Dvote/mixing?eps=0.125&x=a+b HTTP/1.1\r\n\r\n")
            .expect("parses");
        assert_eq!(req.path, "/graphs/Wiki-vote/mixing");
        assert_eq!(req.param("eps"), Some("0.125"));
        assert_eq!(req.param("x"), Some("a b"));
        assert_eq!(req.param("missing"), None);
    }

    #[test]
    fn parses_post_body_by_content_length() {
        let req = parse("POST /graphs/DBLP/gatekeeper/admit HTTP/1.1\r\nContent-Length: 9\r\n\r\nsybils=50")
            .expect("parses");
        assert_eq!(req.body, b"sybils=50");
        let params = req.params_with_body();
        assert!(params.iter().any(|(k, v)| k == "sybils" && v == "50"));
    }

    #[test]
    fn bare_lf_lines_parse_like_crlf() {
        let req = parse("GET /datasets HTTP/1.1\nHost: x\n\n").expect("parses");
        assert_eq!(req.path, "/datasets");
    }

    #[test]
    fn malformed_inputs_are_errors_not_panics() {
        for bad in [
            "",
            "\r\n",
            "GET\r\n\r\n",
            "GET /x\r\n\r\n",
            "GET /x SPDY/3\r\n\r\n",
            "GET /a /b HTTP/1.1\r\n\r\n",
            "GET x HTTP/1.1\r\n\r\n",
            "GET /x HTTP/1.1\r\nno-colon-header\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            "POST /x HTTP/1.1\r\nContent-Length: 10\r\n\r\nshort",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn oversized_bodies_are_rejected() {
        let raw = format!("POST /x HTTP/1.1\r\nContent-Length: {}\r\n\r\n", MAX_BODY_BYTES + 1);
        assert!(matches!(parse(&raw), Err(HttpError::PayloadTooLarge)));
    }

    #[test]
    fn percent_decode_passes_junk_through() {
        assert_eq!(percent_decode("a%2Fb"), "a/b");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("bad%zzesc"), "bad%zzesc");
        assert_eq!(percent_decode("plus+plus"), "plus plus");
    }

    #[test]
    fn response_bytes_are_well_formed() {
        let mut out = Vec::new();
        Response::json(200, "{\"ok\":true}".to_string())
            .with_header("X-Cache", "hit")
            .write_to(&mut out, false)
            .expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 11\r\n"));
        assert!(text.contains("Connection: close\r\n"));
        assert!(text.contains("X-Cache: hit\r\n"));
        assert!(text.ends_with("\r\n\r\n{\"ok\":true}"));
    }

    #[test]
    fn keep_alive_responses_advertise_reuse() {
        let mut out = Vec::new();
        Response::text(200, "ok".to_string()).write_to(&mut out, true).expect("write");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(!text.contains("Connection: close\r\n"));
    }

    #[test]
    fn reason_phrases_cover_the_emitted_codes() {
        for code in [200, 400, 404, 405, 413, 500, 503, 504] {
            assert_ne!(status_reason(code), "Unknown");
        }
        assert_eq!(status_reason(418), "Unknown");
    }
}
