//! Live graphs behind the serve stack: WAL-acked delta ingestion,
//! versioned overlays, and threshold-driven CSR swaps.
//!
//! `socnet-live` supplies the graph math (overlay, incremental
//! coreness); this module supplies everything a *server* needs on top:
//!
//! - **Durability.** Every `POST /datasets/<k>/delta` batch is framed
//!   into the `socnet-wal-v1` log at `<store>/live.wal` and fsynced
//!   *before* the in-memory graph mutates — the append returning is the
//!   ack point, so an acked batch survives `kill -9`. At drain,
//!   [`LiveManager::compact`] folds every label's net overlay into the
//!   `live.snap` snapshot and resets the WAL; at boot the snapshot is
//!   restored (net ops replayed onto the regenerated base) and any WAL
//!   frames newer than it are replayed on top.
//! - **Versioning.** Each label carries a monotone `version` (+1 per
//!   acked batch) and a `csr_version` (the version its resident CSR was
//!   last rebuilt at). `version - csr_version` is the *staleness* that
//!   `?max_stale=` queries bargain against.
//! - **Rebuild threshold.** Deltas absorb into the overlay in
//!   `O(batch)`; once `ops_since_swap` passes the configured threshold,
//!   the overlay is folded into a fresh CSR and swapped into the
//!   [`GraphRegistry`] under the shard lock, so readers flip atomically
//!   from the old slabs to the new.
//!
//! Paranoia mirrors [`crate::persist`]: a snapshot whose dataset
//! registry fingerprint differs is quarantined (the git revision is
//! *not* checked — net ops replay onto a regenerated base, which only
//! the dataset registry defines); a WAL with a torn tail keeps its
//! acked prefix and quarantines the damage; a WAL that fails deeper
//! validation (bad magic, alien first frame, undecodable ops) is
//! quarantined whole. Boot never panics and never fails on damaged
//! state.

use std::collections::HashMap;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use socnet_core::{Csr, Graph};
use socnet_live::{encode_ops, parse_ops, DeltaOp, MaintainReport, MaintainedGraph};
use socnet_runner::{git_rev, obs, Metrics};
use socnet_store::{
    quarantine, quarantine_tail, read_snapshot, read_wal, write_snapshot, LoadError, Record,
    Snapshot, SnapshotMeta, StoreDir, WalWriter, WAL_MAGIC,
};

use crate::persist::registry_hash;
use crate::registry::{GraphKey, GraphRegistry, LoadedGraph};

/// Name of the live-delta snapshot inside a store dir (`live.snap`).
pub const LIVE_SNAPSHOT_NAME: &str = "live";

/// File stem of the delta WAL inside a store dir (`live.wal`).
pub const LIVE_WAL_NAME: &str = "live";

/// One label's mutable graph: the overlay with maintained coreness,
/// plus the version stamps the staleness contract is built on.
#[derive(Debug)]
pub struct LiveState {
    /// Overlay over the generated base + incrementally exact coreness.
    /// The base CSR stays the *generated* one for the process lifetime
    /// — persisted net ops must replay onto a regenerable base — so
    /// rebuilds fold a fresh CSR for the registry without rebasing.
    pub maintained: MaintainedGraph,
    /// Monotone per-label version: +1 per acked delta batch.
    pub version: u64,
    /// The version the registry's resident CSR was rebuilt at; `0`
    /// means the resident CSR is still the generated base.
    pub csr_version: u64,
    /// Ops applied since the last CSR swap — the rebuild trigger.
    pub ops_since_swap: usize,
    /// Set (under this state's lock) when the governor demotes the
    /// state back to the pending table — reclaim rung 2. A retired
    /// state is no longer in the tables map: a writer that raced the
    /// demotion must drop its guard and re-resolve (the ops live on in
    /// the pending row); read-only holders may finish on it.
    pub retired: bool,
}

/// Deltas restored from disk for a label nobody has touched yet this
/// process: kept in persisted form (net ops + raw WAL batches) and
/// materialized into a [`LiveState`] on first touch, when the caller
/// has the regenerated base in hand.
struct PendingLive {
    /// Net ops from the compacted snapshot (replay onto the base).
    snap_ops: Vec<DeltaOp>,
    /// Node count at snapshot time (delta-grown isolated nodes).
    node_count: usize,
    /// The version the snapshot row was taken at.
    snap_version: u64,
    /// WAL batches newer than the snapshot, in append (version) order.
    batches: Vec<(u64, Vec<DeltaOp>)>,
}

impl PendingLive {
    /// The effective version once everything pending is applied.
    fn version(&self) -> u64 {
        self.batches.last().map_or(self.snap_version, |(v, _)| *v)
    }
}

#[derive(Default)]
struct Tables {
    states: HashMap<String, Arc<Mutex<LiveState>>>,
    pending: HashMap<String, PendingLive>,
}

/// What one acked ingest did.
#[derive(Debug, Clone, Copy)]
pub struct IngestOutcome {
    /// The label's version after this batch.
    pub version: u64,
    /// The CSR version at ack time (before any rebuild this batch may
    /// go on to trigger).
    pub csr_version: u64,
    /// Overlay/coreness effect of the batch.
    pub report: MaintainReport,
    /// WAL length after the fsynced append (0 without a store dir).
    pub wal_bytes: u64,
    /// Whether `ops_since_swap` crossed the rebuild threshold — the
    /// caller should follow with [`LiveManager::rebuild_and_swap`].
    pub needs_rebuild: bool,
}

/// Why [`LiveManager::ingest`] refused a batch (nothing was applied,
/// nothing was logged).
#[derive(Debug)]
pub enum IngestError {
    /// An op names a node id past the growth cap (current node count
    /// plus the configured headroom). Caller error — answer 4xx: a
    /// 16-byte op naming id `u32::MAX` must not be able to commit the
    /// server to ~4G-node allocations.
    NodeCap {
        /// The offending node id.
        id: u32,
        /// The largest id this batch may name.
        max_id: u64,
    },
    /// The WAL append failed — server error, answer 5xx.
    Io(io::Error),
}

impl fmt::Display for IngestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IngestError::NodeCap { id, max_id } => {
                write!(f, "node id {id} exceeds the growth cap (max id {max_id})")
            }
            IngestError::Io(e) => write!(f, "wal append failed: {e}"),
        }
    }
}

impl From<io::Error> for IngestError {
    fn from(e: io::Error) -> IngestError {
        IngestError::Io(e)
    }
}

/// Per-label version row for `/datasets`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LiveInfo {
    /// The graph label (`Name@scale#seed`).
    pub label: String,
    /// Current version.
    pub version: u64,
    /// Version of the resident CSR (0 = generated base).
    pub csr_version: u64,
}

impl LiveInfo {
    /// How many acked batches the resident CSR is behind.
    pub fn staleness(&self) -> u64 {
        self.version.saturating_sub(self.csr_version)
    }
}

/// What [`LiveManager::compact`] wrote.
#[derive(Debug)]
pub struct CompactReport {
    /// The `live.snap` path.
    pub path: PathBuf,
    /// Snapshot size in bytes.
    pub bytes: u64,
    /// Labels persisted (materialized + still-pending).
    pub labels: usize,
    /// Unmaterialized WAL batches re-appended after the reset.
    pub wal_frames_kept: usize,
}

fn plock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|p| p.into_inner())
}

/// Approximate resident bytes of one materialized state: the base CSR
/// clone, the overlay's edge set, and the per-node coreness/degree
/// arrays. All O(1) reads — this runs on every governed request.
fn state_bytes(st: &LiveState) -> usize {
    let g = st.maintained.graph();
    g.base().byte_size() + g.overlay_len() * 32 + g.node_count() * 16
}

/// Approximate resident bytes of one pending (unmaterialized) row:
/// its ops in persisted form.
fn pending_bytes(p: &PendingLive) -> usize {
    let ops = p.snap_ops.len() + p.batches.iter().map(|(_, b)| b.len()).sum::<usize>();
    std::mem::size_of::<PendingLive>() + ops * std::mem::size_of::<DeltaOp>()
}

/// The first frame of every WAL: fingerprints the dataset registry the
/// logged labels refer to, so a log written against different dataset
/// definitions is rejected whole instead of replayed onto wrong bases.
fn meta_frame() -> Record {
    Record::new("wal-meta", &[&registry_hash()], b"")
}

fn set_aside(path: &Path, what: &'static str, reason: &str) {
    Metrics::global().incr("store.quarantined", 1);
    let moved = quarantine(path).ok();
    obs::warn(
        what,
        &[
            ("path", path.display().to_string().into()),
            ("reason", reason.to_string().into()),
            (
                "moved_to",
                moved
                    .as_deref()
                    .map(|p| p.display().to_string())
                    .unwrap_or_else(|| "unmoved".to_string())
                    .into(),
            ),
        ],
    );
}

/// Owns every live graph the server mutates: the label → state map,
/// the shared WAL writer, and the boot/compact lifecycle.
///
/// Lock order (never reversed): `tables` → `LiveState`s (ingest takes
/// one; compact takes all, in label order) → `wal`; the registry shard
/// lock is only taken from under a state lock (rebuild swap) and never
/// takes any of ours.
pub struct LiveManager {
    rebuild_threshold: usize,
    node_headroom: u64,
    store_dir: Option<PathBuf>,
    wal: Mutex<Option<WalWriter>>,
    tables: Mutex<Tables>,
}

impl LiveManager {
    /// Boots the live subsystem: restores `live.snap` (if present and
    /// keyed to this dataset registry), replays `live.wal` on top
    /// (trimming a torn tail, quarantining deeper damage), and opens
    /// the WAL for appending. Never fails — a damaged store degrades
    /// to a cold start with the damage set aside, and `None` disables
    /// durability (deltas are volatile, everything else works).
    ///
    /// `node_headroom` bounds per-batch node growth: a batch may name
    /// ids up to the label's current node count plus this headroom, and
    /// anything past that is rejected before the ack (see
    /// [`IngestError::NodeCap`]).
    pub fn boot(
        store_dir: Option<&Path>,
        rebuild_threshold: usize,
        node_headroom: usize,
    ) -> LiveManager {
        let mut tables = Tables::default();
        let mut writer = None;
        if let Some(dir) = store_dir {
            let store = StoreDir::new(dir);
            restore_snapshot(&store.snapshot_path(LIVE_SNAPSHOT_NAME), &mut tables.pending);
            let wal_path = store.wal_path(LIVE_WAL_NAME);
            replay_wal_into(&wal_path, &mut tables.pending);
            match WalWriter::open(&wal_path) {
                Ok(mut w) => {
                    // A fresh (or fully reset/quarantined) log needs its
                    // registry-fingerprint frame before any delta frame.
                    let bare = w.len_bytes() == (WAL_MAGIC.len() + 1) as u64;
                    if bare {
                        match w.append(&meta_frame()) {
                            Ok(_) => writer = Some(w),
                            // Durability is off from here: make that
                            // loudly observable instead of silently
                            // serving volatile deltas.
                            Err(e) => {
                                Metrics::global().incr("live.wal_disabled", 1);
                                obs::warn(
                                    "live.wal_meta_append_failed",
                                    &[
                                        ("path", wal_path.display().to_string().into()),
                                        ("error", e.to_string().into()),
                                    ],
                                );
                            }
                        }
                    } else {
                        writer = Some(w);
                    }
                }
                Err(e) => obs::warn(
                    "live.wal_open_failed",
                    &[
                        ("path", wal_path.display().to_string().into()),
                        ("error", e.to_string().into()),
                    ],
                ),
            }
        }
        LiveManager {
            rebuild_threshold: rebuild_threshold.max(1),
            node_headroom: node_headroom as u64,
            store_dir: store_dir.map(Path::to_path_buf),
            wal: Mutex::new(writer),
            tables: Mutex::new(tables),
        }
    }

    /// Whether a WAL is open — acked deltas are crash-durable.
    pub fn durable(&self) -> bool {
        plock(&self.wal).is_some()
    }

    /// The configured rebuild threshold.
    pub fn rebuild_threshold(&self) -> usize {
        self.rebuild_threshold
    }

    /// `(version, csr_version)` for `label`, without materializing
    /// anything: a pending (restored but untouched) label reports its
    /// effective version with `csr_version` 0. `None` means the label
    /// has never taken a delta — routes treat it as a frozen graph.
    pub fn version_info(&self, label: &str) -> Option<(u64, u64)> {
        let tables = plock(&self.tables);
        if let Some(arc) = tables.states.get(label) {
            let st = plock(arc);
            return Some((st.version, st.csr_version));
        }
        tables.pending.get(label).map(|p| (p.version(), 0))
    }

    /// The state for `label`, materializing restored deltas on first
    /// touch. `base` must be the *generated* CSR for the label — which
    /// it always is: pending state only exists before any swap, and
    /// swaps only happen through an already-materialized state.
    pub fn resolve(&self, label: &str, base: &Csr) -> Arc<Mutex<LiveState>> {
        let mut tables = plock(&self.tables);
        if let Some(arc) = tables.states.get(label) {
            return Arc::clone(arc);
        }
        let state = match tables.pending.remove(label) {
            Some(p) => {
                let n = p.node_count.max(base.node_count());
                let mut maintained = MaintainedGraph::from_parts(base.clone(), &p.snap_ops, n);
                let mut version = p.snap_version;
                for (v, ops) in &p.batches {
                    maintained.apply(ops);
                    version = *v;
                }
                LiveState { maintained, version, csr_version: 0, ops_since_swap: 0, retired: false }
            }
            None => LiveState {
                maintained: MaintainedGraph::new(base.clone()),
                version: 0,
                csr_version: 0,
                ops_since_swap: 0,
                retired: false,
            },
        };
        let arc = Arc::new(Mutex::new(state));
        tables.states.insert(label.to_string(), Arc::clone(&arc));
        arc
    }

    /// Applies one delta batch to `label`: node-id validation, then
    /// WAL-append + fsync (the ack point — an error before it mutates
    /// nothing), then the overlay + coreness update.
    ///
    /// # Errors
    ///
    /// [`IngestError::NodeCap`] when an op names a node id past the
    /// current node count plus the configured headroom (caller error,
    /// nothing logged); [`IngestError::Io`] for the WAL append's I/O
    /// error. Either way no in-memory mutation has happened.
    pub fn ingest(
        &self,
        label: &str,
        base: &Csr,
        ops: &[DeltaOp],
    ) -> Result<(Arc<Mutex<LiveState>>, IngestOutcome), IngestError> {
        let started = Instant::now();
        loop {
            let arc = self.resolve(label, base);
            let mut st = plock(&arc);
            if st.retired {
                // The governor demoted this state between our resolve
                // and the lock. Its ops live on in the pending table;
                // a fresh resolve materializes them (a freshly resolved
                // state is never retired, so this loop terminates).
                drop(st);
                continue;
            }
            // Growth cap, checked before the frame is durable: every
            // O(n) structure downstream (coreness, scratch marks, CSR
            // offsets) is sized by the max id ever acked, so an
            // unchecked id is a one-op commitment to allocate for it —
            // at apply time *and* at every replay of the WAL it landed
            // in.
            let max_id = (st.maintained.graph().node_count() as u64 + self.node_headroom)
                .min(u32::MAX as u64);
            for op in ops {
                let (u, v) = op.endpoints();
                let id = u.max(v);
                if id as u64 > max_id {
                    Metrics::global().incr("live.node_cap_rejected", 1);
                    return Err(IngestError::NodeCap { id, max_id });
                }
            }
            let version = st.version + 1;
            let mut wal_bytes = 0;
            {
                let mut wal = plock(&self.wal);
                if let Some(w) = wal.as_mut() {
                    let record =
                        Record::new("delta", &[label, &version.to_string()], &encode_ops(ops));
                    wal_bytes = w.append(&record)?;
                    Metrics::global().incr("wal.appends", 1);
                }
            }
            let report = st.maintained.apply(ops);
            st.version = version;
            st.ops_since_swap += ops.len();
            let outcome = IngestOutcome {
                version,
                csr_version: st.csr_version,
                report,
                wal_bytes,
                needs_rebuild: st.ops_since_swap >= self.rebuild_threshold,
            };
            drop(st);
            let m = Metrics::global();
            m.incr("live.deltas", 1);
            m.incr("live.ops", ops.len() as u64);
            m.observe("live.delta_ack_s", started.elapsed().as_secs_f64());
            return Ok((arc, outcome));
        }
    }

    /// Folds the overlay into a fresh CSR and swaps it into the
    /// registry under the shard lock. Returns the new resident graph
    /// (callers compute on it directly) and the rebuild wall time.
    ///
    /// If a cold load of the same key is in flight the swap is skipped
    /// — `csr_version` stays behind, so the next staleness check
    /// retries — but the freshly built graph is still returned.
    pub fn rebuild_and_swap(
        &self,
        registry: &GraphRegistry,
        key: &GraphKey,
        state: &Arc<Mutex<LiveState>>,
    ) -> (Arc<LoadedGraph>, Duration) {
        let started = Instant::now();
        let mut st = plock(state);
        let csr = st.maintained.rebuild();
        let graph = Graph::from_edges(csr.node_count(), csr.edges());
        if st.retired {
            // The governor demoted this state to pending: swapping its
            // CSR into the registry would leave a non-generated base
            // under the pending row, which must rematerialize onto the
            // *generated* CSR. Hand the caller its rebuilt graph
            // without touching the registry.
            drop(st);
            let loaded = Arc::new(LoadedGraph {
                approx_bytes: crate::registry::approx_graph_bytes(&graph, &csr),
                load_wall: started.elapsed(),
                csr,
                graph,
            });
            let wall = started.elapsed();
            let m = Metrics::global();
            m.incr("live.rebuilds", 1);
            m.observe("live.rebuild_s", wall.as_secs_f64());
            return (loaded, wall);
        }
        let (loaded, swapped) = registry.replace(key, graph, csr, started.elapsed());
        if swapped {
            st.csr_version = st.version;
            st.ops_since_swap = 0;
        }
        drop(st);
        let wall = started.elapsed();
        let m = Metrics::global();
        m.incr("live.rebuilds", 1);
        m.observe("live.rebuild_s", wall.as_secs_f64());
        (loaded, wall)
    }

    /// Ensures the resident CSR for `key` is at least as fresh as
    /// `stamp`, rebuilding + swapping when it is not. Returns the graph
    /// the caller should compute on.
    pub fn ensure_stamp(
        &self,
        registry: &GraphRegistry,
        key: &GraphKey,
        graph: Arc<LoadedGraph>,
        stamp: u64,
    ) -> Arc<LoadedGraph> {
        let label = key.label();
        let arc = self.resolve(&label, &graph.csr);
        let fresh_enough = plock(&arc).csr_version >= stamp;
        if fresh_enough {
            return graph;
        }
        let (loaded, _wall) = self.rebuild_and_swap(registry, key, &arc);
        loaded
    }

    /// The registry's resident CSR for `label` no longer matches any
    /// rebuilt version (an operator evicted it; a reload regenerates
    /// the base). Resets the stamp so staleness accounting stays
    /// truthful and the next strict query forces a rebuild.
    pub fn note_evicted(&self, label: &str) {
        let arc = plock(&self.tables).states.get(label).cloned();
        if let Some(arc) = arc {
            let mut st = plock(&arc);
            st.csr_version = 0;
            st.ops_since_swap = 0;
        }
    }

    /// Approximate resident bytes across every materialized state
    /// (base CSR clone + overlay + coreness arrays) and pending row
    /// (persisted-form ops) — the live subsystem's governor accountant
    /// line. Lock order: `tables` → each state, matching the documented
    /// discipline.
    pub fn resident_bytes(&self) -> usize {
        let tables = plock(&self.tables);
        let mut total = 0usize;
        for arc in tables.states.values() {
            total += state_bytes(&plock(arc));
        }
        for p in tables.pending.values() {
            total += pending_bytes(p);
        }
        total
    }

    /// Reclaim rung 2: demotes the fattest eligible materialized state
    /// back to a pending row (net ops only — freeing its base-CSR
    /// clone, overlay, and coreness arrays), then compacts so the
    /// flattened row is durable and the WAL resets. Only states whose
    /// resident CSR is still the generated base (`csr_version == 0`)
    /// are eligible: a pending row must rematerialize onto the
    /// generated CSR, never a swapped one. Returns the demoted label
    /// and the approximate bytes its materialized form occupied, or
    /// `None` when nothing is eligible.
    pub fn squeeze_fattest(&self) -> Option<(String, usize)> {
        let (label, bytes) = {
            let mut tables = plock(&self.tables);
            let mut best: Option<(String, usize)> = None;
            for (label, arc) in &tables.states {
                let st = plock(arc);
                if st.csr_version != 0 {
                    continue;
                }
                let bytes = state_bytes(&st);
                if best.as_ref().is_none_or(|(_, b)| bytes > *b) {
                    best = Some((label.clone(), bytes));
                }
            }
            let (label, bytes) = best?;
            let arc = tables.states.remove(&label)?;
            let mut st = plock(&arc);
            st.retired = true;
            let overlay = st.maintained.graph();
            let pending = PendingLive {
                snap_ops: overlay.net_ops(),
                node_count: overlay.node_count(),
                snap_version: st.version,
                batches: Vec::new(),
            };
            drop(st);
            tables.pending.insert(label.clone(), pending);
            (label, bytes)
        };
        // Flatten-to-snapshot + WAL reset. A failed compact is safe —
        // the old snapshot plus the still-standing WAL frames re-derive
        // exactly the version the pending row holds — so the demotion
        // stands either way.
        if let Err(e) = self.compact() {
            obs::warn(
                "live.squeeze_compact_failed",
                &[("label", label.clone().into()), ("error", e.to_string().into())],
            );
        }
        Metrics::global().incr("live.squeezes", 1);
        Some((label, bytes))
    }

    /// Every label with live history (materialized + pending), sorted
    /// by label for stable output.
    pub fn infos(&self) -> Vec<LiveInfo> {
        let tables = plock(&self.tables);
        let mut rows: Vec<LiveInfo> = tables
            .states
            .iter()
            .map(|(label, arc)| {
                let st = plock(arc);
                LiveInfo { label: label.clone(), version: st.version, csr_version: st.csr_version }
            })
            .collect();
        rows.extend(tables.pending.iter().map(|(label, p)| LiveInfo {
            label: label.clone(),
            version: p.version(),
            csr_version: 0,
        }));
        rows.sort_by(|a, b| a.label.cmp(&b.label));
        rows
    }

    /// Drain-time compaction: persists every label's net overlay (and
    /// every still-pending restored label) as `live.snap`, then resets
    /// the WAL — re-appending unmaterialized pending batches so
    /// *snapshot + WAL = full state* holds at every instant. The
    /// snapshot write is atomic and happens first: a crash between the
    /// two steps leaves WAL frames at versions the snapshot already
    /// covers, which boot-time replay skips.
    ///
    /// Every label's state lock is held from before its row is read
    /// until after the WAL reset (lock order: `tables` → states → `wal`,
    /// as documented on [`LiveManager`]). Releasing them earlier loses
    /// acked data: a straggler ingest that resolved its `Arc` before we
    /// took `tables` could ack frame `V+1` after its row was
    /// snapshotted at `V`, and the reset would erase the only durable
    /// copy of that acked batch.
    ///
    /// # Errors
    ///
    /// Any I/O error from the snapshot write or the WAL reset.
    pub fn compact(&self) -> io::Result<Option<CompactReport>> {
        let Some(dir) = &self.store_dir else { return Ok(None) };
        let tables = plock(&self.tables);
        let mut state_rows: Vec<(String, Arc<Mutex<LiveState>>)> =
            tables.states.iter().map(|(k, v)| (k.clone(), Arc::clone(v))).collect();
        state_rows.sort_by(|a, b| a.0.cmp(&b.0));
        let guards: Vec<(&String, MutexGuard<'_, LiveState>)> =
            state_rows.iter().map(|(label, arc)| (label, plock(arc))).collect();
        let mut records = Vec::new();
        for (label, st) in &guards {
            let overlay = st.maintained.graph();
            records.push(Record::new(
                "delta-base",
                &[label, &st.version.to_string(), &overlay.node_count().to_string()],
                &encode_ops(&overlay.net_ops()),
            ));
        }
        let mut pending_rows: Vec<(&String, &PendingLive)> = tables.pending.iter().collect();
        pending_rows.sort_by(|a, b| a.0.cmp(b.0));
        let mut keep = Vec::new();
        for (label, p) in &pending_rows {
            records.push(Record::new(
                "delta-base",
                &[label, &p.snap_version.to_string(), &p.node_count.to_string()],
                &encode_ops(&p.snap_ops),
            ));
            for (v, ops) in &p.batches {
                keep.push(Record::new("delta", &[label, &v.to_string()], &encode_ops(ops)));
            }
        }
        let path = StoreDir::new(dir).snapshot_path(LIVE_SNAPSHOT_NAME);
        if records.is_empty() && !path.exists() {
            return Ok(None); // the live subsystem was never used
        }
        std::fs::create_dir_all(dir)?;
        let labels = records.len();
        let snapshot =
            Snapshot { meta: SnapshotMeta::new(&git_rev(), &registry_hash()), records };
        let bytes = write_snapshot(&path, &snapshot)?;
        {
            let mut wal = plock(&self.wal);
            if let Some(w) = wal.as_mut() {
                w.reset()?;
                w.append(&meta_frame())?;
                for record in &keep {
                    w.append(record)?;
                }
            }
        }
        // Only now may ingests ack again: the snapshot + reset WAL pair
        // is consistent.
        drop(guards);
        obs::info(
            "live.compacted",
            &[
                ("path", path.display().to_string().into()),
                ("bytes", bytes.into()),
                ("labels", (labels as u64).into()),
                ("wal_frames_kept", (keep.len() as u64).into()),
            ],
        );
        Ok(Some(CompactReport { path, bytes, labels, wal_frames_kept: keep.len() }))
    }
}

/// Restores `live.snap` rows into the pending table. Gated on the
/// dataset registry fingerprint only — net ops replay onto a
/// regenerated base, which a new git revision of the same datasets
/// still produces. Any malformed record condemns the whole snapshot.
fn restore_snapshot(path: &Path, pending: &mut HashMap<String, PendingLive>) {
    let snap = match read_snapshot(path) {
        Ok(s) => s,
        Err(LoadError::Missing) => return,
        Err(e) => return set_aside(path, "live.snap_quarantined", &e.to_string()),
    };
    let want = registry_hash();
    if snap.meta.registry_hash != want {
        return set_aside(
            path,
            "live.snap_quarantined",
            &format!("registry hash {} != {want}", snap.meta.registry_hash),
        );
    }
    let mut rows = Vec::new();
    for record in &snap.records {
        let parsed = (|| -> Result<(String, PendingLive), String> {
            if record.kind != "delta-base" {
                return Err(format!("unknown record kind {:?}", record.kind));
            }
            let [label, version, node_count] = record.fields.as_slice() else {
                return Err(format!("delta-base has {} fields, want 3", record.fields.len()));
            };
            let snap_version =
                version.parse().map_err(|_| format!("bad version {version:?}"))?;
            let node_count =
                node_count.parse().map_err(|_| format!("bad node count {node_count:?}"))?;
            let snap_ops = parse_ops(&record.body)?;
            Ok((label.clone(), PendingLive { snap_ops, node_count, snap_version, batches: Vec::new() }))
        })();
        match parsed {
            Ok(row) => rows.push(row),
            Err(reason) => return set_aside(path, "live.snap_quarantined", &reason),
        }
    }
    for (label, row) in rows {
        pending.insert(label, row);
    }
}

/// Replays `live.wal` into the pending table. The torn-tail contract:
/// the valid frame prefix is truth (acked data), the damaged suffix is
/// quarantined aside and the file trimmed. Deeper damage — bad magic,
/// a first frame that is not this registry's `wal-meta`, a frame whose
/// ops do not decode — condemns the file whole (already-replayed
/// frames stay in memory and re-persist at the next compaction).
fn replay_wal_into(path: &Path, pending: &mut HashMap<String, PendingLive>) {
    let replay = match read_wal(path) {
        Ok(r) => r,
        Err(LoadError::Missing) => return,
        Err(e) => return set_aside(path, "live.wal_quarantined", &e.to_string()),
    };
    if let Some(reason) = &replay.torn {
        Metrics::global().incr("store.quarantined", 1);
        match quarantine_tail(path, &replay) {
            Ok(moved) => obs::warn(
                "live.wal_torn",
                &[
                    ("path", path.display().to_string().into()),
                    ("reason", reason.clone().into()),
                    (
                        "tail_moved_to",
                        moved
                            .as_deref()
                            .map(|p| p.display().to_string())
                            .unwrap_or_else(|| "unmoved".to_string())
                            .into(),
                    ),
                ],
            ),
            // Can't trim in place: set the whole file aside so appends
            // never land after a damaged tail. The acked prefix lives
            // on in memory and re-persists at the next compaction.
            Err(e) => set_aside(path, "live.wal_quarantined", &e.to_string()),
        }
    }
    let mut frames = replay.records.iter();
    match frames.next() {
        None => return, // freshly reset log
        Some(r)
            if r.kind == "wal-meta"
                && r.fields.first().map(String::as_str) == Some(registry_hash().as_str()) => {}
        Some(r) => {
            return set_aside(
                path,
                "live.wal_quarantined",
                &format!("first frame is {:?}, want this registry's wal-meta", r.kind),
            )
        }
    }
    // Decode every frame before merging any — a half-merged log would
    // be harder to reason about than rejecting it whole.
    let mut batches = Vec::new();
    for record in frames {
        let parsed = (|| -> Result<(String, u64, Vec<DeltaOp>), String> {
            if record.kind != "delta" {
                return Err(format!("unknown frame kind {:?}", record.kind));
            }
            let [label, version] = record.fields.as_slice() else {
                return Err(format!("delta frame has {} fields, want 2", record.fields.len()));
            };
            let version = version.parse().map_err(|_| format!("bad version {version:?}"))?;
            Ok((label.clone(), version, parse_ops(&record.body)?))
        })();
        match parsed {
            Ok(row) => batches.push(row),
            Err(reason) => return set_aside(path, "live.wal_quarantined", &reason),
        }
    }
    let mut replayed = 0u64;
    for (label, version, ops) in batches {
        let entry = pending.entry(label).or_insert_with(|| PendingLive {
            snap_ops: Vec::new(),
            node_count: 0,
            snap_version: 0,
            batches: Vec::new(),
        });
        // Frames at versions the snapshot already folded in are the
        // residue of a crash between snapshot write and WAL reset.
        if version > entry.version() {
            entry.batches.push((version, ops));
            replayed += 1;
        }
    }
    Metrics::global().incr("wal.replayed", replayed);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("socnet-serve-live-tests")
            .join(format!("{name}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).expect("mkdir");
        dir
    }

    fn base() -> Csr {
        Csr::from_edges(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
    }

    fn ops(text: &str) -> Vec<DeltaOp> {
        parse_ops(text.as_bytes()).expect("ops")
    }

    #[test]
    fn acked_deltas_survive_an_unclean_restart() {
        let dir = scratch("unclean");
        let label = "T@0.05#42";
        {
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            assert!(live.durable());
            live.ingest(label, &base(), &ops("+ 0 4\n+ 4 1\n")).expect("ack 1");
            let (_, out) = live.ingest(label, &base(), &ops("- 2 3\n")).expect("ack 2");
            assert_eq!(out.version, 2);
            assert!(!out.needs_rebuild);
            // Dropped without compact — the crash case. Only the WAL
            // holds the deltas now.
        }
        let live = LiveManager::boot(Some(&dir), 1_000, 64);
        assert_eq!(live.version_info(label), Some((2, 0)), "replayed, unmaterialized");
        let arc = live.resolve(label, &base());
        let st = plock(&arc);
        assert_eq!(st.version, 2);
        let mut truth = MaintainedGraph::new(base());
        truth.apply(&ops("+ 0 4\n+ 4 1\n- 2 3\n"));
        assert_eq!(st.maintained.rebuild(), truth.rebuild());
        assert_eq!(st.maintained.cores().coreness_slice(), truth.cores().coreness_slice());
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn node_ids_past_the_growth_cap_are_rejected_before_the_ack() {
        let dir = scratch("node-cap");
        let label = "T@0.05#42";
        {
            let live = LiveManager::boot(Some(&dir), 1_000, 8);
            // Base has 5 nodes, headroom 8: ids through 13 are fine,
            // anything bigger — u32::MAX included — must bounce whole
            // without logging or applying any op in the batch.
            let err = live
                .ingest(label, &base(), &ops(&format!("+ 0 5\n+ 0 {}\n", u32::MAX)))
                .expect_err("capped");
            assert!(matches!(err, IngestError::NodeCap { id: u32::MAX, max_id: 13 }), "{err}");
            let err = live.ingest(label, &base(), &ops("- 0 14\n")).expect_err("capped");
            assert!(matches!(err, IngestError::NodeCap { id: 14, .. }), "no-op deletes too");
            assert_eq!(live.version_info(label), Some((0, 0)), "nothing acked");
            let (_, out) = live.ingest(label, &base(), &ops("+ 0 13\n")).expect("within cap");
            assert_eq!(out.version, 1);
            // The cap tracks the grown graph: 14 nodes + 8 headroom.
            let err = live.ingest(label, &base(), &ops("+ 0 23\n")).expect_err("capped");
            assert!(matches!(err, IngestError::NodeCap { id: 23, max_id: 22 }), "{err}");
        }
        // Only the in-cap batch is in the WAL: replay reaches version 1.
        let live = LiveManager::boot(Some(&dir), 1_000, 8);
        assert_eq!(live.version_info(label), Some((1, 0)));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_never_loses_a_batch_acked_by_a_straggler_ingest() {
        let dir = scratch("compact-race");
        let label = "T@0.05#42";
        let total = 64u64;
        {
            // One writer acks batches while the main thread compacts as
            // fast as it can — the drain-vs-straggler race. Every acked
            // version must survive the restart: a compact that snapshots
            // at V and then resets the WAL after frame V+1 landed would
            // erase an acked batch.
            let live = Arc::new(LiveManager::boot(Some(&dir), 1_000_000, 64));
            let writer = {
                let live = Arc::clone(&live);
                std::thread::spawn(move || {
                    for i in 0..total {
                        let op = if i % 2 == 0 { "+ 0 4\n" } else { "- 0 4\n" };
                        live.ingest(label, &base(), &ops(op)).expect("ack");
                    }
                })
            };
            while !writer.is_finished() {
                live.compact().expect("compact");
            }
            writer.join().expect("writer");
            // No final compact: whatever the last one missed must still
            // be in the WAL.
        }
        let live = LiveManager::boot(Some(&dir), 1_000_000, 64);
        assert_eq!(live.version_info(label), Some((total, 0)), "an acked batch was lost");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn compact_folds_the_wal_and_keeps_pending_labels() {
        let dir = scratch("compact");
        let label = "T@0.05#42";
        {
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            live.ingest(label, &base(), &ops("+ 0 3\n")).expect("ack");
            let report = live.compact().expect("compact").expect("wrote");
            assert_eq!(report.labels, 1);
            assert_eq!(report.wal_frames_kept, 0);
        }
        let wal_len = std::fs::metadata(StoreDir::new(&dir).wal_path(LIVE_WAL_NAME))
            .expect("wal")
            .len();
        {
            // Restart, never touch the label, compact again: the
            // pending row must round-trip undiminished.
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            assert_eq!(live.version_info(label), Some((1, 0)));
            let report = live.compact().expect("compact").expect("wrote");
            assert_eq!((report.labels, report.wal_frames_kept), (1, 0));
        }
        let live = LiveManager::boot(Some(&dir), 1_000, 64);
        let arc = live.resolve(label, &base());
        let st = plock(&arc);
        assert_eq!(st.version, 1);
        assert!(st.maintained.graph().has_edge(0, 3));
        // Compaction reset the log to magic + meta frame only.
        assert_eq!(
            std::fs::metadata(StoreDir::new(&dir).wal_path(LIVE_WAL_NAME)).expect("wal").len(),
            wal_len
        );
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn unmaterialized_wal_batches_survive_a_compaction() {
        let dir = scratch("pending-wal");
        let label = "T@0.05#42";
        {
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            live.ingest(label, &base(), &ops("+ 0 3\n")).expect("ack");
            live.ingest(label, &base(), &ops("+ 1 4\n")).expect("ack");
            // No compact: both batches are WAL-only.
        }
        {
            // Restart; the label stays pending; compact must persist
            // the snapshot row *and* re-append the raw batches.
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            let report = live.compact().expect("compact").expect("wrote");
            assert_eq!((report.labels, report.wal_frames_kept), (1, 2));
        }
        let live = LiveManager::boot(Some(&dir), 1_000, 64);
        assert_eq!(live.version_info(label), Some((2, 0)));
        let arc = live.resolve(label, &base());
        let st = plock(&arc);
        assert!(st.maintained.graph().has_edge(0, 3) && st.maintained.graph().has_edge(1, 4));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn torn_wal_tail_keeps_the_acked_prefix_and_never_panics() {
        let dir = scratch("torn");
        let label = "T@0.05#42";
        {
            let live = LiveManager::boot(Some(&dir), 1_000, 64);
            live.ingest(label, &base(), &ops("+ 0 4\n")).expect("ack");
        }
        let wal_path = StoreDir::new(&dir).wal_path(LIVE_WAL_NAME);
        // A crash mid-append: garbage after the last acked frame.
        use std::io::Write;
        let mut f = std::fs::OpenOptions::new().append(true).open(&wal_path).expect("open");
        f.write_all(b"F deadbeef 999\nhalf a fra").expect("tear");
        drop(f);
        let live = LiveManager::boot(Some(&dir), 1_000, 64);
        assert_eq!(live.version_info(label), Some((1, 0)), "acked prefix survives");
        assert!(
            wal_path.with_file_name("live.wal.quarantined").is_file(),
            "torn tail set aside for forensics"
        );
        // The trimmed log accepts appends again.
        live.ingest(label, &base(), &ops("+ 1 3\n")).expect("ack after trim");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn alien_wal_and_mismatched_snapshot_are_quarantined_whole() {
        let dir = scratch("alien");
        let store = StoreDir::new(&dir);
        std::fs::write(store.wal_path(LIVE_WAL_NAME), b"not a wal at all\n").expect("write");
        let snapshot = Snapshot {
            meta: SnapshotMeta::new(&git_rev(), "00000000"),
            records: vec![Record::new("delta-base", &["X@1#1", "3", "5"], b"+ 0 1\n")],
        };
        write_snapshot(&store.snapshot_path(LIVE_SNAPSHOT_NAME), &snapshot).expect("snap");
        let live = LiveManager::boot(Some(&dir), 1_000, 64);
        assert_eq!(live.version_info("X@1#1"), None, "mismatched snapshot must not restore");
        assert!(!store.snapshot_path(LIVE_SNAPSHOT_NAME).exists(), "snapshot set aside");
        // The alien log was replaced by a fresh, appendable one.
        assert!(live.durable());
        live.ingest("X@1#1", &base(), &ops("+ 0 1\n")).expect("fresh wal accepts appends");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn without_a_store_dir_deltas_are_volatile_but_functional() {
        let live = LiveManager::boot(None, 2, 64);
        assert!(!live.durable());
        let (_, out) = live.ingest("V@1#1", &base(), &ops("+ 0 4\n+ 1 4\n")).expect("ingest");
        assert_eq!(out.wal_bytes, 0);
        assert!(out.needs_rebuild, "2 ops >= threshold 2");
        assert!(live.compact().expect("noop").is_none());
    }
}
