//! Route dispatch: URL → registry → property cache → kernel → JSON.
//!
//! Every property route follows one shape: resolve the dataset (404 if
//! unknown), validate parameters (400 on anything malformed), check the
//! disk-hydrated bodies (a warm hit answers *before* any graph is
//! loaded — that is the whole point of warm start), then load the graph
//! through the registry (coalesced, shared) and answer from the
//! property cache — computing on the shared pool only on a miss. The
//! response body is rendered *from the cached value alone*, never from
//! per-request state, so identical queries produce byte-identical
//! bodies no matter how requests interleave; successful bodies are also
//! recorded under a canonical `body|label|route|params` key so the
//! drain-time snapshot can persist them. The `X-Cache` header says how
//! the lookup went: `hit`, `miss`, `poisoned`, or `warm-disk` (served
//! byte-exact from the previous process's snapshot).

use std::sync::Arc;

use socnet_core::NodeId;
use socnet_expansion::EnvelopeExpansion;
use socnet_gen::Dataset;
use socnet_kcore::CoreDecomposition;
use socnet_mixing::{
    try_sinclair_bounds, try_slem_csr, MixingConfig, MixingMeasurement, SpectralConfig, Spectrum,
};
use socnet_live::parse_ops;
use socnet_runner::{json, CancelToken, Metrics, ParConfig};
use socnet_sybil::{AttackedGraph, GateKeeper, GateKeeperConfig, SybilAttack, SybilTopology};

use crate::cache::{CacheError, CacheValue, Lookup};
use crate::http::{Request, Response};
use crate::live::LiveInfo;
use crate::registry::{GraphKey, LoadedGraph, RegistryError};
use crate::server::AppState;
use crate::trace::{self, StageGuard};

/// Hard caps that keep a single query from occupying the box.
const MAX_SCALE: f64 = 4.0;
const MAX_SOURCES: usize = 64;
const MAX_WALK: usize = 2_000;
const MAX_SYBILS: usize = 10_000;
const MAX_ATTACK_EDGES: usize = 100_000;
const MAX_DISTRIBUTORS: usize = 1_000;

/// The memoized admission verdict for one GateKeeper parameterisation.
pub struct AdmitVerdict {
    /// Honest nodes in the evaluated graph.
    pub honest_total: usize,
    /// Honest nodes admitted by the controller.
    pub honest_admitted: usize,
    /// Sybil identities mounted.
    pub sybil_total: usize,
    /// Sybil identities admitted (the attack's yield).
    pub sybil_admitted: usize,
    /// The reach-count threshold that was applied.
    pub threshold: u32,
    /// Distributors sampled.
    pub distributors: usize,
    /// The controller node.
    pub controller: usize,
}

/// Dispatches one request. Returns the route class (for per-class
/// accounting) alongside the response.
pub fn handle(state: &Arc<AppState>, req: &Request, cancel: &CancelToken) -> (&'static str, Response) {
    let (class, response) = dispatch(state, req, cancel);
    // Post-dispatch budget check: the handler may have inserted cache
    // entries or grown a live overlay *after* its graph-load enforce
    // ran, so this is the accounting site that sees the final bytes.
    // One branch when ungoverned; a synchronous reclaim round when the
    // request pushed the process over.
    if state.govern.enabled() {
        state.govern.enforce(&state.accountants());
    }
    (class, response)
}

fn dispatch(state: &Arc<AppState>, req: &Request, cancel: &CancelToken) -> (&'static str, Response) {
    let segments = req.segments();
    let owned: Vec<String> = segments.iter().map(|s| s.to_string()).collect();
    let parts: Vec<&str> = owned.iter().map(String::as_str).collect();
    match parts.as_slice() {
        ["healthz"] => ("healthz", expect_method("GET", req).unwrap_or_else(|| healthz(state))),
        ["datasets"] => ("datasets", expect_method("GET", req).unwrap_or_else(|| datasets(state))),
        ["datasets", name, "delta"] => (
            "delta",
            expect_method("POST", req).unwrap_or_else(|| delta(state, req, name, cancel)),
        ),
        ["metrics"] => {
            ("metrics", expect_method("GET", req).unwrap_or_else(|| metrics(state, req)))
        }
        ["debug", "trace", id] => {
            ("debug", expect_method("GET", req).unwrap_or_else(|| debug_trace(state, id)))
        }
        ["debug", "slow"] => {
            ("debug", expect_method("GET", req).unwrap_or_else(|| debug_slow(state, req)))
        }
        ["graphs", name, "load"] => (
            "load",
            expect_method("POST", req).unwrap_or_else(|| load(state, req, name, cancel)),
        ),
        ["graphs", name, "evict"] => (
            "evict",
            expect_method("POST", req).unwrap_or_else(|| evict(state, req, name)),
        ),
        ["graphs", name, "mixing"] => (
            "mixing",
            expect_method("GET", req).unwrap_or_else(|| mixing(state, req, name, cancel)),
        ),
        ["graphs", name, "coreness", node] => (
            "coreness",
            expect_method("GET", req).unwrap_or_else(|| coreness(state, req, name, node, cancel)),
        ),
        ["graphs", name, "expansion"] => (
            "expansion",
            expect_method("GET", req).unwrap_or_else(|| expansion(state, req, name, cancel)),
        ),
        ["graphs", name, "gatekeeper", "admit"] => (
            "admit",
            expect_method("POST", req).unwrap_or_else(|| admit(state, req, name, cancel)),
        ),
        _ => ("unknown", error_response(404, &format!("no route for {}", req.path))),
    }
}

fn expect_method(method: &str, req: &Request) -> Option<Response> {
    if req.method == method {
        None
    } else {
        Some(error_response(405, &format!("{} requires {method}", req.path)))
    }
}

/// Renders the uniform error body.
pub fn error_response(status: u16, message: &str) -> Response {
    let mut obj = json::Obj::new();
    obj.str("error", message).int("status", u64::from(status));
    Response::json(status, obj.finish())
}

/// The admission-control rejection: a shed request answers `503` with
/// `Retry-After` so a well-behaved client backs off instead of
/// hammering an overloaded box.
pub fn shed_response(message: &str) -> Response {
    error_response(503, message).with_header("Retry-After", "1")
}

fn cache_error_response(err: &CacheError) -> Response {
    match err {
        CacheError::Poisoned(message) => {
            let mut obj = json::Obj::new();
            obj.str("error", message).int("status", 500).bool("poisoned", true);
            Response::json(500, obj.finish()).with_header("X-Cache", "poisoned")
        }
        CacheError::Failed(message) => error_response(500, message),
        CacheError::DeadlineExceeded => error_response(504, "request deadline exceeded"),
        CacheError::Draining => shed_response("server is draining"),
    }
}

fn registry_error_response(err: &RegistryError) -> Response {
    match err {
        RegistryError::Build(message) => error_response(500, message),
        RegistryError::DeadlineExceeded => error_response(504, "request deadline exceeded"),
    }
}

fn dataset_by_name(name: &str) -> Option<Dataset> {
    Dataset::ALL.iter().copied().find(|d| d.name().eq_ignore_ascii_case(name))
}

fn param_f64(params: &[(String, String)], key: &str, default: f64) -> Result<f64, Response> {
    match params.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, raw)) => raw
            .parse::<f64>()
            .map_err(|_| error_response(400, &format!("parameter {key}={raw:?} is not a number"))),
    }
}

fn param_usize(params: &[(String, String)], key: &str, default: usize) -> Result<usize, Response> {
    match params.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, raw)) => raw.parse::<usize>().map_err(|_| {
            error_response(400, &format!("parameter {key}={raw:?} is not a non-negative integer"))
        }),
    }
}

fn param_u32(params: &[(String, String)], key: &str, default: u32) -> Result<u32, Response> {
    match params.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, raw)) => raw.parse::<u32>().map_err(|_| {
            error_response(400, &format!("parameter {key}={raw:?} is not a valid node id"))
        }),
    }
}

fn param_u64(params: &[(String, String)], key: &str, default: u64) -> Result<u64, Response> {
    match params.iter().find(|(k, _)| k == key) {
        None => Ok(default),
        Some((_, raw)) => raw.parse::<u64>().map_err(|_| {
            error_response(400, &format!("parameter {key}={raw:?} is not a non-negative integer"))
        }),
    }
}

/// Validates dataset + scale + seed into a [`GraphKey`] *without*
/// loading anything — the graph-free half of graph resolution, which is
/// all the warm-body check needs.
fn graph_key_from(
    state: &AppState,
    params: &[(String, String)],
    name: &str,
) -> Result<GraphKey, Response> {
    let Some(dataset) = dataset_by_name(name) else {
        return Err(error_response(404, &format!("unknown dataset {name:?}")));
    };
    let scale = param_f64(params, "scale", state.config.default_scale)?;
    if !(scale.is_finite() && scale > 0.0 && scale <= MAX_SCALE) {
        return Err(error_response(400, &format!("scale must be in (0, {MAX_SCALE}], got {scale}")));
    }
    let seed = param_u64(params, "seed", state.config.default_seed)?;
    Ok(GraphKey::new(dataset, scale, seed))
}

/// Loads (or finds resident) the graph behind `key`. A successful load
/// is an accounting event: admitting a graph is the one place resident
/// bytes can jump by megabytes at once, so the governor enforces the
/// budget here, synchronously, before the request proceeds. The caller
/// holds an `Arc` to the loaded graph, so even if this very graph is
/// chosen for eviction the in-flight request still answers.
fn load_graph(
    state: &AppState,
    key: &GraphKey,
    cancel: &CancelToken,
) -> Result<Arc<LoadedGraph>, Response> {
    let _span = trace::current().map(|t| t.stage("graph_load"));
    let graph =
        state.registry.get_or_load(key, cancel).map_err(|err| registry_error_response(&err))?;
    state.govern.enforce(&state.accountants());
    Ok(graph)
}

/// Resolves dataset + scale + seed into a resident graph.
fn resolve_graph(
    state: &AppState,
    params: &[(String, String)],
    name: &str,
    cancel: &CancelToken,
) -> Result<(GraphKey, Arc<LoadedGraph>), Response> {
    let key = graph_key_from(state, params, name)?;
    let graph = load_graph(state, &key, cancel)?;
    Ok((key, graph))
}

/// Answers from the disk-hydrated body for `body_key`, if one exists.
/// This is the warm-start fast path: no graph load, no pool compute,
/// the exact bytes the pre-restart process rendered.
fn warm_body(state: &AppState, body_key: &str) -> Option<Response> {
    let started = std::time::Instant::now();
    let body = state.cache.hydrated_body(body_key)?;
    let body = String::from_utf8(body).ok()?;
    if let Some(t) = trace::current() {
        t.leaf("store_hydrate", "warm-disk", started.elapsed());
    }
    Some(Response::json(200, body).with_header("X-Cache", "warm-disk"))
}

/// Opens a `cache:<kind>` span on the current trace (if any). The span
/// stays open across the coalesced compute; [`note_lookup`] stamps how
/// the lookup resolved before the guard drops.
fn cache_stage(name: &'static str) -> Option<StageGuard> {
    trace::current().map(|t| t.stage(name))
}

/// Stamps `hit` / `miss` / `coalesced` on an open cache span.
fn note_lookup(span: &Option<StageGuard>, lookup: &Lookup) {
    if let Some(span) = span {
        span.detail(if lookup.coalesced {
            "coalesced"
        } else if lookup.hit {
            "hit"
        } else {
            "miss"
        });
    }
}

/// Records a successful response body under its canonical key so the
/// drain-time snapshot can persist it.
fn record_body(state: &AppState, body_key: &str, response: &Response, cost: std::time::Duration) {
    if response.status == 200 {
        state.cache.record_body(body_key, response.body.as_bytes(), cost);
    }
}

fn cache_header(hit: bool) -> &'static str {
    if hit {
        "hit"
    } else {
        "miss"
    }
}

/// The live-version view one query computes under: which CSR version
/// the response is stamped with, and how far behind the label's head
/// that stamp is.
struct LiveView {
    /// The version the response is computed and cached at.
    stamp: u64,
    /// `head - stamp`: 0 when strict, >0 when `?max_stale=` accepted a
    /// lagging CSR instead of forcing a rebuild.
    staleness: u64,
}

impl LiveView {
    /// The cache/body key suffix that makes version-stamped entries
    /// distinct. Frozen labels get no suffix, so their keys (and
    /// warm-restart byte identity) are untouched by the live subsystem.
    fn suffix(&self) -> String {
        format!("|v{}", self.stamp)
    }
}

/// Resolves the live view for `label`: `None` for frozen (never
/// mutated) labels. With `?max_stale=N`, a resident CSR at most N
/// acked batches behind head may answer as-is; anything staler forces
/// a rebuild to head before computing.
fn live_view(
    state: &AppState,
    params: &[(String, String)],
    label: &str,
) -> Result<Option<LiveView>, Response> {
    let max_stale = param_u64(params, "max_stale", 0)?;
    let Some((version, csr_version)) = state.live.version_info(label) else {
        return Ok(None);
    };
    if version == 0 {
        return Ok(None);
    }
    let lag = version.saturating_sub(csr_version);
    let stamp = if lag > max_stale { version } else { csr_version };
    Ok(Some(LiveView { stamp, staleness: version - stamp }))
}

/// Stamps the live headers onto a finished response and counts a
/// bounded-stale answer when one was served.
fn finish_live(response: Response, live: &Option<LiveView>) -> Response {
    match live {
        None => response,
        Some(view) => {
            if view.staleness > 0 {
                Metrics::global().incr("live.stale_served", 1);
            }
            response
                .with_header("X-Graph-Version", &view.stamp.to_string())
                .with_header("X-Staleness", &view.staleness.to_string())
        }
    }
}

/// The graph a live-aware query computes on: the resident one when its
/// CSR is fresh enough for `view`, otherwise a rebuild swapped in
/// under the registry shard lock.
fn live_graph(
    state: &AppState,
    key: &GraphKey,
    graph: Arc<LoadedGraph>,
    live: &Option<LiveView>,
) -> Arc<LoadedGraph> {
    match live {
        None => graph,
        Some(view) => state.live.ensure_stamp(&state.registry, key, graph, view.stamp),
    }
}

fn healthz(state: &Arc<AppState>) -> Response {
    let cache = state.cache.stats();
    let mut obj = json::Obj::new();
    obj.str("status", "ok")
        .int("datasets", Dataset::ALL.len() as u64)
        .int("resident_graphs", state.registry.len() as u64)
        .int("cache_entries", cache.entries as u64)
        .bool("draining", state.shutdown.is_cancelled());
    Response::json(200, obj.finish())
}

fn datasets(state: &Arc<AppState>) -> Response {
    let resident = state.registry.list();
    let live_infos = state.live.infos();
    let mut rows = json::Arr::new();
    for dataset in Dataset::ALL {
        let spec = dataset.spec();
        let mut row = json::Obj::new();
        row.str("name", spec.name)
            .int("paper_nodes", spec.paper_nodes as u64)
            .int("paper_edges", spec.paper_edges as u64);
        match spec.paper_slem {
            Some(mu) => row.num("paper_slem", mu, 4),
            None => row.raw("paper_slem", "null"),
        };
        // One dataset can be live at several (scale, seed) keys; the
        // per-dataset row reports the most-mutated one. Frozen
        // datasets report version 0 / staleness 0.
        let prefix = format!("{}@", spec.name);
        let head = live_infos
            .iter()
            .filter(|info| info.label.starts_with(&prefix))
            .max_by_key(|info| info.version);
        row.str("model", spec.model.label())
            .str("size_class", &format!("{:?}", spec.size_class))
            .bool("resident", resident.iter().any(|r| r.key.dataset() == dataset))
            .int("version", head.map_or(0, |info| info.version))
            .int("staleness", head.map_or(0, LiveInfo::staleness));
        rows.push_raw(row.finish());
    }
    let mut live_rows = json::Arr::new();
    for info in &live_infos {
        let mut obj = json::Obj::new();
        obj.str("label", &info.label)
            .int("version", info.version)
            .int("csr_version", info.csr_version)
            .int("staleness", info.staleness());
        live_rows.push_raw(obj.finish());
    }
    let mut loaded = json::Arr::new();
    for row in &resident {
        let mut obj = json::Obj::new();
        obj.str("label", &row.key.label())
            .int("nodes", row.nodes as u64)
            .int("edges", row.edges as u64)
            .int("approx_bytes", row.bytes as u64);
        loaded.push_raw(obj.finish());
    }
    // Graphs the pre-restart process was serving, hydrated from the
    // snapshot: reported for operators, rebuilt lazily on first touch.
    let mut remembered = json::Arr::new();
    for row in state.registry.remembered() {
        let mut obj = json::Obj::new();
        obj.str("label", &row.label())
            .int("approx_bytes", row.approx_bytes as u64)
            .int("hits", row.hits);
        remembered.push_raw(obj.finish());
    }
    // Memory-pressure view: the governor's budget (0 when governance is
    // off), the process-wide resident total across every accountant,
    // and the per-shard registry breakdown an operator needs to see
    // which shard a reclaim will bite.
    let mut shard_bytes = json::Arr::new();
    for bytes in state.registry.shard_bytes() {
        shard_bytes.push_raw(bytes.to_string());
    }
    let mut obj = json::Obj::new();
    obj.raw("datasets", &rows.finish())
        .raw("resident", &loaded.finish())
        .raw("remembered", &remembered.finish())
        .raw("live", &live_rows.finish())
        .int("resident_bytes", state.registry.resident_bytes() as u64)
        .int("budget_bytes", state.govern.budget_bytes().unwrap_or(0) as u64)
        .int("governed_bytes", state.accountants().resident_bytes() as u64)
        .raw("shard_bytes", &shard_bytes.finish());
    Response::json(200, obj.finish())
}

/// `GET /metrics` — Prometheus text exposition by default (the format
/// scrapers speak), the legacy pinned-JSON snapshot via `?format=json`.
/// Telemetry routes never touch the property cache or the persist
/// snapshot: a scrape must not perturb what it observes.
fn metrics(state: &Arc<AppState>, req: &Request) -> Response {
    let cache = state.cache.stats();
    let m = Metrics::global();
    m.gauge_set("serve.cache_hit_rate", cache.hit_rate());
    m.gauge_set("serve.resident_graphs", state.registry.len() as f64);
    if req.param("format") == Some("json") {
        return Response::text(200, m.render_snapshot());
    }
    let mut response = Response::text(200, m.render_prometheus());
    response.content_type = "text/plain; version=0.0.4";
    response
}

/// `GET /debug/trace/<id>` — one sealed trace from the ring, rendered
/// as a nested span tree.
fn debug_trace(state: &Arc<AppState>, id: &str) -> Response {
    match state.traces.find(id) {
        Some(sealed) => Response::json(200, sealed.to_json_tree()),
        None => error_response(404, &format!("no trace {id:?} in the ring (evicted or unknown)")),
    }
}

/// `GET /debug/slow?threshold_ms=..&n=..` — the slowest sealed traces
/// above the threshold, slowest first.
fn debug_slow(state: &Arc<AppState>, req: &Request) -> Response {
    let params = req.params_with_body();
    let threshold_ms = match param_f64(&params, "threshold_ms", 0.0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    if !(threshold_ms.is_finite() && threshold_ms >= 0.0) {
        return error_response(400, &format!("threshold_ms must be >= 0, got {threshold_ms}"));
    }
    let n = match param_usize(&params, "n", 10) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let slow = state.traces.slowest(threshold_ms, n.min(100));
    let mut rows = json::Arr::new();
    for sealed in &slow {
        rows.push_raw(sealed.to_json_tree());
    }
    let mut obj = json::Obj::new();
    obj.int("sealed_total", state.traces.sealed_total())
        .int("ring_capacity", state.traces.capacity() as u64)
        .num("threshold_ms", threshold_ms, 3)
        .int("returned", slow.len() as u64)
        .raw("slowest", &rows.finish());
    Response::json(200, obj.finish())
}

fn load(state: &Arc<AppState>, req: &Request, name: &str, cancel: &CancelToken) -> Response {
    let params = req.params_with_body();
    // Rung 4 of the reclaim ladder: an explicit load is the only purely
    // additive request, so it is the one we refuse outright when even a
    // full ladder walk cannot get back under budget. Property queries
    // on already-admitted graphs keep answering — degrade, don't die.
    if state.govern.enabled() && !state.govern.enforce(&state.accountants()) {
        state.govern.note_shed();
        return shed_response("memory budget exhausted; graph not admitted");
    }
    let (key, graph) = match resolve_graph(state, &params, name, cancel) {
        Ok(pair) => pair,
        Err(response) => return response,
    };
    let mut obj = json::Obj::new();
    obj.str("label", &key.label())
        .str("dataset", key.dataset().name())
        .int("nodes", graph.graph.node_count() as u64)
        .int("edges", graph.graph.edge_count() as u64)
        .int("approx_bytes", graph.approx_bytes as u64)
        .int("resident_graphs", state.registry.len() as u64);
    Response::json(200, obj.finish())
}

fn evict(state: &Arc<AppState>, req: &Request, name: &str) -> Response {
    let params = req.params_with_body();
    let Some(dataset) = dataset_by_name(name) else {
        return error_response(404, &format!("unknown dataset {name:?}"));
    };
    let scale = match param_f64(&params, "scale", state.config.default_scale) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let seed = match param_u64(&params, "seed", state.config.default_seed) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let key = GraphKey::new(dataset, scale, seed);
    let evicted = state.registry.evict(&key);
    // The graph's memoized properties go with it — including poisoned
    // entries, so evicting is how an operator heals a sick key.
    let properties_evicted = state.cache.evict_for_label(&key.label());
    // A live label's swapped-in CSR is gone with the slot: reset its
    // CSR version so the next strict query rebuilds instead of
    // trusting a stamp that now points at a regenerated v0 base.
    state.live.note_evicted(&key.label());
    // Recompute both resident-byte gauges after the compound eviction:
    // a metrics scrape racing this request must never see bytes that
    // are already gone.
    state.registry.recompute_gauges();
    state.cache.recompute_gauges();
    let mut obj = json::Obj::new();
    obj.str("label", &key.label())
        .bool("evicted", evicted)
        .int("properties_evicted", properties_evicted as u64);
    Response::json(200, obj.finish())
}

/// `POST /datasets/<name>/delta` — one batched edge-delta in the wire
/// format (`+ u v` / `- u v` lines). The graph is selected by `scale`
/// and `seed` *query* parameters only — the body is the ops, never
/// form data. A batch acks only after its WAL frame is fsynced; a WAL
/// write error answers 500 with nothing applied. Crossing the rebuild
/// threshold folds the overlay into a fresh CSR and swaps it into the
/// registry before the response renders.
fn delta(state: &Arc<AppState>, req: &Request, name: &str, cancel: &CancelToken) -> Response {
    let key = match graph_key_from(state, &req.query, name) {
        Ok(key) => key,
        Err(response) => return response,
    };
    let ops = match parse_ops(&req.body) {
        Ok(ops) => ops,
        Err(reason) => return error_response(400, &reason),
    };
    if ops.is_empty() {
        return error_response(400, "delta batch has no ops");
    }
    let graph = match load_graph(state, &key, cancel) {
        Ok(graph) => graph,
        Err(response) => return response,
    };
    let label = key.label();
    let ingest_span = trace::current().map(|t| t.stage("live_ingest"));
    let (live_state, outcome) = match state.live.ingest(&label, &graph.csr, &ops) {
        Ok(pair) => pair,
        // A batch naming an id past the growth cap is the caller's
        // error and was never acked; a WAL failure is ours.
        Err(e @ crate::live::IngestError::NodeCap { .. }) => {
            return error_response(400, &e.to_string())
        }
        Err(e) => return error_response(500, &e.to_string()),
    };
    drop(ingest_span);
    let mut rebuild_ms = None;
    if outcome.needs_rebuild {
        let rebuild_span = trace::current().map(|t| t.stage("live_rebuild"));
        let (_fresh, wall) = state.live.rebuild_and_swap(&state.registry, &key, &live_state);
        drop(rebuild_span);
        rebuild_ms = Some(wall);
    }
    let st = live_state.lock().unwrap_or_else(|p| p.into_inner());
    let mut obj = json::Obj::new();
    obj.str("label", &label)
        .int("version", outcome.version)
        .int("csr_version", st.csr_version)
        .int("staleness", st.version.saturating_sub(st.csr_version))
        .int("inserted", outcome.report.stats.inserted as u64)
        .int("deleted", outcome.report.stats.deleted as u64)
        .int("ignored", outcome.report.stats.ignored as u64)
        .int("repaired", outcome.report.repaired as u64)
        .int("recomputed", outcome.report.recomputed as u64)
        .int("nodes", st.maintained.graph().node_count() as u64)
        .int("edges", st.maintained.graph().edge_count() as u64)
        .int("wal_bytes", outcome.wal_bytes)
        .bool("durable", state.live.durable())
        .bool("rebuilt", rebuild_ms.is_some());
    match rebuild_ms {
        Some(wall) => obj.num("rebuild_ms", wall.as_secs_f64() * 1e3, 3),
        None => obj.raw("rebuild_ms", "null"),
    };
    Response::json(200, obj.finish())
}

fn mixing(state: &Arc<AppState>, req: &Request, name: &str, cancel: &CancelToken) -> Response {
    let params = req.params_with_body();
    let key = match graph_key_from(state, &params, name) {
        Ok(key) => key,
        Err(response) => return response,
    };
    let eps = match param_f64(&params, "eps", 0.25) {
        Ok(v) => v,
        Err(response) => return response,
    };
    if !(eps > 0.0 && eps < 0.5) {
        return error_response(400, &format!("eps must be in (0, 0.5), got {eps}"));
    }
    let sources = match param_usize(&params, "sources", 0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let max_walk = match param_usize(&params, "max_walk", 200) {
        Ok(v) => v,
        Err(response) => return response,
    };
    if sources > MAX_SOURCES || max_walk == 0 || max_walk > MAX_WALK {
        return error_response(
            400,
            &format!("sources must be <= {MAX_SOURCES} and max_walk in 1..={MAX_WALK}"),
        );
    }
    let label = key.label();
    let live = match live_view(state, &params, &label) {
        Ok(live) => live,
        Err(response) => return response,
    };
    let vsuffix = live.as_ref().map(LiveView::suffix).unwrap_or_default();

    // The panic hook bypasses persistence entirely: a poisoning test
    // must exercise the live path, and a poisoned body never records.
    let inject_panic = state.config.panic_injection && req.param("__panic") == Some("1");
    // `__slow_ms` (test-gated like `__panic`) stalls the handler so the
    // trace tests and serveload can manufacture a known-slow request.
    if state.config.panic_injection {
        if let Some(ms) = req.param("__slow_ms").and_then(|v| v.parse::<u64>().ok()) {
            let span = trace::current().map(|t| t.stage("inject_slow"));
            std::thread::sleep(std::time::Duration::from_millis(ms.min(5_000)));
            drop(span);
        }
    }
    let eps_text = json::num(eps, 6);
    let body_key = format!("body|{label}|mixing|eps={eps_text}|s={sources}|w={max_walk}{vsuffix}");
    if !inject_panic {
        if let Some(response) = warm_body(state, &body_key) {
            return finish_live(response, &live);
        }
    }
    let graph = match load_graph(state, &key, cancel) {
        Ok(graph) => graph,
        Err(response) => return response,
    };
    let graph = live_graph(state, &key, graph, &live);

    // The spectrum is cached independently of eps so every bound
    // request reuses one power iteration.
    let spectrum_key = if inject_panic {
        format!("spectrum|{label}|boom")
    } else {
        format!("spectrum|{label}{vsuffix}")
    };
    let spectrum_span = cache_stage("cache:spectrum");
    let spectrum_lookup = {
        let graph = Arc::clone(&graph);
        state.cache.get_or_compute(&spectrum_key, &state.pool, cancel, move || {
            if inject_panic {
                panic!("injected panic: mixing kernel failure requested by test");
            }
            let spectrum = try_slem_csr(&graph.csr, &SpectralConfig::default())
                .map_err(|e| e.to_string())?;
            Ok((Arc::new(spectrum) as CacheValue, std::mem::size_of::<Spectrum>()))
        })
    };
    let spectrum_lookup = match spectrum_lookup {
        Ok(lookup) => lookup,
        Err(err) => return cache_error_response(&err),
    };
    note_lookup(&spectrum_span, &spectrum_lookup);
    drop(spectrum_span);
    let Some(spectrum) = spectrum_lookup.entry.value::<Spectrum>().copied() else {
        return error_response(500, "cache entry holds an unexpected type");
    };

    let bounds = match try_sinclair_bounds(spectrum.slem(), graph.graph.node_count(), eps) {
        Ok(b) => b,
        Err(e) => return error_response(400, &e.to_string()),
    };

    let mut sampled_json = String::from("null");
    let mut all_hit = spectrum_lookup.hit;
    let mut compute_cost = spectrum_lookup.entry.cost;
    if sources > 0 {
        let tvd_key = format!("tvd|{label}|s={sources}|w={max_walk}{vsuffix}");
        let tvd_span = cache_stage("cache:tvd");
        let measurement_lookup = {
            let graph = Arc::clone(&graph);
            state.cache.get_or_compute(&tvd_key, &state.pool, cancel, move || {
                let config = MixingConfig { sources, max_walk, ..MixingConfig::default() };
                let par = ParConfig { threads: 1, ..ParConfig::default() };
                let (m, report) = MixingMeasurement::measure_reported_csr(
                    &graph.graph,
                    &graph.csr,
                    &config,
                    &par,
                );
                if !report.is_complete() {
                    return Err(format!("mixing sweep degraded: {}", report.summary_line()));
                }
                let bytes = m.curves.len() * max_walk * 8;
                Ok((Arc::new(m) as CacheValue, bytes))
            })
        };
        let measurement_lookup = match measurement_lookup {
            Ok(lookup) => lookup,
            Err(err) => return cache_error_response(&err),
        };
        note_lookup(&tvd_span, &measurement_lookup);
        drop(tvd_span);
        all_hit &= measurement_lookup.hit;
        compute_cost += measurement_lookup.entry.cost;
        let Some(m) = measurement_lookup.entry.value::<MixingMeasurement>() else {
            return error_response(500, "cache entry holds an unexpected type");
        };
        let mean_final = m.mean_curve().last().copied().unwrap_or(0.0);
        let max_final = m.max_curve().last().copied().unwrap_or(0.0);
        let mut sampled = json::Obj::new();
        sampled.int("sources", m.curves.len() as u64).int("max_walk", m.max_walk as u64);
        match m.mixing_time(eps) {
            Some(t) => sampled.int("mixing_time", t as u64),
            None => sampled.raw("mixing_time", "null"),
        };
        sampled.num("mean_final_tvd", mean_final, 6).num("max_final_tvd", max_final, 6);
        sampled_json = sampled.finish();
    }

    let mut obj = json::Obj::new();
    obj.str("label", &label)
        .int("nodes", graph.graph.node_count() as u64)
        .int("edges", graph.graph.edge_count() as u64)
        .num("lambda2", spectrum.lambda2, 9)
        .num("lambda_min", spectrum.lambda_min, 9)
        .num("slem", spectrum.slem(), 9)
        .num("gap", spectrum.gap(), 9)
        .num("eps", eps, 6)
        .num("sinclair_lower", bounds.lower, 3)
        .num("sinclair_upper", bounds.upper, 3)
        .raw("sampled", &sampled_json);
    if let Some(view) = &live {
        obj.int("graph_version", view.stamp);
    }
    let response =
        Response::json(200, obj.finish()).with_header("X-Cache", cache_header(all_hit));
    if !inject_panic {
        record_body(state, &body_key, &response, compute_cost);
    }
    finish_live(response, &live)
}

fn coreness(
    state: &Arc<AppState>,
    req: &Request,
    name: &str,
    node: &str,
    cancel: &CancelToken,
) -> Response {
    let params = req.params_with_body();
    let key = match graph_key_from(state, &params, name) {
        Ok(key) => key,
        Err(response) => return response,
    };
    let Ok(node) = node.parse::<u32>() else {
        return error_response(400, &format!("node {node:?} is not a valid node id"));
    };
    let label = key.label();
    let live = match live_view(state, &params, &label) {
        Ok(live) => live,
        Err(response) => return response,
    };
    // Live labels skip the cache and the body snapshot entirely: the
    // incrementally maintained decomposition is already exact at head
    // (that is the tentpole invariant), so the answer is a lock + two
    // array reads — cheaper than any memoization, never stale.
    if live.is_some() {
        let graph = match load_graph(state, &key, cancel) {
            Ok(graph) => graph,
            Err(response) => return response,
        };
        let live_state = state.live.resolve(&label, &graph.csr);
        let st = live_state.lock().unwrap_or_else(|p| p.into_inner());
        let cores = st.maintained.cores();
        let Some(coreness) = cores.coreness(node) else {
            return error_response(
                400,
                &format!("node {node} out of range for {} nodes", cores.len()),
            );
        };
        let core_size = cores.coreness_slice().iter().filter(|&&c| c >= coreness).count();
        let mut obj = json::Obj::new();
        obj.str("label", &label)
            .int("node", u64::from(node))
            .int("coreness", u64::from(coreness))
            .int("degeneracy", u64::from(cores.degeneracy()))
            .int("core_size", core_size as u64)
            .int("graph_version", st.version);
        return Response::json(200, obj.finish())
            .with_header("X-Cache", "live")
            .with_header("X-Graph-Version", &st.version.to_string())
            .with_header("X-Staleness", "0");
    }
    let body_key = format!("body|{label}|coreness|n={node}");
    if let Some(response) = warm_body(state, &body_key) {
        return response;
    }
    let graph = match load_graph(state, &key, cancel) {
        Ok(graph) => graph,
        Err(response) => return response,
    };
    // One decomposition per graph answers every node's query.
    let core_span = cache_stage("cache:cores");
    let lookup = {
        let graph = Arc::clone(&graph);
        state.cache.get_or_compute(&format!("cores|{label}"), &state.pool, cancel, move || {
            let decomposition = CoreDecomposition::compute_csr(&graph.csr);
            let bytes = graph.graph.node_count() * 12;
            Ok((Arc::new(decomposition) as CacheValue, bytes))
        })
    };
    let lookup = match lookup {
        Ok(lookup) => lookup,
        Err(err) => return cache_error_response(&err),
    };
    note_lookup(&core_span, &lookup);
    drop(core_span);
    let Some(decomposition) = lookup.entry.value::<CoreDecomposition>() else {
        return error_response(500, "cache entry holds an unexpected type");
    };
    let coreness = match decomposition.try_coreness(NodeId(node)) {
        Ok(c) => c,
        Err(e) => return error_response(400, &e.to_string()),
    };
    let mut obj = json::Obj::new();
    obj.str("label", &label)
        .int("node", u64::from(node))
        .int("coreness", u64::from(coreness))
        .int("degeneracy", u64::from(decomposition.degeneracy()))
        .int("core_size", decomposition.core_members(coreness).len() as u64);
    let response =
        Response::json(200, obj.finish()).with_header("X-Cache", cache_header(lookup.hit));
    record_body(state, &body_key, &response, lookup.entry.cost);
    response
}

fn expansion(state: &Arc<AppState>, req: &Request, name: &str, cancel: &CancelToken) -> Response {
    let params = req.params_with_body();
    let key = match graph_key_from(state, &params, name) {
        Ok(key) => key,
        Err(response) => return response,
    };
    let root = match param_u32(&params, "root", 0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let hops = match param_usize(&params, "hops", usize::MAX) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let label = key.label();
    let live = match live_view(state, &params, &label) {
        Ok(live) => live,
        Err(response) => return response,
    };
    let vsuffix = live.as_ref().map(LiveView::suffix).unwrap_or_default();
    // `hops` trims the rendered view, so it is part of the body key
    // even though the cached envelope ignores it. A warm hit can only
    // exist for a root the old process validated, so the range check
    // below is not bypassed — an out-of-range root was never recorded.
    let body_key = format!("body|{label}|expansion|root={root}|hops={hops}{vsuffix}");
    if let Some(response) = warm_body(state, &body_key) {
        return finish_live(response, &live);
    }
    let graph = match load_graph(state, &key, cancel) {
        Ok(graph) => graph,
        Err(response) => return response,
    };
    let graph = live_graph(state, &key, graph, &live);
    if graph.graph.check_node(NodeId(root)).is_err() {
        return error_response(
            400,
            &format!("root {root} out of range for {} nodes", graph.graph.node_count()),
        );
    }
    // The full envelope is cached per root; `hops` only trims the view.
    let envelope_span = cache_stage("cache:expansion");
    let lookup = {
        let graph = Arc::clone(&graph);
        state.cache.get_or_compute(
            &format!("expansion|{label}|root={root}{vsuffix}"),
            &state.pool,
            cancel,
            move || {
                let envelope = EnvelopeExpansion::try_measure_csr(&graph.csr, NodeId(root))
                    .map_err(|e| e.to_string())?;
                let bytes = envelope.level_sizes().len() * 24 + 64;
                Ok((Arc::new(envelope) as CacheValue, bytes))
            },
        )
    };
    let lookup = match lookup {
        Ok(lookup) => lookup,
        Err(err) => return cache_error_response(&err),
    };
    note_lookup(&envelope_span, &lookup);
    drop(envelope_span);
    let Some(envelope) = lookup.entry.value::<EnvelopeExpansion>() else {
        return error_response(500, "cache entry holds an unexpected type");
    };
    let shown = hops.min(envelope.level_sizes().len());
    let mut levels = json::Arr::new();
    for &size in &envelope.level_sizes()[..shown] {
        levels.push_raw(size.to_string());
    }
    let mut alphas = json::Arr::new();
    for &alpha in envelope.alphas().iter().take(shown) {
        alphas.push_raw(json::num(alpha, 6));
    }
    let mut obj = json::Obj::new();
    obj.str("label", &label)
        .int("root", u64::from(root))
        .int("eccentricity", envelope.eccentricity() as u64)
        .int("reached", envelope.reached() as u64)
        .int("hops_shown", shown as u64)
        .raw("level_sizes", &levels.finish())
        .raw("alphas", &alphas.finish());
    if let Some(view) = &live {
        obj.int("graph_version", view.stamp);
    }
    let response =
        Response::json(200, obj.finish()).with_header("X-Cache", cache_header(lookup.hit));
    record_body(state, &body_key, &response, lookup.entry.cost);
    finish_live(response, &live)
}

fn admit(state: &Arc<AppState>, req: &Request, name: &str, cancel: &CancelToken) -> Response {
    let params = req.params_with_body();
    let key = match graph_key_from(state, &params, name) {
        Ok(key) => key,
        Err(response) => return response,
    };
    let controller = match param_u32(&params, "controller", 0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let sybils = match param_usize(&params, "sybils", 0) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let attack_edges =
        match param_usize(&params, "attack_edges", if sybils > 0 { 10 } else { 0 }) {
            Ok(v) => v,
            Err(response) => return response,
        };
    let distributors = match param_usize(&params, "distributors", 25) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let f_admit = match param_f64(&params, "f_admit", 0.2) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let coverage = match param_f64(&params, "coverage", 0.5) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let walk = match param_usize(&params, "walk", 25) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let seed = match param_u64(&params, "seed", 0x6a7e) {
        Ok(v) => v,
        Err(response) => return response,
    };
    let attack_seed = match param_u64(&params, "attack_seed", 7) {
        Ok(v) => v,
        Err(response) => return response,
    };

    if sybils > MAX_SYBILS || attack_edges > MAX_ATTACK_EDGES {
        return error_response(
            400,
            &format!("sybils must be <= {MAX_SYBILS} and attack_edges <= {MAX_ATTACK_EDGES}"),
        );
    }
    if distributors == 0 || distributors > MAX_DISTRIBUTORS {
        return error_response(400, &format!("distributors must be in 1..={MAX_DISTRIBUTORS}"));
    }
    if !(f_admit > 0.0 && f_admit <= 1.0) || !(coverage > 0.0 && coverage <= 1.0) {
        return error_response(400, "f_admit and coverage must be in (0, 1]");
    }
    if walk == 0 || walk > MAX_WALK {
        return error_response(400, &format!("walk must be in 1..={MAX_WALK}"));
    }
    if sybils > 0 && attack_edges == 0 {
        return error_response(400, "an attack with sybils needs at least one attack edge");
    }

    let label = key.label();
    let live = match live_view(state, &params, &label) {
        Ok(live) => live,
        Err(response) => return response,
    };
    let vsuffix = live.as_ref().map(LiveView::suffix).unwrap_or_default();
    let f_text = json::num(f_admit, 6);
    let cov_text = json::num(coverage, 6);
    let param_suffix = format!(
        "c={controller}|s={sybils}|ae={attack_edges}|m={distributors}|f={f_text}|cov={cov_text}|w={walk}|seed={seed}|aseed={attack_seed}{vsuffix}"
    );
    // Warm check before the graph load; a warm hit can only exist for a
    // controller the old process range-checked against the same graph.
    let body_key = format!("body|{label}|admit|{param_suffix}");
    if let Some(response) = warm_body(state, &body_key) {
        return finish_live(response, &live);
    }
    let graph = match load_graph(state, &key, cancel) {
        Ok(graph) => graph,
        Err(response) => return response,
    };
    let graph = live_graph(state, &key, graph, &live);
    if controller as usize >= graph.graph.node_count() {
        return error_response(
            400,
            &format!("controller {controller} out of range for {} nodes", graph.graph.node_count()),
        );
    }
    let cache_key = format!("admit|{label}|{param_suffix}");
    let admit_span = cache_stage("cache:admit");
    let lookup = {
        let graph = Arc::clone(&graph);
        state.cache.get_or_compute(&cache_key, &state.pool, cancel, move || {
            let protocol = GateKeeper::new(GateKeeperConfig {
                distributors,
                f_admit,
                coverage,
                sample_walk_length: walk,
                seed,
            });
            let par = ParConfig { threads: 1, ..ParConfig::default() };
            // The clean graph reuses the registry's resident slabs; a
            // mounted attack graph is a different graph and converts.
            let run = |g: &socnet_core::Graph,
                       csr: Option<&socnet_core::Csr>,
                       is_sybil: &dyn Fn(usize) -> bool| {
                let (outcome, report) = match csr {
                    Some(csr) => protocol.run_from_reported_csr(g, csr, NodeId(controller), &par),
                    None => protocol.run_from_reported(g, NodeId(controller), &par),
                }
                .map_err(|e| e.to_string())?;
                if !report.is_complete() {
                    return Err(format!("admission flood degraded: {}", report.summary_line()));
                }
                let mut verdict = AdmitVerdict {
                    honest_total: 0,
                    honest_admitted: 0,
                    sybil_total: 0,
                    sybil_admitted: 0,
                    threshold: outcome.threshold(),
                    distributors: outcome.distributors().len(),
                    controller: outcome.controller().0 as usize,
                };
                for (v, &admitted) in outcome.admitted().iter().enumerate() {
                    if is_sybil(v) {
                        verdict.sybil_total += 1;
                        verdict.sybil_admitted += usize::from(admitted);
                    } else {
                        verdict.honest_total += 1;
                        verdict.honest_admitted += usize::from(admitted);
                    }
                }
                Ok((Arc::new(verdict) as CacheValue, 128))
            };
            if sybils == 0 {
                run(&graph.graph, Some(&graph.csr), &|_| false)
            } else {
                let attacked = AttackedGraph::mount(
                    &graph.graph,
                    &SybilAttack {
                        sybil_count: sybils,
                        attack_edges,
                        topology: SybilTopology::ErdosRenyi { p: 0.1 },
                        seed: attack_seed,
                    },
                );
                run(attacked.graph(), None, &|v| attacked.is_sybil(NodeId(v as u32)))
            }
        })
    };
    let lookup = match lookup {
        Ok(lookup) => lookup,
        Err(err) => return cache_error_response(&err),
    };
    note_lookup(&admit_span, &lookup);
    drop(admit_span);
    let Some(verdict) = lookup.entry.value::<AdmitVerdict>() else {
        return error_response(500, "cache entry holds an unexpected type");
    };

    let rate = |admitted: usize, total: usize| {
        if total == 0 {
            0.0
        } else {
            admitted as f64 / total as f64
        }
    };
    let mut honest = json::Obj::new();
    honest
        .int("total", verdict.honest_total as u64)
        .int("admitted", verdict.honest_admitted as u64)
        .num("rate", rate(verdict.honest_admitted, verdict.honest_total), 6);
    let mut sybil = json::Obj::new();
    sybil
        .int("total", verdict.sybil_total as u64)
        .int("admitted", verdict.sybil_admitted as u64)
        .num("rate", rate(verdict.sybil_admitted, verdict.sybil_total), 6);
    let mut attack = json::Obj::new();
    attack
        .int("sybils", sybils as u64)
        .int("attack_edges", attack_edges as u64)
        .int("attack_seed", attack_seed);
    let mut obj = json::Obj::new();
    obj.str("label", &label)
        .int("controller", verdict.controller as u64)
        .int("distributors", verdict.distributors as u64)
        .int("threshold", u64::from(verdict.threshold))
        .raw("f_admit", &f_text)
        .raw("honest", &honest.finish())
        .raw("sybil", &sybil.finish())
        .raw("attack", &attack.finish());
    if let Some(view) = &live {
        obj.int("graph_version", view.stamp);
    }
    let response =
        Response::json(200, obj.finish()).with_header("X-Cache", cache_header(lookup.hit));
    record_body(state, &body_key, &response, lookup.entry.cost);
    finish_live(response, &live)
}
