//! `socnet-serve` — an online property-query service over resident
//! social graphs.
//!
//! The batch binaries in `crates/bench` answer "what is the mixing time
//! of dataset X" by regenerating the graph and recomputing the property
//! every run. This crate turns that into a *service*: graphs stay
//! resident, properties stay memoized, and a query that took seconds
//! cold is answered in microseconds warm. Three layers, each usable on
//! its own:
//!
//! - [`GraphRegistry`] — load-once / share-many residency keyed by
//!   *(dataset, scale, seed)*, with coalesced concurrent loads and
//!   resident-byte accounting.
//! - [`PropertyCache`] — a cost-aware memoizing cache for SLEM +
//!   Sinclair bounds, coreness decompositions, TVD curves, envelope
//!   expansion, and GateKeeper admission verdicts. Identical concurrent
//!   misses coalesce into one computation on a panic-isolated
//!   [`socnet_runner::Pool`]; a panicking kernel poisons only its own
//!   entry.
//! - [`Server`] — a hand-rolled HTTP/1.1 front end over
//!   [`std::net::TcpListener`]. The default front end is a
//!   single-threaded non-blocking `poll(2)` readiness loop (see
//!   `eventloop`) with a connection budget, admission-control shedding
//!   (`503` + `Retry-After`), header-read and write-progress deadlines
//!   that reap slow-loris and slow-reader clients, and bounded request
//!   sizes (`431`/`413`); the legacy thread-per-connection loop stays
//!   behind [`Frontend::Threads`] for overload comparisons. Both offer
//!   per-request deadlines, opt-in `Connection: keep-alive` reuse
//!   (bounded per connection, idle deadline between requests), `400`
//!   (never a panic) on malformed input, and a graceful drain that
//!   flushes a metrics snapshot plus a `run.json` manifest.
//! - [`live`] — mutable, versioned graphs: `POST /datasets/<k>/delta`
//!   batches are fsynced into a `socnet-wal-v1` log before they ack,
//!   absorbed into a delta overlay with incrementally maintained
//!   coreness, folded into a fresh CSR (and swapped into the registry)
//!   past a rebuild threshold, and replayed at boot on top of the last
//!   compacted snapshot. Queries opt into bounded staleness with
//!   `?max_stale=`; live bodies carry their graph version.
//! - [`persist`] — warm start over `socnet-store`: the drain snapshots
//!   every rendered body and the registry metadata; the next boot
//!   hydrates them (quarantining anything corrupt or keyed to other
//!   code) so the first repeat query answers `X-Cache: warm-disk` with
//!   byte-identical content, no graph load, no recompute.
//! - [`trace`] — request-scoped tracing: every request carries a span
//!   tree (loop parse, queue wait, handler, cache, kernels, write)
//!   across the loop/pool boundary into a fixed-size ring, served live
//!   by `GET /debug/trace/<id>` + `GET /debug/slow`, correlated with
//!   clients via the `X-Trace-Id` header, and scraped as Prometheus
//!   text on `GET /metrics`.
//!
//! ```no_run
//! use socnet_serve::{Server, ServerConfig};
//!
//! let config = ServerConfig { addr: "127.0.0.1:0".to_string(), ..Default::default() };
//! let server = Server::bind(config).expect("bind");
//! let stop = server.shutdown_handle();
//! // ... from another thread: stop.cancel() triggers a graceful drain.
//! let summary = server.serve().expect("serve");
//! println!("served {} requests", summary.requests);
//! # drop(stop);
//! ```

#![deny(unsafe_code)] // scoped allows live in `signal` and `sys` (FFI shims)
#![warn(missing_docs)]

pub mod cache;
mod eventloop;
pub mod govern;
pub mod http;
pub mod live;
pub mod persist;
pub mod registry;
pub mod routes;
pub mod server;
pub mod signal;
pub mod sys;
pub mod trace;

pub use cache::{
    CacheError, CacheStats, CacheValue, CachedEntry, Lookup, PropertyCache, StoredBody,
};
pub use govern::{Accountants, Governor};
pub use live::{CompactReport, IngestError, IngestOutcome, LiveInfo, LiveManager, LiveState};
pub use persist::{FlushReport, HydrateReport};
pub use registry::{
    GraphKey, GraphMeta, GraphRegistry, LoadedGraph, RegistryError, ResidentInfo, SHARD_COUNT,
};
pub use server::{
    AppState, Frontend, ServeSummary, Server, ServerConfig, MAX_REQUESTS_PER_CONNECTION,
};
pub use trace::{is_valid_trace_jsonl, SealedTrace, TraceHandle, TraceRing};
