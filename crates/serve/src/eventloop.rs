//! The non-blocking event-loop front end.
//!
//! One thread multiplexes every connection through `poll(2)` (via
//! [`crate::sys`]): non-blocking accept, per-connection state machines
//! that parse requests incrementally from bounded buffers
//! ([`http::try_parse`]), and compute handed to a dedicated
//! panic-isolated handler [`Pool`] with responses written back through
//! the loop. Connection count therefore decouples from thread count —
//! the property the thread-per-connection front end lacks and the
//! overload benchmarks measure.
//!
//! Per-connection state machine:
//!
//! ```text
//!            accept                    complete request
//!   (new) ──────────▶ Reading ────────────────────────────▶ InFlight
//!             ▲          │  parse error / shed               │
//!             │          └───────────────────▶ Writing ◀─────┘
//!             │      keep-alive, budget left     │   response ready
//!             └──────────────────────────────────┘
//!                (anything else: close)
//! ```
//!
//! Overload policy, in the order a hostile client meets it:
//!
//! - **Connection budget** — accepts past `max_conns` are answered
//!   `503` + `Retry-After` (best effort) and closed immediately
//!   (`http.shed_conns`).
//! - **Header-read deadline** — a connection that has not delivered a
//!   complete request head within `header_deadline` is reaped, whether
//!   it sent nothing (`http.reaped_idle`) or trickled bytes slow-loris
//!   style (`http.reaped_slowloris`). Bounded buffers reject oversized
//!   heads/bodies with `431`/`413` before the deadline even matters.
//! - **Admission control** — once the handler backlog (queued + running
//!   request jobs) passes `shed_highwater`, parsed requests are shed
//!   with `503` + `Retry-After` instead of queueing without bound
//!   (`http.shed_requests`).
//! - **Write-progress deadline** — a response write that makes no
//!   progress for `header_deadline` marks a slow reader; the connection
//!   is reaped (`http.reaped_slow_reader`).
//!
//! Draining (signal or shutdown handle): stop accepting, close every
//! connection still reading (idle keep-alive and mid-header clients),
//! let in-flight and mid-write connections finish until the drain
//! deadline, then force-close the stragglers (`http.drain_killed`).
//! The caller ([`crate::Server::serve`]) then runs the common drain:
//! compute pool, store snapshot, artifacts.

use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::os::unix::io::AsRawFd;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use socnet_runner::{obs, CancelToken, Metrics, Pool};

use crate::http::{self, HttpError, Parsed, Response};
use crate::routes;
use crate::server::{AppState, KEEP_ALIVE_IDLE, MAX_REQUESTS_PER_CONNECTION};
use crate::signal;
use crate::sys::{self, PollFd, WakePipe, POLLIN, POLLOUT};
use crate::trace::{self, TraceHandle};

/// How much one readiness event reads per `read(2)` call.
const READ_CHUNK: usize = 8 * 1024;
/// Poll timeout backstop, so the loop notices a shutdown-handle cancel
/// (which, unlike a signal, does not write the wake pipe) promptly.
const POLL_TICK: Duration = Duration::from_millis(50);
/// Grace on top of the request deadline before an in-flight connection
/// whose handler never completed (e.g. a panicked job) is reaped.
const INFLIGHT_GRACE: Duration = Duration::from_secs(2);

/// Where a connection is in its request/response cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ConnState {
    /// Accumulating request bytes under the header-read deadline.
    Reading,
    /// A complete request is on the handler pool; the loop ignores the
    /// socket until the completion comes back (or the deadline reaps).
    InFlight,
    /// Flushing the response under the write-progress deadline.
    Writing,
}

/// One connection's state machine.
struct Conn {
    stream: TcpStream,
    /// Cached raw fd (stable for the stream's lifetime).
    fd: i32,
    /// Guards completions against slot reuse: a response for a reaped
    /// connection must not reach whoever now owns the slot.
    generation: u32,
    state: ConnState,
    /// Accumulated request bytes ([`http::try_parse`] bounds growth).
    buf: Vec<u8>,
    /// The serialized response being written.
    out: Vec<u8>,
    written: usize,
    /// Requests served (keep-alive budget).
    served: usize,
    /// When the current state expires (meaning depends on `state`).
    deadline: Instant,
    keep_alive_after_write: bool,
    /// When the connection started waiting for the current request's
    /// bytes (accept, or keep-alive re-arm) — the trace's t0.
    read_start: Instant,
    /// When the current response's write began (the `write` span).
    write_started: Instant,
    /// The in-flight request's trace, sealed at write completion (or
    /// aborted at close/reap).
    trace: Option<TraceHandle>,
}

/// A handler-pool job's result, routed back to the loop by token.
struct Completion {
    token: u64,
    response: Response,
    client_keep_alive: bool,
}

/// `(generation << 32) | slot`.
fn token(slot: usize, generation: u32) -> u64 {
    (u64::from(generation) << 32) | slot as u64
}

fn untoken(token: u64) -> (usize, u32) {
    ((token & 0xFFFF_FFFF) as usize, (token >> 32) as u32)
}

/// Runs the readiness loop on the calling thread until shutdown, then
/// drains the handler pool. The caller still runs the common drain.
pub(crate) fn run(listener: &TcpListener, state: Arc<AppState>) -> std::io::Result<()> {
    let wake = Arc::new(WakePipe::new()?);
    // From here a delivered signal wakes poll(2) instantly.
    signal::set_wake_fd(wake.write_fd());
    let result = EventLoop::new(state, Arc::clone(&wake)).run(listener);
    signal::clear_wake_fd();
    result
}

struct EventLoop {
    state: Arc<AppState>,
    /// Request handlers run here — *not* on the compute pool: a handler
    /// blocks inside the property cache waiting for compute-pool jobs,
    /// so sharing one pool would deadlock it against itself.
    handlers: Pool,
    wake: Arc<WakePipe>,
    completions: Arc<Mutex<Vec<Completion>>>,
    /// Slab of connections; `free` recycles vacant slots.
    conns: Vec<Option<Conn>>,
    free: Vec<usize>,
    generation: u32,
    open: usize,
    /// The header-read / write-progress deadline (capped by the request
    /// deadline so a misconfiguration cannot outlive it).
    header_deadline: Duration,
}

impl EventLoop {
    fn new(state: Arc<AppState>, wake: Arc<WakePipe>) -> EventLoop {
        // Handlers spend their time blocked on compute, so a few more
        // than the compute workers keeps the pipeline full without
        // letting concurrent handler count grow with connections.
        let handler_threads = (state.config.threads * 2).max(2);
        let header_deadline = state.config.header_deadline.min(state.config.request_deadline);
        EventLoop {
            handlers: Pool::new(handler_threads),
            wake,
            completions: Arc::new(Mutex::new(Vec::new())),
            conns: Vec::new(),
            free: Vec::new(),
            generation: 0,
            open: 0,
            header_deadline,
            state,
        }
    }

    fn run(mut self, listener: &TcpListener) -> std::io::Result<()> {
        let drain_budget = self.state.config.drain_deadline;
        let listener_fd = listener.as_raw_fd();
        let mut draining: Option<Instant> = None;
        loop {
            if draining.is_none()
                && (signal::triggered() || self.state.shutdown.is_cancelled())
            {
                // Cancel early so healthz reports draining and no new
                // keep-alive is advertised while connections wind down.
                self.state.shutdown.cancel();
                let closed = self.close_all_reading();
                draining = Some(Instant::now() + drain_budget);
                obs::info(
                    "serve.loop_drain",
                    &[
                        ("closed_reading", (closed as u64).into()),
                        ("in_flight", (self.open as u64).into()),
                    ],
                );
            }
            if let Some(kill_at) = draining {
                if self.open == 0 {
                    break;
                }
                if Instant::now() >= kill_at {
                    let killed = self.close_everything();
                    Metrics::global().incr("http.drain_killed", killed as u64);
                    break;
                }
            }

            // Interest set: listener (unless draining), wake pipe, then
            // one entry per connection that wants I/O. In-flight
            // connections wait on their completion, not the socket.
            let mut fds = Vec::with_capacity(self.open + 2);
            fds.push(PollFd::new(if draining.is_none() { listener_fd } else { -1 }, POLLIN));
            fds.push(PollFd::new(self.wake.read_fd(), POLLIN));
            let mut slots = Vec::with_capacity(self.open);
            for (slot, entry) in self.conns.iter().enumerate() {
                if let Some(conn) = entry {
                    let interest = match conn.state {
                        ConnState::Reading => POLLIN,
                        ConnState::Writing => POLLOUT,
                        ConnState::InFlight => continue,
                    };
                    fds.push(PollFd::new(conn.fd, interest));
                    slots.push(slot);
                }
            }

            sys::poll(&mut fds, self.poll_timeout(draining))?;

            if fds[1].has(POLLIN) {
                self.wake.drain();
            }
            self.deliver_completions(draining.is_some());
            for (i, &slot) in slots.iter().enumerate() {
                let pfd = fds[2 + i];
                if pfd.revents != 0 {
                    self.on_ready(slot, pfd);
                }
            }
            if draining.is_none() && fds[0].has(POLLIN) {
                self.accept_burst(listener);
            }
            self.reap_expired();
        }

        // Whatever drain budget the connections did not use goes to the
        // handler pool (queued jobs finish or are abandoned).
        let remaining = match draining {
            Some(kill_at) => kill_at.saturating_duration_since(Instant::now()),
            None => drain_budget,
        };
        self.handlers.drain(remaining);
        Ok(())
    }

    /// Sleep until the nearest deadline, capped at [`POLL_TICK`].
    fn poll_timeout(&self, draining: Option<Instant>) -> i32 {
        let now = Instant::now();
        let mut next = draining;
        for conn in self.conns.iter().flatten() {
            next = Some(next.map_or(conn.deadline, |t| t.min(conn.deadline)));
        }
        let wait = next.map_or(POLL_TICK, |t| t.saturating_duration_since(now).min(POLL_TICK));
        i32::try_from(wait.as_millis()).unwrap_or(i32::MAX)
    }

    fn accept_burst(&mut self, listener: &TcpListener) {
        // Accept fairness: a reconnect storm (hundreds of pending
        // connects after a mass reap) must not monopolize the loop, so
        // each poll round admits a bounded batch and leaves the rest in
        // the backlog — level-triggered poll re-reports the listener
        // readable next round, after in-flight work has had its turn.
        const ACCEPTS_PER_ROUND: usize = 64;
        for _ in 0..ACCEPTS_PER_ROUND {
            match listener.accept() {
                Ok((stream, _peer)) => {
                    Metrics::global().incr("http.connections", 1);
                    if self.open >= self.state.config.max_conns {
                        // Over budget: one best-effort shed write, then
                        // the drop closes the socket.
                        Metrics::global().incr("http.shed_conns", 1);
                        let mut bytes = Vec::new();
                        let _ = routes::shed_response("connection budget exhausted")
                            .write_to(&mut bytes, false);
                        let mut stream = stream;
                        let _ = stream.set_nonblocking(true);
                        let _ = stream.write(&bytes);
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    self.insert(stream);
                }
                Err(ref e) if e.kind() == ErrorKind::WouldBlock => break,
                // Transient accept failure (e.g. EMFILE): the next poll
                // round retries.
                Err(_) => break,
            }
        }
    }

    fn insert(&mut self, stream: TcpStream) {
        let fd = stream.as_raw_fd();
        let now = Instant::now();
        self.generation = self.generation.wrapping_add(1);
        let conn = Conn {
            stream,
            fd,
            generation: self.generation,
            state: ConnState::Reading,
            buf: Vec::new(),
            out: Vec::new(),
            written: 0,
            served: 0,
            deadline: now + self.header_deadline,
            keep_alive_after_write: false,
            read_start: now,
            write_started: now,
            trace: None,
        };
        match self.free.pop() {
            Some(slot) => self.conns[slot] = Some(conn),
            None => self.conns.push(Some(conn)),
        }
        self.open += 1;
        Metrics::global().gauge_set("http.open_conns", self.open as f64);
    }

    fn close(&mut self, slot: usize) {
        if let Some(conn) = self.conns[slot].take() {
            // A trace still attached here means the request was cut
            // short (reaped, write error): seal it as aborted so the
            // debug ring shows what the client never got.
            if let Some(t) = conn.trace {
                t.finish_aborted(&self.state.traces);
            }
            self.free.push(slot);
            self.open -= 1;
            Metrics::global().gauge_set("http.open_conns", self.open as f64);
        }
    }

    fn on_ready(&mut self, slot: usize, pfd: PollFd) {
        // The slot may have been closed (or even reused) since the
        // interest set was built — the fd check catches reuse.
        let state = match self.conns[slot].as_ref() {
            Some(conn) if conn.fd == pfd.fd => conn.state,
            _ => return,
        };
        if pfd.failed() && !pfd.has(POLLIN | POLLOUT) {
            self.close(slot);
            return;
        }
        match state {
            ConnState::Reading => self.read_burst(slot),
            ConnState::Writing => self.try_write(slot),
            ConnState::InFlight => {}
        }
    }

    /// Reads until `WouldBlock`, EOF, or the connection leaves
    /// [`ConnState::Reading`] (a complete request dispatched).
    fn read_burst(&mut self, slot: usize) {
        loop {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            let mut chunk = [0u8; READ_CHUNK];
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.buf.extend_from_slice(&chunk[..n]);
                    self.advance_parse(slot);
                    match self.conns[slot].as_ref() {
                        Some(c) if c.state == ConnState::Reading => {
                            if n < READ_CHUNK {
                                return;
                            }
                        }
                        _ => return,
                    }
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// Tries to complete a request from the accumulated bytes: dispatch
    /// it, shed it, or reject it — or keep reading.
    fn advance_parse(&mut self, slot: usize) {
        let shed_highwater = self.state.config.shed_highwater;
        let Some(conn) = self.conns[slot].as_mut() else { return };
        if conn.state != ConnState::Reading {
            return;
        }
        match http::try_parse(&conn.buf) {
            Ok(Parsed::Incomplete) => {}
            Ok(Parsed::Request { request, consumed }) => {
                conn.buf.drain(..consumed);
                // The trace clock starts when the connection began
                // waiting for this request's bytes, so the sealed total
                // tracks the client-observed latency.
                let read_start = conn.read_start;
                let request_trace =
                    self.state.begin_trace(&request.method, &request.path, read_start);
                if let Some(t) = &request_trace {
                    t.leaf("read_parse", "", read_start.elapsed());
                }
                conn.trace = request_trace;
                self.state.count_request();
                if self.handlers.backlog() > shed_highwater {
                    Metrics::global().incr("http.shed_requests", 1);
                    self.state.account_response("shed", 503, Duration::ZERO);
                    if let Some(t) = self.conns[slot].as_ref().and_then(|c| c.trace.as_ref()) {
                        t.set_route("shed");
                        t.set_status(503);
                    }
                    let response = routes::shed_response("compute backlog over high-water mark");
                    self.respond(slot, response, false);
                } else {
                    self.dispatch(slot, request);
                }
            }
            Err(err) => {
                let read_start = conn.read_start;
                let (class, response) = match err {
                    HttpError::PayloadTooLarge => {
                        Metrics::global().incr("http.rejected_oversize", 1);
                        ("malformed", routes::error_response(413, "request body too large"))
                    }
                    HttpError::HeadersTooLarge => {
                        Metrics::global().incr("http.rejected_oversize", 1);
                        ("malformed", routes::error_response(431, "request head too large"))
                    }
                    HttpError::BadRequest(message) => {
                        ("malformed", routes::error_response(400, &message))
                    }
                    HttpError::Closed | HttpError::Io(_) => {
                        self.close(slot);
                        return;
                    }
                };
                // No parsed request line to name the trace — rejects
                // still get one so they show up in the debug ring.
                let reject_trace = self.state.begin_trace("-", "-", read_start);
                if let Some(t) = &reject_trace {
                    t.leaf("read_parse", "", read_start.elapsed());
                    t.set_route(class);
                    t.set_status(response.status);
                }
                if let Some(c) = self.conns[slot].as_mut() {
                    c.trace = reject_trace;
                }
                self.state.count_request();
                self.state.account_response(class, response.status, Duration::ZERO);
                self.respond(slot, response, false);
            }
        }
    }

    /// Hands a parsed request to the handler pool; the job routes,
    /// accounts, and pushes a [`Completion`] the loop writes back.
    fn dispatch(&mut self, slot: usize, request: http::Request) {
        let inflight_deadline =
            Instant::now() + self.state.config.request_deadline + INFLIGHT_GRACE;
        let (job_token, request_trace) = {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            conn.state = ConnState::InFlight;
            conn.deadline = inflight_deadline;
            (token(slot, conn.generation), conn.trace.clone())
        };
        if let Some(t) = &request_trace {
            t.mark_dispatched();
        }
        let state = Arc::clone(&self.state);
        let completions = Arc::clone(&self.completions);
        let wake = Arc::clone(&self.wake);
        let submitted = self.handlers.submit(move || {
            let started = Instant::now();
            if let Some(t) = &request_trace {
                t.note_queue_wait();
            }
            let cancel = CancelToken::with_budget(state.config.request_deadline);
            let client_keep_alive = request.keep_alive;
            let (class, response) = {
                let _tl = trace::enter(request_trace.clone());
                let _handle_span = request_trace.as_ref().map(|t| t.stage("handle"));
                routes::handle(&state, &request, &cancel)
            };
            if let Some(t) = &request_trace {
                t.set_route(class);
                t.set_status(response.status);
            }
            state.account_response(class, response.status, started.elapsed());
            completions
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push(Completion { token: job_token, response, client_keep_alive });
            wake.wake();
        });
        if submitted.is_err() {
            // The handler pool only refuses during the final drain.
            self.state.account_response("shed", 503, Duration::ZERO);
            if let Some(t) = self.conns[slot].as_ref().and_then(|c| c.trace.as_ref()) {
                t.set_route("shed");
                t.set_status(503);
            }
            self.respond(slot, routes::shed_response("server is draining"), false);
        }
    }

    /// Routes finished handler jobs back to their connections.
    fn deliver_completions(&mut self, draining: bool) {
        let pending: Vec<Completion> = {
            let mut queue = self.completions.lock().unwrap_or_else(|p| p.into_inner());
            std::mem::take(&mut *queue)
        };
        for done in pending {
            let (slot, generation) = untoken(done.token);
            let served = match self.conns.get(slot).and_then(Option::as_ref) {
                Some(conn) if conn.generation == generation && conn.state == ConnState::InFlight => {
                    conn.served
                }
                // The connection this answered was reaped (and the slot
                // possibly reused): drop the response.
                _ => continue,
            };
            let keep_alive = done.client_keep_alive
                && served + 1 < MAX_REQUESTS_PER_CONNECTION
                && !draining
                && !self.state.shutdown.is_cancelled();
            self.respond(slot, done.response, keep_alive);
        }
    }

    /// Serializes `response` and starts (or finishes) writing it.
    fn respond(&mut self, slot: usize, response: Response, keep_alive: bool) {
        let write_deadline = Instant::now() + self.header_deadline;
        {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            let response = match &conn.trace {
                Some(t) => response.with_header("X-Trace-Id", &t.id_text()),
                None => response,
            };
            conn.write_started = Instant::now();
            let mut bytes = Vec::with_capacity(response.body.len() + 256);
            // Writing into a Vec cannot fail.
            let _ = response.write_to(&mut bytes, keep_alive);
            conn.out = bytes;
            conn.written = 0;
            conn.keep_alive_after_write = keep_alive;
            conn.state = ConnState::Writing;
            conn.deadline = write_deadline;
        }
        self.try_write(slot);
    }

    /// Writes until done, `WouldBlock` (POLLOUT resumes), or error.
    fn try_write(&mut self, slot: usize) {
        let progress_window = self.header_deadline;
        loop {
            let Some(conn) = self.conns[slot].as_mut() else { return };
            if conn.written >= conn.out.len() {
                self.finish_write(slot);
                return;
            }
            match conn.stream.write(&conn.out[conn.written..]) {
                Ok(0) => {
                    self.close(slot);
                    return;
                }
                Ok(n) => {
                    conn.written += n;
                    // Progress resets the slow-reader deadline.
                    conn.deadline = Instant::now() + progress_window;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close(slot);
                    return;
                }
            }
        }
    }

    /// After a fully flushed response: close, or re-arm for the next
    /// keep-alive request (which may already be pipelined in `buf`).
    fn finish_write(&mut self, slot: usize) {
        let idle_deadline = Instant::now() + KEEP_ALIVE_IDLE.min(self.header_deadline);
        if let Some(conn) = self.conns[slot].as_mut() {
            if let Some(t) = conn.trace.take() {
                t.leaf("write", "", conn.write_started.elapsed());
                t.finish(&self.state.traces);
            }
        }
        let keep_alive = match self.conns[slot].as_mut() {
            Some(conn) if conn.keep_alive_after_write => {
                conn.served += 1;
                conn.out.clear();
                conn.written = 0;
                conn.state = ConnState::Reading;
                conn.deadline = idle_deadline;
                // The next request's trace clock starts now: everything
                // from here until its bytes parse is its read window.
                conn.read_start = Instant::now();
                true
            }
            Some(_) => false,
            None => return,
        };
        if !keep_alive {
            self.close(slot);
            return;
        }
        Metrics::global().incr("http.keepalive_reuses", 1);
        self.advance_parse(slot);
    }

    /// Closes every connection whose deadline has passed, counting why.
    fn reap_expired(&mut self) {
        let now = Instant::now();
        for slot in 0..self.conns.len() {
            let reason = match self.conns[slot].as_ref() {
                Some(conn) if now >= conn.deadline => match conn.state {
                    ConnState::Reading if conn.buf.is_empty() => "http.reaped_idle",
                    ConnState::Reading => "http.reaped_slowloris",
                    ConnState::InFlight => "http.reaped_inflight",
                    ConnState::Writing => "http.reaped_slow_reader",
                },
                _ => continue,
            };
            Metrics::global().incr(reason, 1);
            self.close(slot);
        }
    }

    /// Drain step one: every connection still reading gets no more
    /// bytes in — idle keep-alive and mid-header clients close now.
    fn close_all_reading(&mut self) -> usize {
        let mut closed = 0;
        for slot in 0..self.conns.len() {
            if matches!(self.conns[slot].as_ref(), Some(c) if c.state == ConnState::Reading) {
                self.close(slot);
                closed += 1;
            }
        }
        closed
    }

    /// Drain deadline passed: force-close whatever is left.
    fn close_everything(&mut self) -> usize {
        let mut closed = 0;
        for slot in 0..self.conns.len() {
            if self.conns[slot].is_some() {
                self.close(slot);
                closed += 1;
            }
        }
        closed
    }
}
