//! End-to-end tests for the `socnet-serve` HTTP service: real sockets,
//! real threads, real drain.
//!
//! Every test boots its own server on a free loopback port and talks to
//! it with a bare `TcpStream` client, so the whole stack — accept loop,
//! request parser, router, registry, property cache, compute pool,
//! graceful drain — is exercised exactly as a curl user would.
//!
//! The tests serialize on a process-wide lock: the SIGTERM flag the
//! accept loop polls is a process-wide atomic, and `Server::bind`
//! clears it.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use socnet_runner::json;
use socnet_serve::{AppState, ServeSummary, Server, ServerConfig};

/// Serializes the tests (see module docs).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A booted server plus everything a test needs to talk to and stop it.
struct TestServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: socnet_runner::CancelToken,
    thread: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
    out_dir: std::path::PathBuf,
}

impl TestServer {
    fn boot(tag: &str, panic_injection: bool) -> TestServer {
        Self::boot_with(tag, |config| config.panic_injection = panic_injection)
    }

    /// Boots with the standard test config after letting the caller
    /// tweak it (e.g. to set a memory budget).
    fn boot_with(tag: &str, configure: impl FnOnce(&mut ServerConfig)) -> TestServer {
        let out_dir =
            std::env::temp_dir().join(format!("socnet-serve-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            ..ServerConfig::default()
        };
        configure(&mut config);
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, state, shutdown, thread, out_dir }
    }

    /// Cancels the shutdown handle and waits for the graceful drain.
    /// Returns the summary and the artifact directory (the caller
    /// inspects and then deletes it).
    fn stop(self) -> (ServeSummary, std::path::PathBuf) {
        self.shutdown.cancel();
        let summary = self.thread.join().expect("server thread").expect("drain");
        (summary, self.out_dir)
    }
}

/// One HTTP round-trip; returns (status, raw headers, body).
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    read_response(stream)
}

/// Sends raw bytes (for malformed requests) and reads the response.
fn raw_request(addr: SocketAddr, bytes: &[u8]) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(bytes).expect("send");
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    (status, head, body)
}

#[test]
fn every_endpoint_answers_and_the_drain_writes_artifacts() {
    let _guard = lock();
    let srv = TestServer::boot("endpoints", false);
    let addr = srv.addr;

    // JSON endpoints: every body must be a valid JSON document.
    let json_routes: &[(&str, &str)] = &[
        ("GET", "/healthz"),
        ("GET", "/datasets"),
        ("POST", "/graphs/Rice-grad/load"),
        ("GET", "/graphs/Rice-grad/mixing?eps=0.25"),
        ("GET", "/graphs/Rice-grad/mixing?eps=0.25&sources=5&max_walk=50"),
        ("GET", "/graphs/Rice-grad/coreness/0"),
        ("GET", "/graphs/Rice-grad/expansion?root=0&hops=4"),
        ("POST", "/graphs/Rice-grad/gatekeeper/admit?controller=0&sybils=0&distributors=5&walk=5"),
        ("POST", "/graphs/Rice-grad/evict"),
    ];
    for (method, path) in json_routes {
        let (status, _, body) = request(addr, method, path);
        assert_eq!(status, 200, "{method} {path} -> {body}");
        assert!(json::is_valid(&body), "{method} {path} returned invalid JSON: {body}");
    }

    // The metrics endpoint is text, and non-empty.
    let (status, head, body) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain"));
    assert!(!body.trim().is_empty());

    // Error mapping: unknown dataset 404, unknown route 404, bad
    // parameter 400, wrong method 405, malformed request line 400 —
    // and every error body is still valid JSON.
    for (expected, method, path) in [
        (404u16, "GET", "/graphs/NoSuchDataset/coreness/0"),
        (404, "GET", "/no/such/route"),
        (400, "GET", "/graphs/Rice-grad/mixing?eps=0.9"),
        (400, "GET", "/graphs/Rice-grad/coreness/notanumber"),
        (400, "GET", "/graphs/Rice-grad/mixing?scale=-1"),
        (405, "POST", "/healthz"),
        (405, "GET", "/graphs/Rice-grad/load"),
    ] {
        let (status, _, body) = request(addr, method, path);
        assert_eq!(status, expected, "{method} {path} -> {body}");
        assert!(json::is_valid(&body), "{method} {path} error body invalid: {body}");
    }
    let (status, _, body) = raw_request(addr, b"GARBAGE\r\n\r\n");
    assert_eq!(status, 400, "malformed request line must be a 400, got {body}");

    let (summary, out_dir) = srv.stop();
    assert!(summary.requests >= json_routes.len() as u64);
    assert!(summary.manifest_path.ends_with("run.json"));
    let manifest = std::fs::read_to_string(&summary.manifest_path).expect("manifest written");
    assert!(json::is_valid(&manifest), "run.json invalid: {manifest}");
    assert!(manifest.contains("\"name\":\"serve\""));
    let metrics = std::fs::read_to_string(&summary.metrics_path).expect("metrics written");
    assert!(json::is_valid(&metrics), "metrics snapshot invalid: {metrics}");
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn warm_queries_hit_the_cache_and_are_byte_identical_across_connections() {
    let _guard = lock();
    let srv = TestServer::boot("warm", false);
    let addr = srv.addr;
    let path = "/graphs/Rice-grad/mixing?eps=0.25";

    // Cold pass populates the registry and the spectrum cache entry.
    let (status, head, cold_body) = request(addr, "GET", path);
    assert_eq!(status, 200, "{cold_body}");
    assert!(head.contains("X-Cache: miss"), "cold response must be a miss: {head}");
    let misses_after_cold = srv.state.cache.stats().misses;
    assert!(misses_after_cold >= 1);

    // Warm pass: four concurrent connections issue the identical query.
    // All must hit the cache and return byte-for-byte the cold body.
    let results: Vec<(u16, String, String)> = std::thread::scope(|scope| {
        let handles: Vec<_> =
            (0..4).map(|_| scope.spawn(move || request(addr, "GET", path))).collect();
        handles.into_iter().map(|h| h.join().expect("client thread")).collect()
    });
    for (status, head, body) in &results {
        assert_eq!(*status, 200);
        assert!(head.contains("X-Cache: hit"), "warm response must be a hit: {head}");
        assert_eq!(body, &cold_body, "identical queries must return identical bytes");
    }
    let stats = srv.state.cache.stats();
    assert_eq!(stats.misses, misses_after_cold, "warm queries must not recompute");
    assert!(stats.hits >= 4, "expected at least 4 cache hits, saw {}", stats.hits);

    // The cache's own cost accounting must show the warm path is at
    // least an order of magnitude cheaper than recomputing: the resident
    // spectrum entry records its compute cost, which dwarfs a hit (a
    // map lookup + Arc clone). Covered numerically by the cache unit
    // tests; here we assert the recorded cost is real (non-zero) while
    // hits left the miss counter untouched.
    assert!(stats.entries >= 1);
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

/// Reads exactly one Content-Length-framed response from a stream that
/// stays open (keep-alive), returning (status, head, body).
fn read_framed_response(reader: &mut std::io::BufReader<TcpStream>) -> (u16, String, String) {
    use std::io::BufRead;
    let mut head = String::new();
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read header line");
        if line == "\r\n" || line.is_empty() {
            break;
        }
        head.push_str(&line);
    }
    let status: u16 = head
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response head: {head:?}"));
    let length: usize = head
        .lines()
        .find_map(|l| l.strip_prefix("Content-Length: "))
        .and_then(|v| v.trim().parse().ok())
        .expect("Content-Length header");
    let mut body = vec![0u8; length];
    reader.read_exact(&mut body).expect("read body");
    (status, head, String::from_utf8(body).expect("utf8 body"))
}

#[test]
fn keep_alive_serves_many_requests_on_one_connection() {
    let _guard = lock();
    let srv = TestServer::boot("keepalive", false);

    let stream = TcpStream::connect(srv.addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    let mut reader = std::io::BufReader::new(stream);

    // Three requests down one socket; each response must advertise
    // reuse and arrive on the same connection.
    let paths = ["/healthz", "/graphs/Rice-grad/mixing?eps=0.25", "/healthz"];
    for path in paths {
        write!(writer, "GET {path} HTTP/1.1\r\nHost: t\r\nConnection: keep-alive\r\n\r\n")
            .expect("send");
        let (status, head, body) = read_framed_response(&mut reader);
        assert_eq!(status, 200, "{path} -> {body}");
        assert!(head.contains("Connection: keep-alive"), "{path} must keep the socket: {head}");
        assert!(json::is_valid(&body), "{path} body invalid: {body}");
    }

    // A request without the opt-in closes the connection after the
    // response, exactly like the one-shot clients elsewhere expect.
    write!(writer, "GET /healthz HTTP/1.1\r\nHost: t\r\n\r\n").expect("send");
    let (status, head, _) = read_framed_response(&mut reader);
    assert_eq!(status, 200);
    assert!(head.contains("Connection: close"), "{head}");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("server closes");
    assert!(rest.is_empty(), "no bytes after the final response");

    let (summary, out_dir) = srv.stop();
    assert!(summary.requests >= 4, "each pipelined request counts: {}", summary.requests);
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn evict_resets_the_resident_byte_gauges() {
    let _guard = lock();
    let srv = TestServer::boot("gauges", false);
    let addr = srv.addr;

    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25");
    assert_eq!(status, 200, "{body}");
    let metrics = socnet_runner::Metrics::global();
    let registry_gauge = metrics.gauge("registry.resident_bytes").unwrap_or(0.0);
    assert_eq!(registry_gauge, srv.state.registry.resident_bytes() as f64);
    assert!(registry_gauge > 0.0, "a resident graph must be visible in the gauge");
    assert!(metrics.gauge("cache.resident_bytes").unwrap_or(0.0) > 0.0);

    // Evicting the graph (and its cached properties) must leave the
    // gauges telling the truth immediately — a metrics scrape right
    // after the evict may not report the freed bytes as still resident.
    let (status, _, body) = request(addr, "POST", "/graphs/Rice-grad/evict");
    assert_eq!(status, 200, "{body}");
    assert_eq!(
        metrics.gauge("registry.resident_bytes").unwrap_or(f64::NAN),
        0.0,
        "registry gauge must drop with the eviction"
    );
    assert_eq!(
        metrics.gauge("cache.resident_bytes").unwrap_or(f64::NAN),
        srv.state.cache.stats().resident_bytes as f64,
        "cache gauge must match the cache's own accounting"
    );

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn injected_panic_poisons_only_its_entry_and_the_server_keeps_answering() {
    let _guard = lock();
    let srv = TestServer::boot("poison", true);
    let addr = srv.addr;

    // The panic hook only fires on the poisoned key, which is distinct
    // from the normal spectrum key — so the healthy entry is untouched.
    let boom = "/graphs/Rice-grad/mixing?eps=0.25&__panic=1";
    let (status, head, body) = request(addr, "GET", boom);
    assert_eq!(status, 500, "injected panic must map to a 500: {body}");
    assert!(head.contains("X-Cache: poisoned"), "{head}");
    assert!(json::is_valid(&body));
    assert!(body.contains("\"poisoned\":true"), "{body}");
    assert!(body.contains("injected panic"), "the panic payload names the cause: {body}");

    // Poisoning is sticky: the same query keeps failing fast.
    let (status, _, _) = request(addr, "GET", boom);
    assert_eq!(status, 500);
    assert_eq!(srv.state.cache.stats().poisoned, 1, "exactly one poisoned entry");

    // Every other query — including the *same* route without the hook —
    // still works.
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25");
    assert_eq!(status, 200, "healthy mixing query failed after poisoning: {body}");
    let (status, _, _) = request(addr, "GET", "/graphs/Rice-grad/coreness/0");
    assert_eq!(status, 200);
    let (status, _, _) = request(addr, "GET", "/healthz");
    assert_eq!(status, 200);

    // Evicting the graph clears the poisoned entry with the rest of its
    // cached properties — eviction is the operator's healing move.
    let (status, _, body) = request(addr, "POST", "/graphs/Rice-grad/evict");
    assert_eq!(status, 200);
    assert!(body.contains("\"evicted\":true"), "{body}");
    assert_eq!(srv.state.cache.stats().poisoned, 0, "evict must clear the poisoned entry");

    let (summary, out_dir) = srv.stop();
    assert!(summary.requests >= 6);
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn datasets_pins_the_budget_and_per_shard_byte_schema() {
    let _guard = lock();
    let srv = TestServer::boot("govschema", false);
    let addr = srv.addr;

    // Load one graph so the byte fields are non-trivial.
    let (status, _, body) = request(addr, "POST", "/graphs/Rice-grad/load");
    assert_eq!(status, 200, "{body}");

    let (status, _, body) = request(addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    assert!(json::is_valid(&body), "{body}");

    // Schema pin: the governance fields follow resident_bytes in a
    // fixed order, so scrapers can rely on byte offsets staying stable.
    let mut at = 0usize;
    for field in ["\"resident_bytes\":", "\"budget_bytes\":", "\"governed_bytes\":", "\"shard_bytes\":["]
    {
        let pos = body[at..]
            .find(field)
            .unwrap_or_else(|| panic!("field {field} missing or out of order in {body}"));
        at += pos + field.len();
    }

    // An ungoverned server reports a zero budget, and governed_bytes
    // covers at least the resident graph (it also counts the cache,
    // live overlays, and the trace ring, so it only grows from there).
    assert!(body.contains("\"budget_bytes\":0"), "{body}");
    let tail = &body[body.find("\"governed_bytes\":").expect("governed_bytes field")
        + "\"governed_bytes\":".len()..];
    let governed: u64 = tail[..tail.find(',').expect("comma")].parse().expect("byte count");
    assert!(
        governed >= srv.state.registry.resident_bytes() as u64,
        "governed_bytes {governed} must cover the resident graph"
    );

    // The per-shard breakdown has exactly SHARD_COUNT entries and sums
    // to the registry's own resident-byte figure.
    let start = body.find("\"shard_bytes\":[").expect("shard_bytes array") + "\"shard_bytes\":[".len();
    let end = start + body[start..].find(']').expect("closing bracket");
    let shards: Vec<u64> =
        body[start..end].split(',').map(|s| s.trim().parse().expect("shard byte count")).collect();
    assert_eq!(shards.len(), socnet_serve::SHARD_COUNT);
    assert_eq!(shards.iter().sum::<u64>(), srv.state.registry.resident_bytes() as u64);

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn governed_server_reclaims_under_pressure_and_reloads_on_demand() {
    let _guard = lock();

    // Size the budget in the server's own accounting units: one graph
    // plus half a graph of slack, so a second distinct dataset cannot
    // be co-resident and must evict the first (rung 3), while cached
    // property bodies get squeezed first (rung 1).
    let rice = socnet_gen::Dataset::ALL
        .iter()
        .copied()
        .find(|d| d.name() == "Rice-grad")
        .expect("Rice-grad dataset exists");
    let probe = socnet_serve::GraphRegistry::new();
    probe
        .get_or_load(
            &socnet_serve::GraphKey::new(rice, 0.05, 42),
            &socnet_runner::CancelToken::new(),
        )
        .expect("probe load");
    let bytes_per_graph = probe.resident_bytes();
    drop(probe);
    assert!(bytes_per_graph > 2048, "probe graph too small to govern meaningfully");
    let budget = bytes_per_graph + bytes_per_graph / 2;

    let srv = TestServer::boot_with("governed", |config| config.mem_budget = Some(budget));
    let addr = srv.addr;

    // Two distinct seeds are two distinct graphs in the registry.
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25&seed=1");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25&seed=2");
    assert_eq!(status, 200, "{body}");

    // The invariant holds after every request, without ever counting a
    // violation, and the ladder fired bottom-up: cheap cache bodies
    // (rung 1) before any graph eviction (rung 3).
    let resident = srv.state.accountants().resident_bytes();
    assert!(resident <= budget, "resident {resident} exceeds budget {budget}");
    assert_eq!(srv.state.govern.violations(), 0);
    let rungs = srv.state.govern.rung_counts();
    assert!(rungs[0] >= 1, "cache bodies must be squeezed first: {rungs:?}");
    assert!(rungs[2] >= 1, "the second graph must evict the first: {rungs:?}");

    // The budget and the reclaims are visible on the metrics page.
    let (status, _, metrics) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(metrics.contains(&format!("govern_budget_bytes {budget}")), "{metrics}");
    assert!(metrics.contains("govern_reclaims_total{rung=\"1\"}"), "{metrics}");
    assert!(metrics.contains("govern_reclaims_total{rung=\"3\"}"), "{metrics}");

    // /datasets reports the live budget.
    let (_, _, body) = request(addr, "GET", "/datasets");
    assert!(body.contains(&format!("\"budget_bytes\":{budget}")), "{body}");

    // Eviction is not banishment: the reclaimed graph reloads on demand.
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/coreness/0?seed=1");
    assert_eq!(status, 200, "an evicted dataset must reload on demand: {body}");
    let resident = srv.state.accountants().resident_bytes();
    assert!(resident <= budget, "resident {resident} exceeds budget {budget} after reload");

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}
