//! Live-graph integration tests: real servers mutating real graphs
//! over HTTP, with the WAL on a real disk.
//!
//! The durability story is end-to-end: a delta batch that was acked
//! (the server answered 200 after the WAL fsync) must survive any
//! stop — graceful or not — and be visible, byte-identically, after a
//! restart over the same store directory. An unclean stop is simulated
//! by *leaking* the first server (its thread keeps running, but no
//! drain and therefore no compaction ever happens), which leaves the
//! store exactly as `kill -9` between the fsync and the compaction
//! would: a WAL full of acked frames and no live snapshot. Damage to
//! the WAL tail must trim to the acked prefix; deeper damage must
//! quarantine the whole file — either way the server boots, never
//! panics.
//!
//! Tests serialize on a process-wide lock for the same reason
//! `tests/server.rs` does: the SIGTERM flag is a process-wide atomic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use socnet_serve::{AppState, ServeSummary, Server, ServerConfig};
use socnet_store::StoreDir;

/// Serializes the tests (see module docs).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct TestServer {
    addr: SocketAddr,
    #[allow(dead_code)]
    state: Arc<AppState>,
    shutdown: socnet_runner::CancelToken,
    thread: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
    out_dir: PathBuf,
}

impl TestServer {
    /// Boots a server wired to `store_dir` with a small rebuild
    /// threshold so tests can cross it with a handful of ops.
    fn boot(tag: &str, store_dir: &Path) -> TestServer {
        let out_dir =
            std::env::temp_dir().join(format!("socnet-live-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            store_dir: Some(store_dir.to_path_buf()),
            live_rebuild_threshold: 8,
            ..ServerConfig::default()
        };
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, state, shutdown, thread, out_dir }
    }

    /// Boots under a memory budget with a huge rebuild threshold, so
    /// the live overlay never folds into the CSR and stays eligible for
    /// the governor's rung-2 demotion.
    fn boot_governed(tag: &str, store_dir: &Path, budget: usize) -> TestServer {
        let out_dir =
            std::env::temp_dir().join(format!("socnet-live-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            store_dir: Some(store_dir.to_path_buf()),
            live_rebuild_threshold: 1_000_000,
            mem_budget: Some(budget),
            ..ServerConfig::default()
        };
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, state, shutdown, thread, out_dir }
    }

    fn stop(self) -> (ServeSummary, PathBuf) {
        self.shutdown.cancel();
        let summary = self.thread.join().expect("server thread").expect("drain");
        (summary, self.out_dir)
    }

    /// The unclean stop: no drain, no compaction, no WAL reset. The
    /// server thread leaks (it idles until the test process exits) —
    /// from the store directory's point of view this is exactly a
    /// `kill -9` after the last acked fsync.
    fn abandon(self) {
        std::mem::forget(self);
    }
}

fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    read_response(stream)
}

/// A POST whose body is the delta payload (`Content-Length` framed).
fn post(addr: SocketAddr, path: &str, body: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(
        stream,
        "POST {path} HTTP/1.1\r\nHost: test\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send");
    read_response(stream)
}

fn read_response(mut stream: TcpStream) -> (u16, String, String) {
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    (status, head, body)
}

/// A per-test store directory, wiped before use.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("socnet-live-dir-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn wal_path(dir: &Path) -> PathBuf {
    StoreDir::new(dir).wal_path("live")
}

/// Asserts `fields` appear in `haystack` in order — the schema pin.
fn assert_field_order(haystack: &str, fields: &[&str]) {
    let mut at = 0;
    for field in fields {
        let needle = format!("\"{field}\":");
        match haystack[at..].find(&needle) {
            Some(i) => at += i + needle.len(),
            None => panic!("field {field:?} missing or out of order after byte {at} in {haystack}"),
        }
    }
}

const DELTA: &str = "/datasets/Rice-grad/delta";
const CORENESS: &str = "/graphs/Rice-grad/coreness/0";
const MIXING: &str = "/graphs/Rice-grad/mixing?eps=0.25";
const LABEL: &str = "Rice-grad@0.05#42";

#[test]
fn datasets_schema_pins_version_and_staleness_fields() {
    let _guard = lock();
    let dir = store_dir("schema");
    let srv = TestServer::boot("schema", &dir);

    // Frozen server: every row carries version 0 / staleness 0 and the
    // top-level live array is empty. The field order is the pinned
    // public schema — extending it is fine, reordering or dropping a
    // field is a breaking change this test must catch.
    let (status, _, body) = request(srv.addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    assert!(body.starts_with("{\"datasets\":["), "top-level shape changed: {body}");
    assert_field_order(
        &body,
        &[
            "name",
            "paper_nodes",
            "paper_edges",
            "paper_slem",
            "model",
            "size_class",
            "resident",
            "version",
            "staleness",
        ],
    );
    assert_field_order(
        &body,
        &["datasets", "remembered", "live", "resident_bytes", "budget_bytes", "governed_bytes", "shard_bytes"],
    );
    assert!(
        body.contains("\"budget_bytes\":0"),
        "an ungoverned server reports a zero budget: {body}"
    );
    assert!(body.contains("\"live\":[]"), "no label is live before any delta: {body}");
    let row_at = body.find("\"name\":\"Rice-grad\"").expect("Rice-grad row");
    assert!(
        body[row_at..].contains("\"version\":0,\"staleness\":0"),
        "frozen rows report version 0: {body}"
    );

    // One acked batch flips the row and populates the live array.
    let (status, _, ack) = post(srv.addr, DELTA, "+ 0 1\n+ 1 2\n");
    assert_eq!(status, 200, "{ack}");
    let (status, _, body) = request(srv.addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    let row_at = body.find("\"name\":\"Rice-grad\"").expect("Rice-grad row");
    assert!(
        body[row_at..].contains("\"version\":1,\"staleness\":1"),
        "mutated row reports its head version: {body}"
    );
    assert!(body.contains(&format!("\"label\":\"{LABEL}\",\"version\":1,\"csr_version\":0")));

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn delta_round_trip_serves_live_strict_and_bounded_stale_queries() {
    let _guard = lock();
    let dir = store_dir("roundtrip");
    let srv = TestServer::boot("roundtrip", &dir);

    let (status, _, ack) = post(srv.addr, DELTA, "+ 0 5\n+ 0 6\n+ 0 7\n");
    assert_eq!(status, 200, "{ack}");
    assert!(ack.contains("\"version\":1"), "{ack}");
    assert!(ack.contains("\"durable\":true"), "acks must be WAL-backed here: {ack}");
    assert!(ack.contains("\"inserted\":"), "{ack}");

    // A batch naming an id past the node-growth cap bounces whole with
    // 400 — never acked, never logged, version unchanged.
    let (status, _, err) = post(srv.addr, DELTA, "+ 0 4294967295\n");
    assert_eq!(status, 400, "{err}");
    assert!(err.contains("growth cap"), "{err}");

    // Live coreness answers from the maintained decomposition: exact
    // at head, stamped with the head version, never cached.
    let (status, head, body) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-Cache: live"), "{head}");
    assert!(head.contains("X-Graph-Version: 1"), "{head}");
    assert!(head.contains("X-Staleness: 0"), "{head}");
    assert!(body.contains("\"graph_version\":1"), "{body}");

    // A strict expensive query forces the rebuild to head…
    let (status, head, body) = request(srv.addr, "GET", MIXING);
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-Graph-Version: 1"), "{head}");
    assert!(head.contains("X-Staleness: 0"), "strict queries never serve stale: {head}");
    assert!(body.contains("\"graph_version\":1"), "{body}");

    // …after which a bounded-stale query may answer from the (now
    // fresh) CSR even as new deltas land on top of it.
    let (status, _, ack) = post(srv.addr, DELTA, "+ 1 5\n");
    assert_eq!(status, 200, "{ack}");
    let stale_path = format!("{MIXING}&max_stale=10");
    let (status, head, body) = request(srv.addr, "GET", &stale_path);
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-Graph-Version: 1"), "bounded query answers at the old stamp: {head}");
    assert!(head.contains("X-Staleness: 1"), "{head}");
    assert!(body.contains("\"graph_version\":1"), "{body}");

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn acked_deltas_survive_an_unclean_stop_and_a_graceful_one() {
    let _guard = lock();
    let dir = store_dir("crash");

    // Generation A: two acked batches, then the "crash" — no drain, no
    // compaction; the store holds only the WAL.
    let srv = TestServer::boot("crash-a", &dir);
    let (status, _, ack) = post(srv.addr, DELTA, "+ 0 9\n+ 0 10\n");
    assert_eq!(status, 200, "{ack}");
    let (status, _, ack) = post(srv.addr, DELTA, "- 0 9\n+ 2 9\n");
    assert_eq!(status, 200, "{ack}");
    assert!(ack.contains("\"version\":2"), "{ack}");
    let (status, _, pre) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{pre}");
    srv.abandon();
    assert!(wal_path(&dir).exists(), "acked frames must be on disk before the crash");

    // Generation B replays the WAL at boot: same head version, and the
    // live coreness answer is byte-identical to the pre-crash one.
    let srv = TestServer::boot("crash-b", &dir);
    let (status, _, body) = request(srv.addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    let row_at = body.find("\"name\":\"Rice-grad\"").expect("row");
    assert!(body[row_at..].contains("\"version\":2"), "replay must reach the acked head: {body}");
    let (status, _, post_crash) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{post_crash}");
    assert_eq!(post_crash, pre, "zero acked deltas may be lost across the crash");

    // B drains gracefully: the WAL folds into the live snapshot, and a
    // third generation must see the same state from the snapshot alone.
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    let srv = TestServer::boot("crash-c", &dir);
    let (status, _, post_compact) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{post_compact}");
    assert_eq!(post_compact, pre, "compaction must preserve the replayed state");
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn torn_wal_tail_keeps_the_acked_prefix_and_never_panics() {
    let _guard = lock();
    let dir = store_dir("torn");

    let srv = TestServer::boot("torn-a", &dir);
    let (status, _, ack) = post(srv.addr, DELTA, "+ 3 11\n");
    assert_eq!(status, 200, "{ack}");
    let (status, _, pre) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{pre}");
    srv.abandon();

    // A crash mid-append leaves a half-written frame after the acked
    // one. Boot must trim to the acked prefix, set the tail aside, and
    // keep serving — never panic, never lose the acked batch.
    let wal = wal_path(&dir);
    let mut bytes = std::fs::read(&wal).expect("read wal");
    bytes.extend_from_slice(b"F deadbeef 999\nhalf a fra");
    std::fs::write(&wal, &bytes).expect("tear");

    let srv = TestServer::boot("torn-b", &dir);
    let (status, _, post_torn) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{post_torn}");
    assert_eq!(post_torn, pre, "the acked prefix survives the torn tail");
    let quarantined = wal.with_file_name("live.wal.quarantined");
    assert!(quarantined.exists(), "the torn tail is preserved for forensics");
    // The trimmed log keeps accepting appends.
    let (status, _, ack) = post(srv.addr, DELTA, "+ 4 11\n");
    assert_eq!(status, 200, "{ack}");
    assert!(ack.contains("\"version\":2"), "{ack}");
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn garbage_wal_is_quarantined_whole_and_the_server_boots_cold() {
    let _guard = lock();
    let dir = store_dir("garbage");

    // Not even a magic line: bit rot or an alien writer. The whole
    // file is set aside; the server boots frozen (version 0) and a
    // fresh WAL accepts new batches.
    std::fs::create_dir_all(&dir).expect("mkdir");
    std::fs::write(wal_path(&dir), b"this is not a wal\n").expect("write garbage");

    let srv = TestServer::boot("garbage", &dir);
    let (status, _, body) = request(srv.addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"live\":[]"), "nothing replays from garbage: {body}");
    let quarantined = wal_path(&dir).with_file_name("live.wal.quarantined");
    assert!(quarantined.exists(), "garbage preserved for forensics");

    let (status, _, ack) = post(srv.addr, DELTA, "+ 0 2\n");
    assert_eq!(status, 200, "a fresh WAL must accept appends: {ack}");
    assert!(ack.contains("\"version\":1"), "{ack}");
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn reclaim_triggered_squeeze_keeps_the_store_gc_invariants() {
    let _guard = lock();
    let dir = store_dir("squeeze");

    // Budget: one graph plus half a graph of slack. The materialized
    // live state (base-CSR clone + overlay + coreness arrays) costs
    // about another graph, so the first delta's post-dispatch enforce
    // must cross the budget — and rung 2 (demote the overlay) is the
    // only rung that can free enough, since nothing else is cached yet.
    let rice = socnet_gen::Dataset::ALL
        .iter()
        .copied()
        .find(|d| d.name() == "Rice-grad")
        .expect("Rice-grad dataset exists");
    let probe = socnet_serve::GraphRegistry::new();
    probe
        .get_or_load(
            &socnet_serve::GraphKey::new(rice, 0.05, 42),
            &socnet_runner::CancelToken::new(),
        )
        .expect("probe load");
    let bytes_per_graph = probe.resident_bytes();
    drop(probe);
    let budget = bytes_per_graph + bytes_per_graph / 2;

    let srv = TestServer::boot_governed("squeeze-a", &dir, budget);
    let (status, _, ack) = post(srv.addr, DELTA, "+ 0 5\n+ 0 6\n+ 0 7\n");
    assert_eq!(status, 200, "{ack}");
    assert!(ack.contains("\"version\":1"), "{ack}");
    assert!(ack.contains("\"durable\":true"), "{ack}");
    let (status, head, pre) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{pre}");
    assert!(head.contains("X-Graph-Version: 1"), "{head}");

    // The governor demoted the overlay (rung 2) at least once, never
    // evicted the base graph (rung 3), and the invariant held without
    // a recorded violation.
    let rungs = srv.state.govern.rung_counts();
    assert!(rungs[1] >= 1, "the live overlay must be squeezed under pressure: {rungs:?}");
    assert_eq!(rungs[2], 0, "the base graph must never be evicted here: {rungs:?}");
    assert_eq!(srv.state.govern.violations(), 0);
    let resident = srv.state.accountants().resident_bytes();
    assert!(resident <= budget, "resident {resident} exceeds budget {budget}");

    // The squeeze compacted off-drain: snapshot written *before* the
    // WAL reset, so the WAL is never older than its snapshot — the
    // exact ordering `StoreDir::gc`'s safety rule relies on.
    let snap = StoreDir::new(&dir).snapshot_path("live");
    let wal = wal_path(&dir);
    assert!(snap.exists(), "squeeze must leave a durable snapshot");
    assert!(wal.exists(), "squeeze must leave a (reset) WAL");
    let mtime = |p: &Path| std::fs::metadata(p).and_then(|m| m.modified()).expect("mtime");
    assert!(
        mtime(&snap) <= mtime(&wal),
        "the WAL must never be older than the snapshot that covers it"
    );
    srv.abandon();

    // Restart over the same store: the acked version survives the
    // squeeze + crash, byte-identically.
    let srv = TestServer::boot("squeeze-b", &dir);
    let (status, _, body) = request(srv.addr, "GET", "/datasets");
    assert_eq!(status, 200, "{body}");
    let row_at = body.find("\"name\":\"Rice-grad\"").expect("row");
    assert!(body[row_at..].contains("\"version\":1"), "acked head must survive: {body}");
    let (status, _, after) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{after}");
    assert_eq!(after, pre, "the squeezed state must answer byte-identically after restart");
    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();

    // Even a maximally aggressive GC may not prune the WAL ahead of
    // its snapshot — the hard safety rule holds after reclaim-driven
    // compaction exactly as after drain-time compaction.
    let report = StoreDir::new(&dir)
        .gc(&socnet_store::GcPolicy { max_age: None, byte_budget: Some(0), drop_quarantined: true })
        .expect("gc");
    assert!(wal.exists(), "gc must never prune a live WAL at or ahead of its snapshot");
    assert!(
        !report.removed.iter().any(|p| p == &wal),
        "gc removed the WAL: {:?}",
        report.removed
    );
    std::fs::remove_dir_all(dir).ok();
}
