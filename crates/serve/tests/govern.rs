//! Memory-governor integration tests: many client threads competing
//! for a budget that cannot hold everyone's graph at once.
//!
//! The contract under test is the governor's core invariant — the sum
//! of every accountant's resident bytes is at or under the budget
//! after every reclaim round — plus the two liveness properties that
//! make the budget safe to deploy: no deadlock (reclaim runs at the
//! accounting site, so a cycle between the reclaim mutex and any
//! subsystem lock would hang this test), and no banishment (a dataset
//! evicted under pressure reloads on demand the next time a client
//! asks for it).

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use socnet_serve::{AppState, Server, ServerConfig};

/// Serializes the tests (same process-wide SIGTERM flag as
/// `tests/server.rs`).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

fn request(addr: SocketAddr, path: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    write!(stream, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let body = raw.find("\r\n\r\n").map(|i| raw[i + 4..].to_string()).unwrap_or_default();
    (status, body)
}

/// One graph's resident bytes, measured with the registry's own
/// accounting so the budget is sized in server units.
fn bytes_per_graph() -> usize {
    let rice = socnet_gen::Dataset::ALL
        .iter()
        .copied()
        .find(|d| d.name() == "Rice-grad")
        .expect("Rice-grad dataset exists");
    let probe = socnet_serve::GraphRegistry::new();
    probe
        .get_or_load(
            &socnet_serve::GraphKey::new(rice, 0.05, 1),
            &socnet_runner::CancelToken::new(),
        )
        .expect("probe load");
    let bytes = probe.resident_bytes();
    assert!(bytes > 2048, "probe graph too small to govern meaningfully");
    bytes
}

/// Asserts the governor's core invariant plus zero violations — the
/// "after every reclaim round" half of the acceptance criteria.
fn assert_invariant(state: &Arc<AppState>, budget: usize, when: &str) {
    let resident = state.accountants().resident_bytes();
    assert!(resident <= budget, "{when}: resident {resident} exceeds budget {budget}");
    assert_eq!(state.govern.violations(), 0, "{when}: governor recorded a violation");
}

#[test]
fn concurrent_clients_hold_the_invariant_and_reload_evicted_graphs() {
    let _guard = lock();

    // Six distinct datasets (six seeds of the same generator), a
    // budget sized for three of them: at any instant at least half
    // the working set must be evicted, so every round both loads and
    // evicts under contention.
    const CLIENTS: usize = 6;
    const ROUNDS: usize = 4;
    let per_graph = bytes_per_graph();
    let budget = per_graph * (CLIENTS / 2) + per_graph / 2;

    let out_dir =
        std::env::temp_dir().join(format!("socnet-govern-it-{}", std::process::id()));
    std::fs::remove_dir_all(&out_dir).ok();
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_bytes: 16 * 1024 * 1024,
        default_scale: 0.05,
        default_seed: 42,
        out_dir: out_dir.clone(),
        mem_budget: Some(budget),
        ..ServerConfig::default()
    };
    let server = Server::bind(config).expect("bind loopback");
    let addr = server.local_addr();
    let state = server.state();
    let shutdown = server.shutdown_handle();
    let thread = std::thread::spawn(move || server.serve());

    // Every client hammers its own dataset. Each round is a scoped
    // spawn-and-join, so the invariant is checked with no request in
    // flight (every request's post-dispatch enforce has already run),
    // and a failed client surfaces as a panic at the join instead of
    // wedging the other threads.
    for round in 0..ROUNDS {
        let results: Vec<(usize, u16, String)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|client| {
                    scope.spawn(move || {
                        let seed = client + 1;
                        // Alternate a cached property with a cheap
                        // static one, so rung 1 always has bodies to
                        // squeeze before rung 3 reaches for a graph.
                        let path = if round % 2 == 0 {
                            format!("/graphs/Rice-grad/mixing?eps=0.25&seed={seed}")
                        } else {
                            format!("/graphs/Rice-grad/coreness/0?seed={seed}")
                        };
                        let (status, body) = request(addr, &path);
                        (client, status, body)
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("client thread")).collect()
        });
        for (client, status, body) in &results {
            assert_eq!(
                *status, 200,
                "client {client} round {round}: evicted datasets must reload: {body}"
            );
        }
        assert_invariant(&state, budget, &format!("round {round}"));
    }

    // The pressure was real: graphs were evicted (rung 3 fired), yet
    // every request above answered 200 — eviction is not banishment.
    let rungs = state.govern.rung_counts();
    assert!(rungs[2] >= 1, "a half-sized budget must force graph evictions: {rungs:?}");
    assert!(rungs[0] >= 1, "cheap cache bodies must be squeezed before graphs: {rungs:?}");
    assert_invariant(&state, budget, "final");

    // Drain cleanly — a deadlocked reclaim would hang the join.
    shutdown.cancel();
    thread.join().expect("server thread").expect("drain");
    std::fs::remove_dir_all(&out_dir).ok();
}
