//! Overload-robustness tests for the serve front ends: slow clients,
//! oversized requests, connection budgets, and graceful drain under
//! load — against real sockets, exactly as an attacker would drive
//! them.
//!
//! Tests serialize on a process-wide lock (the SIGTERM flag the serve
//! loops poll is a process-wide atomic, and `Server::bind` clears it).

use std::io::{ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use socnet_serve::{Frontend, ServeSummary, Server, ServerConfig};

/// Serializes the tests (see module docs).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// A booted server whose config the test shaped.
struct TestServer {
    addr: SocketAddr,
    shutdown: socnet_runner::CancelToken,
    thread: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
    out_dir: std::path::PathBuf,
}

impl TestServer {
    fn boot(tag: &str, shape: impl FnOnce(&mut ServerConfig)) -> TestServer {
        let out_dir = std::env::temp_dir()
            .join(format!("socnet-serve-overload-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let mut config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            ..ServerConfig::default()
        };
        shape(&mut config);
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, shutdown, thread, out_dir }
    }

    fn stop(self) -> (ServeSummary, std::path::PathBuf) {
        self.shutdown.cancel();
        let summary = self.thread.join().expect("server thread").expect("drain");
        (summary, self.out_dir)
    }
}

/// One tolerant HTTP round-trip: `None` when the server hung up without
/// a response (a deadline kill), `Some(status)` otherwise.
fn try_request(addr: SocketAddr, method: &str, path: &str) -> Option<(u16, String, String)> {
    let mut stream = TcpStream::connect(addr).ok()?;
    stream.set_read_timeout(Some(Duration::from_secs(30))).ok()?;
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").ok()?;
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok()?;
    let status: u16 = raw.split_whitespace().nth(1).and_then(|s| s.parse().ok())?;
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    Some((status, head, body))
}

fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    try_request(addr, method, path).expect("request must get a response")
}

/// How long a connection that sends `prelude` and then goes quiet stays
/// open: returns the wait until the server closes it (EOF), panicking
/// if the socket is still open after `patience`.
fn wait_for_eof(addr: SocketAddr, prelude: &[u8], patience: Duration) -> Duration {
    let start = Instant::now();
    let mut stream = TcpStream::connect(addr).expect("connect");
    if !prelude.is_empty() {
        stream.write_all(prelude).expect("send prelude");
    }
    stream.set_read_timeout(Some(patience)).expect("timeout");
    let mut buf = [0u8; 1024];
    loop {
        match stream.read(&mut buf) {
            Ok(0) => return start.elapsed(),
            Ok(_) => continue, // a response (e.g. an error) precedes the close
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                panic!("server did not close the connection within {patience:?}")
            }
            Err(_) => return start.elapsed(), // RST counts as closed
        }
    }
}

#[test]
fn idle_and_slowloris_connections_are_reaped_while_healthz_keeps_answering() {
    let _guard = lock();
    let srv = TestServer::boot("reap", |c| {
        c.header_deadline = Duration::from_secs(1);
    });
    let addr = srv.addr;
    let patience = Duration::from_secs(10);

    // A client that connects and sends nothing cannot hold a slot: the
    // uniform header-read deadline applies to the *first* request too.
    let idle_wait = wait_for_eof(addr, b"", patience);
    assert!(idle_wait >= Duration::from_millis(300), "reaped suspiciously fast: {idle_wait:?}");

    // A slow-loris client trickling header bytes is reaped on the same
    // absolute deadline — partial progress does not reset it.
    let mut loris = TcpStream::connect(addr).expect("connect");
    loris.write_all(b"GET /healthz HTTP/1.1\r\nX-Drip: ").expect("partial head");
    let reap_start = Instant::now();
    let served_during_attack = {
        let (status, _, _) = request(addr, "GET", "/healthz");
        status
    };
    assert_eq!(served_during_attack, 200, "healthz must answer while the loris hangs");
    loris.set_read_timeout(Some(patience)).expect("timeout");
    let mut sink = Vec::new();
    loris.read_to_end(&mut sink).ok(); // EOF or RST — either way it died
    assert!(
        reap_start.elapsed() < patience,
        "slow-loris connection survived past the header deadline"
    );

    let (summary, out_dir) = srv.stop();
    assert!(summary.requests >= 1);
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn oversized_heads_and_bodies_are_rejected_with_431_and_413() {
    let _guard = lock();
    let srv = TestServer::boot("oversize", |_| {});
    let addr = srv.addr;

    // One header line past MAX_LINE_BYTES: 431, rejected as soon as the
    // bytes prove the request hopeless.
    let big_header = format!(
        "GET /healthz HTTP/1.1\r\nX-Big: {}\r\n\r\n",
        "a".repeat(socnet_serve::http::MAX_LINE_BYTES + 64)
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    // The server may respond and close mid-upload; ignore the send error.
    stream.write_all(big_header.as_bytes()).ok();
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok();
    assert!(raw.starts_with("HTTP/1.1 431"), "expected 431, got {raw:?}");

    // A declared body past MAX_BODY_BYTES: 413 before any body byte.
    let declared = format!(
        "POST /graphs/Rice-grad/gatekeeper/admit HTTP/1.1\r\nContent-Length: {}\r\n\r\n",
        socnet_serve::http::MAX_BODY_BYTES + 1
    );
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    stream.write_all(declared.as_bytes()).expect("send head");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).ok();
    assert!(raw.starts_with("HTTP/1.1 413"), "expected 413, got {raw:?}");

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn connection_budget_sheds_with_retry_after() {
    let _guard = lock();
    let srv = TestServer::boot("budget", |c| {
        c.max_conns = 2;
    });
    let addr = srv.addr;

    // Two held connections fill the budget...
    let held: Vec<TcpStream> =
        (0..2).map(|_| TcpStream::connect(addr).expect("connect")).collect();
    std::thread::sleep(Duration::from_millis(300)); // let the loop accept both
    // ...so the third is shed at accept: 503 + Retry-After written before
    // any request byte, then closed. Probe by reading only — writing a
    // request would race the server's close into an RST.
    let mut shed = TcpStream::connect(addr).expect("connect");
    shed.set_read_timeout(Some(Duration::from_secs(10))).expect("timeout");
    let mut raw = String::new();
    shed.read_to_string(&mut raw).ok();
    assert!(raw.starts_with("HTTP/1.1 503"), "over-budget accept must shed: {raw:?}");
    assert!(raw.contains("Retry-After"), "shed response must carry Retry-After: {raw:?}");
    drop(held);

    // With the budget free again, service resumes.
    std::thread::sleep(Duration::from_millis(200));
    let (status, _, _) = request(addr, "GET", "/healthz");
    assert_eq!(status, 200, "service must recover once the flood is gone");

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn graceful_drain_under_load_completes_in_flight_and_closes_idle() {
    let _guard = lock();
    let store_dir =
        std::env::temp_dir().join(format!("socnet-serve-overload-store-{}", std::process::id()));
    std::fs::remove_dir_all(&store_dir).ok();
    let srv = TestServer::boot("drain", |c| {
        c.store_dir = Some(store_dir.clone());
        c.drain_deadline = Duration::from_secs(5);
    });
    let addr = srv.addr;

    // N in-flight requests (distinct seeds -> distinct compute, so they
    // are genuinely on the pool when the drain starts)...
    let in_flight: Vec<_> = (0..3)
        .map(|i| {
            std::thread::spawn(move || {
                try_request(
                    addr,
                    "GET",
                    &format!("/graphs/Rice-grad/mixing?eps=0.25&sources=8&max_walk=400&seed={i}"),
                )
            })
        })
        .collect();
    // ...plus M idle connections holding slots.
    let idle: Vec<TcpStream> =
        (0..4).map(|_| TcpStream::connect(addr).expect("connect idle")).collect();
    std::thread::sleep(Duration::from_millis(150));

    // SIGTERM-equivalent mid-load.
    let (summary, out_dir) = srv.stop();

    // In-flight requests completed or were deadline-killed — no hangs,
    // and whoever got a response got a well-formed one.
    for handle in in_flight {
        match handle.join().expect("request thread must not panic") {
            Some((status, _, _)) => assert!(
                status == 200 || status == 503 || status == 504,
                "unexpected drain-time status {status}"
            ),
            None => {} // deadline-killed: clean close without a response
        }
    }

    // Idle connections were closed, not left dangling.
    for mut stream in idle {
        stream.set_read_timeout(Some(Duration::from_secs(5))).expect("timeout");
        let mut buf = [0u8; 64];
        match stream.read(&mut buf) {
            Ok(0) | Err(_) => {}
            Ok(n) => panic!("idle connection unexpectedly received {n} bytes"),
        }
    }

    // The drain still flushed the store snapshot and the artifacts.
    assert!(summary.snapshot_path.is_some(), "drain under load must still flush the snapshot");
    assert!(summary.manifest_path.exists(), "run.json must exist");
    assert!(summary.metrics_path.exists(), "metrics snapshot must exist");
    std::fs::remove_dir_all(out_dir).ok();
    std::fs::remove_dir_all(store_dir).ok();
}

#[test]
fn threads_frontend_still_serves_and_reaps_silent_clients() {
    let _guard = lock();
    let srv = TestServer::boot("threads", |c| {
        c.frontend = Frontend::Threads;
        c.header_deadline = Duration::from_secs(1);
    });
    let addr = srv.addr;

    let (status, _, body) = request(addr, "GET", "/healthz");
    assert_eq!(status, 200, "threads frontend must serve: {body}");

    // The uniform header deadline fix applies to the legacy front end
    // too: a silent first request cannot hold its thread forever.
    wait_for_eof(addr, b"", Duration::from_secs(10));

    let (summary, out_dir) = srv.stop();
    assert!(summary.requests >= 1);
    std::fs::remove_dir_all(out_dir).ok();
}
