//! End-to-end tests for request tracing and live telemetry: a real
//! server, a real slow request, and the `/metrics` + `/debug/*`
//! surfaces a curl user would scrape.
//!
//! Tests serialize on a process-wide lock for the same reason
//! `tests/server.rs` does: the SIGTERM flag is a process-wide atomic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

use socnet_runner::{is_valid_prometheus, json};
use socnet_serve::{is_valid_trace_jsonl, AppState, ServeSummary, Server, ServerConfig};

/// Serializes the tests (see module docs).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct TestServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: socnet_runner::CancelToken,
    thread: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
    out_dir: std::path::PathBuf,
}

impl TestServer {
    fn boot(tag: &str) -> TestServer {
        let out_dir =
            std::env::temp_dir().join(format!("socnet-trace-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            // The `__slow_ms` stall shares the `__panic` injection gate.
            panic_injection: true,
            ..ServerConfig::default()
        };
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, state, shutdown, thread, out_dir }
    }

    fn stop(self) -> (ServeSummary, std::path::PathBuf) {
        self.shutdown.cancel();
        let summary = self.thread.join().expect("server thread").expect("drain");
        (summary, self.out_dir)
    }
}

/// One HTTP round-trip; returns (status, raw headers, body).
fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    (status, head, body)
}

/// Pulls `X-Trace-Id: <id>` out of a raw header block.
fn trace_id_of(head: &str) -> String {
    head.lines()
        .find_map(|line| line.strip_prefix("X-Trace-Id: "))
        .unwrap_or_else(|| panic!("response carries no X-Trace-Id: {head}"))
        .trim()
        .to_string()
}

/// Extracts the first `"key":<number>` value from a JSON body. The
/// bodies under test are rendered by our own writer (no whitespace
/// after the colon), so a substring scan is reliable.
fn json_number(body: &str, key: &str) -> f64 {
    let pat = format!("\"{key}\":");
    let at = body.find(&pat).unwrap_or_else(|| panic!("{key} missing from {body}"));
    let rest = &body[at + pat.len()..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == '+'))
        .unwrap_or(rest.len());
    rest[..end].parse().unwrap_or_else(|e| panic!("{key} not a number ({e}): {body}"))
}

#[test]
fn slow_request_surfaces_in_debug_slow_with_a_complete_span_tree() {
    let _guard = lock();
    let srv = TestServer::boot("slow");
    let addr = srv.addr;

    // Warm the graph + caches so the injected stall dominates the
    // traced request's latency.
    let (status, _, body) = request(addr, "POST", "/graphs/Rice-grad/load");
    assert_eq!(status, 200, "{body}");
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25");
    assert_eq!(status, 200, "{body}");

    // The known-slow request: a 150 ms stall injected into the handler.
    let slow_path = "/graphs/Rice-grad/mixing?eps=0.25&__slow_ms=150";
    let started = Instant::now();
    let (status, head, body) = request(addr, "GET", slow_path);
    let client_wall = started.elapsed();
    assert_eq!(status, 200, "{body}");
    assert!(client_wall >= Duration::from_millis(150), "stall did not take effect");
    let id = trace_id_of(&head);

    // The trace is in the ring by id, as a nested span tree.
    let (status, _, tree) = request(addr, "GET", &format!("/debug/trace/{id}"));
    assert_eq!(status, 200, "{tree}");
    assert!(json::is_valid(&tree), "span tree must be valid JSON: {tree}");
    for stage in ["read_parse", "handle", "inject_slow", "write"] {
        assert!(tree.contains(&format!("\"{stage}\"")), "span tree lacks {stage}: {tree}");
    }
    assert!(tree.contains("\"cache:spectrum\""), "cache span missing: {tree}");
    assert!(tree.contains("\"hit\""), "warmed request must report a cache hit: {tree}");

    // The root stages account for the client-observed latency: their
    // sum lands within 10% of what the client measured.
    let sum_ms = json_number(&tree, "root_stage_sum_ms");
    let client_ms = client_wall.as_secs_f64() * 1e3;
    assert!(
        (sum_ms - client_ms).abs() <= 0.10 * client_ms,
        "stage sum {sum_ms:.3} ms vs client {client_ms:.3} ms drifts past 10%: {tree}"
    );

    // /debug/slow ranks it above the fast warm-up traffic.
    let (status, _, slow) = request(addr, "GET", "/debug/slow?threshold_ms=100&n=5");
    assert_eq!(status, 200, "{slow}");
    assert!(json::is_valid(&slow), "{slow}");
    // The stalled request ranks, and so may the cold warm-up compute —
    // but the fast cache-hit traffic (loads, debug reads) must not.
    assert!(slow.contains(&id), "slow listing must contain the stalled trace {id}: {slow}");
    assert!(slow.contains("\"route\":\"mixing\""), "{slow}");
    assert!(
        !slow.contains("\"route\":\"debug\""),
        "sub-threshold requests must not rank as slow: {slow}"
    );

    // An unknown id is a clean 404, not a panic.
    let (status, _, _) = request(addr, "GET", "/debug/trace/ffffffffffffffff");
    assert_eq!(status, 404);

    // The drain flushes the ring as trace-schema JSONL next to the
    // metrics snapshot.
    let (_summary, out_dir) = srv.stop();
    let traces = std::fs::read_to_string(out_dir.join("traces.jsonl")).expect("traces.jsonl");
    assert!(is_valid_trace_jsonl(&traces), "flushed trace log invalid: {traces}");
    assert!(traces.contains(&id), "flushed trace log lacks the slow trace");
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn metrics_exposition_is_prometheus_text_with_the_serving_series() {
    let _guard = lock();
    let srv = TestServer::boot("prom");
    let addr = srv.addr;

    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25");
    assert_eq!(status, 200, "{body}");
    // Same query again: a cache hit, so hit/miss series both exist.
    let (status, _, body) = request(addr, "GET", "/graphs/Rice-grad/mixing?eps=0.25");
    assert_eq!(status, 200, "{body}");

    let (status, head, prom) = request(addr, "GET", "/metrics");
    assert_eq!(status, 200);
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");
    assert!(is_valid_prometheus(&prom), "scrape is not Prometheus text:\n{prom}");
    // The series the serve dashboards are built on: request counters,
    // per-route latency histograms, shed/reap defenses, cache and store
    // effectiveness, and the per-stage trace histograms.
    for series in [
        "# TYPE http_requests_total counter",
        "http_responses_2xx_total",
        "http_request_seconds_bucket{route=\"mixing\"",
        "http_request_seconds_count{route=\"mixing\"",
        "http_shed_requests_total",
        "http_reaped_slowloris_total",
        "cache_hits_total",
        "cache_misses_total",
        "cache_coalesced_total",
        "store_hydrated_total",
        "trace_total_seconds_bucket{route=\"mixing\"",
        "trace_stage_seconds_bucket{stage=\"handle\"",
        "kernel_slem_seconds_count",
    ] {
        assert!(prom.contains(series), "scrape lacks {series}:\n{prom}");
    }

    // The legacy pinned-schema JSON snapshot stays reachable.
    let (status, _, snap) = request(addr, "GET", "/metrics?format=json");
    assert_eq!(status, 200);
    assert!(json::is_valid(&snap), "{snap}");
    assert!(snap.contains("socnet-metrics-v1"), "{snap}");

    let (_summary, out_dir) = srv.stop();
    std::fs::remove_dir_all(&out_dir).ok();
}

#[test]
fn tracing_can_be_disabled_and_requests_run_bare() {
    let _guard = lock();
    let srv = TestServer::boot("off");
    srv.state.set_tracing(false);
    let sealed_before = srv.state.traces.sealed_total();

    let (status, head, body) = request(srv.addr, "GET", "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(!head.contains("X-Trace-Id"), "untraced response must not carry an id: {head}");
    assert_eq!(srv.state.traces.sealed_total(), sealed_before, "tracing off must seal nothing");

    srv.state.set_tracing(true);
    let (status, head, _) = request(srv.addr, "GET", "/healthz");
    assert_eq!(status, 200);
    let id = trace_id_of(&head);
    assert!(srv.state.traces.find(&id).is_some(), "re-enabled tracing must seal again");

    let (_summary, out_dir) = srv.stop();
    std::fs::remove_dir_all(&out_dir).ok();
}
