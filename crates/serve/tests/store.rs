//! Warm-start integration tests: a real server draining to a real
//! `socnet-store` snapshot, a real restart hydrating it.
//!
//! The acceptance story for the store subsystem is end-to-end: stop a
//! server, start a new process-equivalent over the same store
//! directory, and the first repeat query must come back `X-Cache:
//! warm-disk`, byte-identical, with no graph load and no recompute.
//! Damage the snapshot in any way — truncate it, flip a bit, stamp it
//! with another build's git rev — and the server must quarantine the
//! file and boot cold, never panic.
//!
//! Tests serialize on a process-wide lock for the same reason
//! `tests/server.rs` does: the SIGTERM flag is a process-wide atomic.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

use socnet_serve::persist::SNAPSHOT_NAME;
use socnet_serve::{AppState, ServeSummary, Server, ServerConfig};
use socnet_store::{read_snapshot, write_snapshot, Snapshot, SnapshotMeta, StoreDir};

/// Serializes the tests (see module docs).
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
}

struct TestServer {
    addr: SocketAddr,
    state: Arc<AppState>,
    shutdown: socnet_runner::CancelToken,
    thread: std::thread::JoinHandle<std::io::Result<ServeSummary>>,
    out_dir: PathBuf,
}

impl TestServer {
    /// Boots a server wired to `store_dir`. Each boot gets a fresh
    /// artifact directory; the store directory is the thing that
    /// persists across "restarts".
    fn boot(tag: &str, store_dir: &Path) -> TestServer {
        let out_dir = std::env::temp_dir()
            .join(format!("socnet-store-it-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&out_dir).ok();
        let config = ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: 2,
            cache_bytes: 16 * 1024 * 1024,
            default_scale: 0.05,
            default_seed: 42,
            out_dir: out_dir.clone(),
            store_dir: Some(store_dir.to_path_buf()),
            ..ServerConfig::default()
        };
        let server = Server::bind(config).expect("bind loopback");
        let addr = server.local_addr();
        let state = server.state();
        let shutdown = server.shutdown_handle();
        let thread = std::thread::spawn(move || server.serve());
        TestServer { addr, state, shutdown, thread, out_dir }
    }

    fn stop(self) -> (ServeSummary, PathBuf) {
        self.shutdown.cancel();
        let summary = self.thread.join().expect("server thread").expect("drain");
        (summary, self.out_dir)
    }
}

fn request(addr: SocketAddr, method: &str, path: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).expect("timeout");
    write!(stream, "{method} {path} HTTP/1.1\r\nHost: test\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    let status: u16 = raw
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("unparsable response: {raw:?}"));
    let (head, body) = match raw.find("\r\n\r\n") {
        Some(i) => (raw[..i].to_string(), raw[i + 4..].to_string()),
        None => (raw, String::new()),
    };
    (status, head, body)
}

/// A per-test store directory, wiped before use.
fn store_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir()
        .join(format!("socnet-store-dir-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn snapshot_path(dir: &Path) -> PathBuf {
    StoreDir::new(dir).snapshot_path(SNAPSHOT_NAME)
}

const MIXING: &str = "/graphs/Rice-grad/mixing?eps=0.25";
const CORENESS: &str = "/graphs/Rice-grad/coreness/0";

/// Runs one server generation over `dir`, queries the canonical routes,
/// and drains. Returns the bodies it served and the drain summary.
fn serve_one_generation(dir: &Path) -> (String, String, ServeSummary) {
    let srv = TestServer::boot("gen", dir);
    let (status, _, mixing_body) = request(srv.addr, "GET", MIXING);
    assert_eq!(status, 200, "{mixing_body}");
    let (status, _, coreness_body) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{coreness_body}");
    let (summary, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    (mixing_body, coreness_body, summary)
}

#[test]
fn drain_restart_serves_first_queries_warm_and_byte_identical() {
    let _guard = lock();
    let dir = store_dir("roundtrip");

    let (cold_mixing, cold_coreness, summary) = serve_one_generation(&dir);
    let snap = summary.snapshot_path.expect("drain must flush a snapshot");
    assert!(snap.exists(), "snapshot file written at {}", snap.display());
    assert_eq!(snap, snapshot_path(&dir));

    // "Restart": a new server over the same store directory.
    let srv = TestServer::boot("roundtrip2", &dir);
    assert!(srv.state.registry.is_empty(), "hydration must not fake residency");
    assert!(
        !srv.state.registry.remembered().is_empty(),
        "hydration remembers what the last process was serving"
    );

    // First queries: warm from disk, byte-identical, zero recompute.
    let (status, head, warm_mixing) = request(srv.addr, "GET", MIXING);
    assert_eq!(status, 200, "{warm_mixing}");
    assert!(head.contains("X-Cache: warm-disk"), "first restarted query must be warm: {head}");
    assert_eq!(warm_mixing, cold_mixing, "warm body must be byte-identical");

    let (status, head, warm_coreness) = request(srv.addr, "GET", CORENESS);
    assert_eq!(status, 200, "{warm_coreness}");
    assert!(head.contains("X-Cache: warm-disk"), "{head}");
    assert_eq!(warm_coreness, cold_coreness);

    let stats = srv.state.cache.stats();
    assert_eq!(stats.misses, 0, "warm queries must not recompute");
    assert!(stats.hits >= 2, "warm hits must count as cache hits, saw {}", stats.hits);
    assert!(srv.state.registry.is_empty(), "warm answers must not load graphs");

    // The second generation re-exports on drain: the snapshot survives
    // another cycle and still parses.
    let (summary, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    let snap = summary.snapshot_path.expect("second drain flushes too");
    let reread = read_snapshot(&snap).expect("re-exported snapshot parses");
    assert!(
        reread.records.iter().filter(|r| r.kind == "body").count() >= 2,
        "re-export keeps the hydrated bodies"
    );
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn telemetry_routes_bypass_the_cache_and_the_persist_snapshot() {
    let _guard = lock();
    let dir = store_dir("telemetry-bypass");

    let srv = TestServer::boot("telemetry", &dir);
    // One real property query so the drain has something legitimate to
    // persist alongside the telemetry traffic.
    let (status, _, body) = request(srv.addr, "GET", MIXING);
    assert_eq!(status, 200, "{body}");
    let entries_before = srv.state.cache.stats().entries;

    // A scrape must not perturb what it observes: telemetry reads never
    // enter the property cache, and never record persistable bodies.
    for path in
        ["/metrics", "/metrics?format=json", "/debug/slow", "/debug/trace/ffffffffffffffff"]
    {
        let (status, _, body) = request(srv.addr, "GET", path);
        assert!(status == 200 || status == 404, "{path} -> {status}: {body}");
    }
    assert_eq!(
        srv.state.cache.stats().entries,
        entries_before,
        "telemetry traffic grew the property cache"
    );

    let (summary, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
    let snap = summary.snapshot_path.expect("drain flushes a snapshot");
    let snapshot = read_snapshot(&snap).expect("snapshot parses");
    for record in &snapshot.records {
        for field in &record.fields {
            assert!(
                !field.contains("metrics") && !field.contains("debug"),
                "telemetry leaked into the persist snapshot: {} {field}",
                record.kind
            );
        }
    }
    assert!(
        snapshot.records.iter().any(|r| r.kind == "body"),
        "the property query must still persist"
    );
    std::fs::remove_dir_all(dir).ok();
}

/// Boots over a damaged store and asserts the standard recovery story:
/// quarantined live file, cold first query, server fully functional.
fn assert_quarantined_cold_boot(dir: &Path) {
    let live = snapshot_path(dir);
    let quarantined = live.with_file_name(format!(
        "{}.quarantined",
        live.file_name().unwrap().to_string_lossy()
    ));

    let srv = TestServer::boot("quarantine", dir);
    assert!(!live.exists(), "damaged snapshot must be moved out of the live path");
    assert!(quarantined.exists(), "damaged snapshot must be preserved for forensics");
    assert!(srv.state.registry.remembered().is_empty(), "nothing hydrates from damage");

    let (status, head, body) = request(srv.addr, "GET", MIXING);
    assert_eq!(status, 200, "server must answer cold after quarantine: {body}");
    assert!(head.contains("X-Cache: miss"), "first query after quarantine is cold: {head}");

    let (_, out_dir) = srv.stop();
    std::fs::remove_dir_all(out_dir).ok();
}

#[test]
fn truncated_snapshot_is_quarantined_and_the_server_boots_cold() {
    let _guard = lock();
    let dir = store_dir("truncated");
    let (_, _, summary) = serve_one_generation(&dir);
    let snap = summary.snapshot_path.expect("snapshot flushed");

    let bytes = std::fs::read(&snap).expect("read snapshot");
    assert!(bytes.len() > 64);
    std::fs::write(&snap, &bytes[..bytes.len() - 48]).expect("truncate");

    assert_quarantined_cold_boot(&dir);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn bit_flipped_snapshot_is_quarantined_and_the_server_boots_cold() {
    let _guard = lock();
    let dir = store_dir("bitflip");
    let (_, _, summary) = serve_one_generation(&dir);
    let snap = summary.snapshot_path.expect("snapshot flushed");

    let mut bytes = std::fs::read(&snap).expect("read snapshot");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&snap, &bytes).expect("corrupt");

    assert_quarantined_cold_boot(&dir);
    std::fs::remove_dir_all(dir).ok();
}

#[test]
fn snapshot_from_another_git_rev_is_quarantined_and_the_server_boots_cold() {
    let _guard = lock();
    let dir = store_dir("revmismatch");

    // A structurally perfect snapshot stamped by "someone else's build":
    // checksums pass, the manifest rev does not.
    std::fs::create_dir_all(&dir).expect("mkdir");
    let alien = Snapshot {
        meta: SnapshotMeta::new("someone-elses-rev", "00000000"),
        records: Vec::new(),
    };
    write_snapshot(&snapshot_path(&dir), &alien).expect("write alien snapshot");

    assert_quarantined_cold_boot(&dir);
    std::fs::remove_dir_all(dir).ok();
}
