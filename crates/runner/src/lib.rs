//! Fault-tolerant execution for long-running measurements.
//!
//! The paper's headline artifacts come from hours-long sweeps — per-source
//! walk evolution for mixing time, all-node BFS envelopes for expansion,
//! GateKeeper admission trials. Each sweep decomposes into many
//! independent **units** (one source, one core, one distributor), and a
//! single poisoned unit or a killed process must not cost the whole run.
//! This crate provides the pieces the measurement crates and the
//! experiment binaries share:
//!
//! * [`CancelToken`] — cooperative cancellation with optional deadlines,
//!   checked inside per-unit loops so a time budget bounds each stage's
//!   wall time and the run emits whatever completed;
//! * [`run_units`] — a panic-isolated worker pool: every unit executes
//!   under `catch_unwind`, failures are retried a bounded, deterministic
//!   number of times (workers see the attempt counter and can bump their
//!   seeds), and one failed unit degrades only itself;
//! * [`par_sweep`] — the deterministic data-parallel sweep engine for
//!   the hot per-source inner loops: chunked scheduling over a scoped
//!   thread pool with per-thread scratch reuse, merging results back in
//!   item order so sweep CSVs are byte-identical at any thread count;
//! * [`Pool`] — the persistent sibling of [`run_units`] for serving
//!   processes: long-lived panic-isolated workers with a graceful
//!   [`drain`](Pool::drain) path that stops intake, finishes in-flight
//!   jobs up to a deadline, and reports abandoned units;
//! * [`Checkpoint`] — an append-only, fsync'd journal of completed units.
//!   A rerun with the same run key skips finished units; journals with
//!   trailing garbage (torn writes) are recovered by truncating to the
//!   last valid record;
//! * [`RunReport`] / [`StageReport`] — per-stage accounting of
//!   completed / resumed / failed / cancelled / timed-out units, printed
//!   by every experiment binary and written beside the CSVs so degraded
//!   output is always labeled with its coverage;
//! * [`write_atomic`] — tmp-file + fsync + rename artifact writes, so a
//!   killed run can never leave a truncated CSV;
//! * [`obs`] — structured tracing: span/event API with pretty and JSONL
//!   renderers, a global logger selected by `--log-format` /
//!   `--log-file` / `--quiet`, and a [`Heartbeat`](obs::Heartbeat)
//!   thread emitting progress + ETA for long sweeps;
//! * [`Metrics`] — a process-wide registry of counters, gauges, and
//!   duration histograms the engines record into, snapshotted to
//!   `<out>/<name>_metrics.json`;
//! * [`RunManifest`] / [`write_bench`] — machine-readable `run.json`
//!   manifests (args, seed, git rev, hostname, per-stage coverage and
//!   timings) and `BENCH_<name>.json` perf summaries;
//! * [`json`] — the hand-rolled JSON writer + validator behind all of
//!   the above.
//!
//! The crate is deliberately dependency-free (std only): the failure
//! layer should not be able to fail on its own account.
//!
//! # Examples
//!
//! ```
//! use socnet_runner::{run_units, PoolConfig, UnitError};
//!
//! let items: Vec<u64> = (0..8).collect();
//! let out = run_units(
//!     "square",
//!     &items,
//!     &PoolConfig::default(),
//!     |i, _| format!("unit-{i}"),
//!     |_ctx, &x| {
//!         if x == 3 {
//!             panic!("poisoned unit");
//!         }
//!         Ok::<u64, UnitError>(x * x)
//!     },
//! );
//! assert_eq!(out.outputs[2], Some(4));
//! assert_eq!(out.outputs[3], None); // isolated, not fatal
//! assert_eq!(out.report.completed(), 7);
//! assert_eq!(out.report.failed(), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod artifact;
mod cancel;
mod checkpoint;
pub mod json;
mod manifest;
mod metrics;
pub mod obs;
mod par;
mod payload;
mod pool;
mod report;
mod workpool;

pub use artifact::write_atomic;
pub use cancel::{CancelCause, CancelToken};
pub use checkpoint::Checkpoint;
pub use manifest::{
    git_rev, hostname, render_bench, render_bench_with, write_bench, write_bench_with, RunManifest,
};
pub use metrics::{is_valid_prometheus, Histogram, Metrics, BUCKET_BOUNDS_S};
pub use par::{par_sweep, ParConfig, SweepCtx};
pub use payload::Payload;
pub use pool::{run_units, PoolConfig, StageOutput, UnitCtx, UnitError};
pub use report::{RunReport, StageReport, UnitRecord, UnitStatus};
pub use workpool::{DrainReport, Pool, PoolClosed};
