//! The panic-isolated worker pool.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::{obs, CancelCause, CancelToken, Metrics, StageReport, UnitRecord, UnitStatus};

/// How a unit of work reports failure to the pool.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UnitError {
    /// The worker observed its [`CancelToken`] and bailed out; the unit
    /// is recorded as cancelled or timed-out (per the token's cause),
    /// never retried.
    Cancelled,
    /// The unit failed with a message; retried up to the attempt bound.
    Failed(String),
}

/// Per-attempt context handed to workers.
#[derive(Debug)]
pub struct UnitCtx<'a> {
    /// Index of the unit in the pool's item slice.
    pub index: usize,
    /// 1-based attempt number — deterministic retries bump their RNG
    /// seed with this, so attempt `k` of a unit is reproducible.
    pub attempt: u32,
    /// The pool's cancellation token; poll it at natural yield points
    /// and return [`UnitError::Cancelled`] when it trips.
    pub cancel: &'a CancelToken,
}

/// Pool tuning knobs.
#[derive(Debug, Clone)]
pub struct PoolConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Maximum attempts per unit (at least 1; 1 disables retry).
    pub max_attempts: u32,
    /// The cancellation token checked before every attempt.
    pub cancel: CancelToken,
}

impl Default for PoolConfig {
    fn default() -> Self {
        PoolConfig {
            threads: 0,
            max_attempts: 1,
            cancel: CancelToken::new(),
        }
    }
}

impl PoolConfig {
    /// A config with the given cancellation token and retry bound.
    pub fn new(cancel: CancelToken, max_attempts: u32) -> Self {
        PoolConfig {
            threads: 0,
            max_attempts,
            cancel,
        }
    }
}

/// What [`run_units`] returns: per-unit outputs plus the stage report.
#[derive(Debug)]
pub struct StageOutput<O> {
    /// `outputs[i]` is `Some` iff unit `i` completed; aligned with the
    /// input items regardless of scheduling order.
    pub outputs: Vec<Option<O>>,
    /// One [`UnitRecord`] per unit, in item order.
    pub report: StageReport,
}

impl<O> StageOutput<O> {
    /// The completed outputs, dropping failed units.
    pub fn into_completed(self) -> Vec<O> {
        self.outputs.into_iter().flatten().collect()
    }
}

/// Runs one isolated unit of work per item across a scoped thread pool.
///
/// Each attempt executes under `catch_unwind`: a panicking unit is
/// recorded as failed (with the panic message) instead of aborting the
/// pool, and retried up to `config.max_attempts` times. Workers receive
/// a [`UnitCtx`] carrying their attempt number (for deterministic
/// seed-bumped retries) and the pool's [`CancelToken`]; once the token
/// trips, running units may bail with [`UnitError::Cancelled`] and
/// not-yet-started units are recorded as cancelled/timed-out without
/// running. Outputs are slotted by item index, so results are
/// deterministic whatever the thread interleaving.
///
/// `id_of` names each unit for the report (and checkpoint journals); it
/// must not panic.
///
/// # Examples
///
/// ```
/// use socnet_runner::{run_units, PoolConfig, UnitError};
///
/// let out = run_units(
///     "double",
///     &[1, 2, 3],
///     &PoolConfig::default(),
///     |i, _| i.to_string(),
///     |_ctx, &x| Ok::<i32, UnitError>(2 * x),
/// );
/// assert_eq!(out.outputs, vec![Some(2), Some(4), Some(6)]);
/// assert!(out.report.is_complete());
/// ```
pub fn run_units<I, O, F, G>(
    stage: &str,
    items: &[I],
    config: &PoolConfig,
    id_of: G,
    worker: F,
) -> StageOutput<O>
where
    I: Sync,
    O: Send,
    F: Fn(UnitCtx<'_>, &I) -> Result<O, UnitError> + Sync,
    G: Fn(usize, &I) -> String + Sync,
{
    let start = Instant::now();
    let n = items.len();
    let mut outputs: Vec<Option<O>> = Vec::with_capacity(n);
    let mut records: Vec<Option<UnitRecord>> = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(None);
        records.push(None);
    }

    if n > 0 {
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Option<O>, UnitRecord)>> = Mutex::new(Vec::with_capacity(n));
        let threads = effective_threads(config.threads, n);
        obs::progress_begin(stage, n as u64);
        obs::debug(
            "pool.start",
            &[
                ("stage", stage.into()),
                ("units", n.into()),
                ("threads", threads.into()),
            ],
        );
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = &items[i];
                    let id = id_of(i, item);
                    let result = run_one(i, id, item, config, &worker);
                    record_unit_metrics(&result.2);
                    done.lock().expect("pool results lock").push(result);
                });
            }
        });
        let collected = done.into_inner().expect("pool results lock");
        for (i, out, rec) in collected {
            outputs[i] = out;
            records[i] = Some(rec);
        }
    }

    let units = records
        .into_iter()
        .map(|r| r.expect("every unit recorded"))
        .collect();
    let wall = start.elapsed();
    Metrics::global().observe("stage.wall", wall.as_secs_f64());
    obs::debug(
        "pool.done",
        &[("stage", stage.into()), ("wall_s", wall.as_secs_f64().into())],
    );
    StageOutput {
        outputs,
        report: StageReport {
            stage: stage.to_string(),
            units,
            wall,
        },
    }
}

/// Records one finished unit into the global metrics registry and the
/// progress counters the heartbeat thread reads. Shared by both engines.
pub(crate) fn record_unit_metrics(rec: &UnitRecord) {
    let metrics = Metrics::global();
    let counter = match rec.status {
        UnitStatus::Completed => "units.completed",
        UnitStatus::Resumed => "units.resumed",
        UnitStatus::Failed => "units.failed",
        UnitStatus::Cancelled => "units.cancelled",
        UnitStatus::TimedOut => "units.timed_out",
    };
    metrics.incr(counter, 1);
    if rec.wall > Duration::ZERO {
        metrics.observe("unit.wall", rec.wall.as_secs_f64());
    }
    obs::progress_tick();
}

pub(crate) fn effective_threads(configured: usize, units: usize) -> usize {
    let auto = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let t = if configured == 0 { auto } else { configured };
    t.min(units).max(1)
}

fn run_one<I, O, F>(
    index: usize,
    id: String,
    item: &I,
    config: &PoolConfig,
    worker: &F,
) -> (usize, Option<O>, UnitRecord)
where
    F: Fn(UnitCtx<'_>, &I) -> Result<O, UnitError>,
{
    let started = Instant::now();
    let max_attempts = config.max_attempts.max(1);
    let mut attempt = 0u32;
    let mut last_error;
    loop {
        if let Some(cause) = config.cancel.cause() {
            let status = stop_status(cause);
            let rec = UnitRecord::stopped(id, status, attempt).with_wall(started.elapsed());
            return (index, None, rec);
        }
        attempt += 1;
        let ctx = UnitCtx {
            index,
            attempt,
            cancel: &config.cancel,
        };
        match catch_unwind(AssertUnwindSafe(|| worker(ctx, item))) {
            Ok(Ok(output)) => {
                let rec = UnitRecord::completed(id, attempt).with_wall(started.elapsed());
                return (index, Some(output), rec);
            }
            Ok(Err(UnitError::Cancelled)) => {
                // Trust the token over the worker: a worker returning
                // Cancelled with a live token is treated as cancelled
                // anyway (it refused to continue).
                let status = config
                    .cancel
                    .cause()
                    .map(stop_status)
                    .unwrap_or(UnitStatus::Cancelled);
                let rec = UnitRecord::stopped(id, status, attempt).with_wall(started.elapsed());
                return (index, None, rec);
            }
            Ok(Err(UnitError::Failed(message))) => last_error = message,
            Err(payload) => last_error = format!("panicked: {}", panic_message(payload.as_ref())),
        }
        if attempt >= max_attempts {
            let rec = UnitRecord::failed(id, attempt, last_error).with_wall(started.elapsed());
            return (index, None, rec);
        }
        Metrics::global().incr("units.retried", 1);
        obs::debug(
            "unit.retry",
            &[
                ("id", id.as_str().into()),
                ("attempt", attempt.into()),
                ("error", last_error.as_str().into()),
            ],
        );
    }
}

pub(crate) fn stop_status(cause: CancelCause) -> UnitStatus {
    match cause {
        CancelCause::Cancelled => UnitStatus::Cancelled,
        CancelCause::DeadlineExceeded => UnitStatus::TimedOut,
    }
}

pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn all_units_complete_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = run_units(
            "sq",
            &items,
            &PoolConfig::default(),
            |i, _| format!("u{i}"),
            |_ctx, &x| Ok::<usize, UnitError>(x * x),
        );
        assert_eq!(out.report.completed(), 100);
        assert!(out.report.is_complete());
        for (i, o) in out.outputs.iter().enumerate() {
            assert_eq!(*o, Some(i * i));
        }
        assert_eq!(out.report.units[17].id, "u17");
    }

    #[test]
    fn one_panicking_unit_fails_alone() {
        let items: Vec<usize> = (0..10).collect();
        let out = run_units(
            "poison",
            &items,
            &PoolConfig::default(),
            |i, _| format!("u{i}"),
            |_ctx, &x| {
                if x == 3 {
                    panic!("poisoned unit 3");
                }
                Ok::<usize, UnitError>(x)
            },
        );
        assert_eq!(out.report.failed(), 1);
        assert_eq!(out.report.completed(), 9);
        assert_eq!(out.outputs[3], None);
        let rec = &out.report.units[3];
        assert_eq!(rec.status, UnitStatus::Failed);
        assert!(rec
            .error
            .as_deref()
            .expect("has error")
            .contains("poisoned unit 3"));
        for i in (0..10).filter(|&i| i != 3) {
            assert_eq!(out.outputs[i], Some(i));
        }
    }

    #[test]
    fn failed_units_retry_up_to_the_bound() {
        let calls = AtomicU32::new(0);
        let cfg = PoolConfig {
            threads: 1,
            max_attempts: 3,
            cancel: CancelToken::new(),
        };
        let out = run_units(
            "retry",
            &[()],
            &cfg,
            |_, _| "unit".into(),
            |ctx, _| {
                calls.fetch_add(1, Ordering::Relaxed);
                if ctx.attempt < 3 {
                    Err(UnitError::Failed(format!("attempt {} flaked", ctx.attempt)))
                } else {
                    Ok(ctx.attempt)
                }
            },
        );
        assert_eq!(calls.load(Ordering::Relaxed), 3);
        assert_eq!(out.outputs[0], Some(3));
        assert_eq!(out.report.units[0].attempts, 3);
    }

    #[test]
    fn persistent_failure_exhausts_attempts() {
        let cfg = PoolConfig {
            threads: 1,
            max_attempts: 2,
            cancel: CancelToken::new(),
        };
        let out = run_units(
            "hopeless",
            &[()],
            &cfg,
            |_, _| "unit".into(),
            |_ctx, _| -> Result<(), UnitError> { panic!("always broken") },
        );
        let rec = &out.report.units[0];
        assert_eq!(rec.status, UnitStatus::Failed);
        assert_eq!(rec.attempts, 2);
        assert!(rec.error.as_deref().expect("msg").contains("always broken"));
    }

    #[test]
    fn cancelled_token_stops_unstarted_units() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let items: Vec<usize> = (0..5).collect();
        let out = run_units(
            "cancelled",
            &items,
            &PoolConfig::new(cancel, 1),
            |i, _| format!("u{i}"),
            |_ctx, &x| Ok::<usize, UnitError>(x),
        );
        assert_eq!(out.report.cancelled(), 5);
        assert!(out.outputs.iter().all(Option::is_none));
        assert!(out.report.units.iter().all(|u| u.attempts == 0));
    }

    #[test]
    fn expired_budget_marks_units_timed_out() {
        let cfg = PoolConfig::new(CancelToken::with_budget(Duration::ZERO), 1);
        let out = run_units(
            "late",
            &[1, 2],
            &cfg,
            |i, _| format!("u{i}"),
            |_ctx, &x| Ok::<i32, UnitError>(x),
        );
        assert_eq!(out.report.timed_out(), 2);
    }

    #[test]
    fn worker_observed_cancellation_is_not_retried() {
        let cancel = CancelToken::new();
        let cfg = PoolConfig {
            threads: 1,
            max_attempts: 5,
            cancel: cancel.clone(),
        };
        let calls = AtomicU32::new(0);
        let out = run_units(
            "coop",
            &[()],
            &cfg,
            |_, _| "unit".into(),
            |_ctx, _| -> Result<(), UnitError> {
                calls.fetch_add(1, Ordering::Relaxed);
                cancel.cancel(); // e.g. the unit notices mid-walk
                Err(UnitError::Cancelled)
            },
        );
        assert_eq!(
            calls.load(Ordering::Relaxed),
            1,
            "cancellation must not retry"
        );
        assert_eq!(out.report.cancelled(), 1);
    }

    #[test]
    fn mid_run_cancellation_stops_the_tail() {
        // Single-threaded so ordering is deterministic: unit 2 cancels,
        // units 3.. never run.
        let cancel = CancelToken::new();
        let cfg = PoolConfig {
            threads: 1,
            max_attempts: 1,
            cancel: cancel.clone(),
        };
        let items: Vec<usize> = (0..6).collect();
        let out = run_units(
            "tail",
            &items,
            &cfg,
            |i, _| format!("u{i}"),
            |_ctx, &x| {
                if x == 2 {
                    cancel.cancel();
                }
                Ok::<usize, UnitError>(x)
            },
        );
        // Units 0..=2 completed (2 finished its attempt), 3.. cancelled.
        assert_eq!(out.report.completed(), 3);
        assert_eq!(out.report.cancelled(), 3);
        assert_eq!(out.outputs[2], Some(2));
        assert_eq!(out.outputs[3], None);
    }

    #[test]
    fn empty_items_yield_empty_complete_stage() {
        let out = run_units(
            "empty",
            &[] as &[u8],
            &PoolConfig::default(),
            |i, _| i.to_string(),
            |_ctx, &x| Ok::<u8, UnitError>(x),
        );
        assert!(out.outputs.is_empty());
        assert!(out.report.is_complete());
        assert_eq!(out.report.total(), 0);
    }

    #[test]
    fn into_completed_drops_failures() {
        let items: Vec<u32> = (0..4).collect();
        let out = run_units(
            "drop",
            &items,
            &PoolConfig::default(),
            |i, _| i.to_string(),
            |_ctx, &x| {
                if x % 2 == 0 {
                    Ok(x)
                } else {
                    Err(UnitError::Failed("odd".into()))
                }
            },
        );
        assert_eq!(out.into_completed(), vec![0, 2]);
    }

    #[test]
    fn results_are_deterministic_across_thread_counts() {
        let items: Vec<u64> = (0..64).collect();
        let run = |threads| {
            let cfg = PoolConfig {
                threads,
                max_attempts: 1,
                cancel: CancelToken::new(),
            };
            run_units(
                "det",
                &items,
                &cfg,
                |i, _| i.to_string(),
                |_ctx, &x| Ok::<u64, UnitError>(x.wrapping_mul(0x9e3779b97f4a7c15)),
            )
            .outputs
        };
        assert_eq!(run(1), run(7));
    }
}
