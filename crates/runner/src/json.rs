//! Hand-rolled JSON building and validation.
//!
//! The runner crate is deliberately dependency-free, so the structured
//! observability artifacts ([`run.json`](crate::RunManifest) manifests,
//! metrics snapshots, JSONL event logs, `BENCH_*.json` summaries) are
//! assembled with this tiny writer instead of serde. Key order is
//! insertion order and number formatting is explicit at every call
//! site, which is what keeps the emitted schemas byte-stable — the
//! golden-file tests pin the exact output.
//!
//! [`is_valid`] / [`is_valid_jsonl`] are the matching validators: a
//! strict recursive-descent check used by the test suite and by
//! `socnet obs-check` so CI can fail a binary that ever emits a torn or
//! malformed document.

/// Escapes a string for embedding inside JSON double quotes (the quotes
/// themselves are not added).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number: fixed `decimals` places, with
/// non-finite values (which JSON cannot represent) emitted as `null`.
pub fn num(x: f64, decimals: usize) -> String {
    if x.is_finite() {
        format!("{x:.decimals$}")
    } else {
        "null".to_string()
    }
}

/// An insertion-ordered JSON object under construction.
///
/// # Examples
///
/// ```
/// use socnet_runner::json::Obj;
///
/// let mut o = Obj::new();
/// o.str("name", "fig1");
/// o.int("units", 7);
/// assert_eq!(o.finish(), r#"{"name":"fig1","units":7}"#);
/// ```
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    /// An empty object.
    pub fn new() -> Self {
        Obj { buf: String::new() }
    }

    fn key(&mut self, key: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds a string field.
    pub fn str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push('"');
        self
    }

    /// Adds an integer field.
    pub fn int(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a signed integer field.
    pub fn sint(&mut self, key: &str, value: i64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self
    }

    /// Adds a float field with fixed decimals (`null` when non-finite).
    pub fn num(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.key(key);
        self.buf.push_str(&num(value, decimals));
        self
    }

    /// Adds a boolean field.
    pub fn bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.key(key);
        self.buf.push_str(if value { "true" } else { "false" });
        self
    }

    /// Adds a field whose value is already-rendered JSON.
    pub fn raw(&mut self, key: &str, json: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(json);
        self
    }

    /// Renders the object.
    pub fn finish(&self) -> String {
        format!("{{{}}}", self.buf)
    }
}

/// A line-oriented writer for the repo's pretty top-level documents
/// (`run.json`, `BENCH_*.json`, metrics snapshots).
///
/// Those artifacts share one layout contract: `{`, then one field per
/// line (`"key":value,`), with at most one array- or map-valued field
/// whose elements each get their own line, and a final field with no
/// trailing comma. The golden-file tests pin the exact bytes, so the
/// writer reproduces that layout character for character while funnelling
/// every string through the single [`escape`] / [`num`] policy.
///
/// # Examples
///
/// ```
/// use socnet_runner::json::{self, Writer};
///
/// let mut w = Writer::new();
/// w.field_str("schema", "demo-v1").field_int("count", 2);
/// w.begin_array("items");
/// w.push_item("1");
/// w.push_item("2");
/// w.end_array();
/// let doc = w.finish_with_raw("complete", "true");
/// assert_eq!(doc, "{\n\"schema\":\"demo-v1\",\n\"count\":2,\n\"items\":[\n1,\n2\n],\n\"complete\":true\n}\n");
/// assert!(json::is_valid(&doc));
/// ```
#[derive(Debug, Default)]
pub struct Writer {
    buf: String,
    container_items: usize,
}

impl Writer {
    /// An open document (`{` plus newline).
    pub fn new() -> Self {
        Writer { buf: String::from("{\n"), container_items: 0 }
    }

    fn key(&mut self, key: &str) {
        self.buf.push('"');
        self.buf.push_str(&escape(key));
        self.buf.push_str("\":");
    }

    /// Adds one `"key":"value",` line.
    pub fn field_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.key(key);
        self.buf.push('"');
        self.buf.push_str(&escape(value));
        self.buf.push_str("\",\n");
        self
    }

    /// Adds one `"key":int,` line.
    pub fn field_int(&mut self, key: &str, value: u64) -> &mut Self {
        self.key(key);
        self.buf.push_str(&value.to_string());
        self.buf.push_str(",\n");
        self
    }

    /// Adds one `"key":float,` line with fixed decimals (`null` when
    /// non-finite).
    pub fn field_num(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.key(key);
        self.buf.push_str(&num(value, decimals));
        self.buf.push_str(",\n");
        self
    }

    /// Adds one `"key":<raw JSON>,` line.
    pub fn field_raw(&mut self, key: &str, raw: &str) -> &mut Self {
        self.key(key);
        self.buf.push_str(raw);
        self.buf.push_str(",\n");
        self
    }

    /// Opens an array-valued field whose elements each get a line.
    pub fn begin_array(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('[');
        self.container_items = 0;
        self
    }

    /// Appends one already-rendered element to the open array.
    pub fn push_item(&mut self, raw: &str) -> &mut Self {
        if self.container_items > 0 {
            self.buf.push(',');
        }
        self.buf.push('\n');
        self.buf.push_str(raw);
        self.container_items += 1;
        self
    }

    /// Closes the open array and continues the document (`],`).
    pub fn end_array(&mut self) -> &mut Self {
        if self.container_items > 0 {
            self.buf.push('\n');
        }
        self.buf.push_str("],\n");
        self
    }

    /// Opens a map-valued field whose entries each get a line.
    pub fn begin_map(&mut self, key: &str) -> &mut Self {
        self.key(key);
        self.buf.push('{');
        self.container_items = 0;
        self
    }

    /// Appends one `"name":<raw JSON>` entry to the open map.
    pub fn push_entry(&mut self, name: &str, raw: &str) -> &mut Self {
        if self.container_items > 0 {
            self.buf.push(',');
        }
        self.buf.push('\n');
        self.buf.push('"');
        self.buf.push_str(&escape(name));
        self.buf.push_str("\":");
        self.buf.push_str(raw);
        self.container_items += 1;
        self
    }

    /// Closes the open map and continues the document (`},`).
    pub fn end_map(&mut self) -> &mut Self {
        if self.container_items > 0 {
            self.buf.push('\n');
        }
        self.buf.push_str("},\n");
        self
    }

    /// Closes the open map as the document's final field and renders.
    pub fn finish_with_map(mut self) -> String {
        if self.container_items > 0 {
            self.buf.push('\n');
        }
        self.buf.push_str("}\n}\n");
        self.buf
    }

    /// Adds a final `"key":<raw JSON>` line (no trailing comma) and
    /// renders the document.
    pub fn finish_with_raw(mut self, key: &str, raw: &str) -> String {
        self.key(key);
        self.buf.push_str(raw);
        self.buf.push_str("\n}\n");
        self.buf
    }
}

/// A JSON array of already-rendered values.
#[derive(Debug, Default)]
pub struct Arr {
    items: Vec<String>,
}

impl Arr {
    /// An empty array.
    pub fn new() -> Self {
        Arr { items: Vec::new() }
    }

    /// Appends one already-rendered JSON value.
    pub fn push_raw(&mut self, json: String) -> &mut Self {
        self.items.push(json);
        self
    }

    /// Renders the array.
    pub fn finish(&self) -> String {
        format!("[{}]", self.items.join(","))
    }
}

/// Whether `s` is exactly one valid JSON value (with surrounding
/// whitespace allowed).
pub fn is_valid(s: &str) -> bool {
    let bytes = s.as_bytes();
    let mut pos = 0usize;
    skip_ws(bytes, &mut pos);
    if !value(bytes, &mut pos) {
        return false;
    }
    skip_ws(bytes, &mut pos);
    pos == bytes.len()
}

/// Whether every non-empty line of `s` is a valid JSON value — the
/// contract `--log-format json` holds even under panics and
/// cancellation.
pub fn is_valid_jsonl(s: &str) -> bool {
    s.lines().filter(|l| !l.trim().is_empty()).all(is_valid)
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn value(b: &[u8], pos: &mut usize) -> bool {
    skip_ws(b, pos);
    match b.get(*pos) {
        Some(b'{') => object(b, pos),
        Some(b'[') => array(b, pos),
        Some(b'"') => string(b, pos),
        Some(b't') => literal(b, pos, b"true"),
        Some(b'f') => literal(b, pos, b"false"),
        Some(b'n') => literal(b, pos, b"null"),
        Some(c) if c.is_ascii_digit() || *c == b'-' => number(b, pos),
        _ => false,
    }
}

fn literal(b: &[u8], pos: &mut usize, lit: &[u8]) -> bool {
    if b[*pos..].starts_with(lit) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn object(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '{'
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return true;
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') || !string(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return false;
        }
        *pos += 1;
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn array(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume '['
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return true;
    }
    loop {
        if !value(b, pos) {
            return false;
        }
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return true;
            }
            _ => return false,
        }
    }
}

fn string(b: &[u8], pos: &mut usize) -> bool {
    *pos += 1; // consume opening quote
    while let Some(&c) = b.get(*pos) {
        match c {
            b'"' => {
                *pos += 1;
                return true;
            }
            b'\\' => {
                match b.get(*pos + 1) {
                    Some(b'"' | b'\\' | b'/' | b'b' | b'f' | b'n' | b'r' | b't') => *pos += 2,
                    Some(b'u') => {
                        let hex = b.get(*pos + 2..*pos + 6);
                        match hex {
                            Some(h) if h.iter().all(u8::is_ascii_hexdigit) => *pos += 6,
                            _ => return false,
                        }
                    }
                    _ => return false,
                }
            }
            0x00..=0x1f => return false, // raw control characters are invalid
            _ => *pos += 1,
        }
    }
    false
}

fn number(b: &[u8], pos: &mut usize) -> bool {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    // Integer part: 0 alone, or a nonzero-led digit run.
    match b.get(*pos) {
        Some(b'0') => *pos += 1,
        Some(c) if c.is_ascii_digit() => {
            while b.get(*pos).is_some_and(u8::is_ascii_digit) {
                *pos += 1;
            }
        }
        _ => return false,
    }
    if b.get(*pos) == Some(&b'.') {
        *pos += 1;
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    if matches!(b.get(*pos), Some(b'e' | b'E')) {
        *pos += 1;
        if matches!(b.get(*pos), Some(b'+' | b'-')) {
            *pos += 1;
        }
        if !b.get(*pos).is_some_and(u8::is_ascii_digit) {
            return false;
        }
        while b.get(*pos).is_some_and(u8::is_ascii_digit) {
            *pos += 1;
        }
    }
    *pos > start
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_covers_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
        assert_eq!(escape("plain"), "plain");
    }

    #[test]
    fn num_formats_and_guards_nonfinite() {
        assert_eq!(num(1.5, 3), "1.500");
        assert_eq!(num(0.0, 1), "0.0");
        assert_eq!(num(f64::NAN, 3), "null");
        assert_eq!(num(f64::INFINITY, 3), "null");
    }

    #[test]
    fn obj_preserves_insertion_order() {
        let mut o = Obj::new();
        o.str("z", "last?").int("a", 1).bool("ok", true).num("w", 2.5, 2);
        o.raw("nested", "{\"x\":1}");
        let json = o.finish();
        assert_eq!(json, r#"{"z":"last?","a":1,"ok":true,"w":2.50,"nested":{"x":1}}"#);
        assert!(is_valid(&json));
    }

    #[test]
    fn arr_builds_valid_json() {
        let mut a = Arr::new();
        a.push_raw("1".into()).push_raw("\"two\"".into());
        assert_eq!(a.finish(), r#"[1,"two"]"#);
        assert!(is_valid(&a.finish()));
        assert_eq!(Arr::new().finish(), "[]");
    }

    #[test]
    fn validator_accepts_valid_documents() {
        for ok in [
            "{}",
            "[]",
            "null",
            "true",
            "-12.5e3",
            "0.25",
            r#""hié""#,
            r#"{"a":[1,2,{"b":null}],"c":"d"}"#,
            "  { \"k\" : [ 1 , 2 ] }  ",
        ] {
            assert!(is_valid(ok), "should accept {ok:?}");
        }
    }

    #[test]
    fn validator_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "01",
            "1.",
            "--1",
            "\"unterminated",
            "\"bad\\q\"",
            "{} trailing",
            "nul",
            "{\"a\":1,}",
        ] {
            assert!(!is_valid(bad), "should reject {bad:?}");
        }
    }

    #[test]
    fn writer_layout_matches_the_artifact_contract() {
        let mut w = Writer::new();
        w.field_str("schema", "t-v1")
            .field_int("n", 3)
            .field_num("x", 0.5, 3)
            .field_raw("args", "{\"a\":1}");
        w.begin_map("stages");
        w.push_entry("s1", "{\"wall_s\":1.000}");
        w.push_entry("s2", "{\"wall_s\":2.000}");
        let doc = w.finish_with_map();
        assert_eq!(
            doc,
            "{\n\"schema\":\"t-v1\",\n\"n\":3,\n\"x\":0.500,\n\"args\":{\"a\":1},\n\
             \"stages\":{\n\"s1\":{\"wall_s\":1.000},\n\"s2\":{\"wall_s\":2.000}\n}\n}\n"
        );
        assert!(is_valid(&doc));
    }

    #[test]
    fn writer_empty_containers_stay_on_one_line() {
        let mut w = Writer::new();
        w.begin_array("stages");
        w.end_array();
        let doc = w.finish_with_raw("complete", "true");
        assert_eq!(doc, "{\n\"stages\":[],\n\"complete\":true\n}\n");
        assert!(is_valid(&doc));

        let mut w = Writer::new();
        w.field_str("name", "x");
        w.begin_map("stages");
        let doc = w.finish_with_map();
        assert_eq!(doc, "{\n\"name\":\"x\",\n\"stages\":{}\n}\n");
        assert!(is_valid(&doc));
    }

    #[test]
    fn writer_escapes_through_the_shared_policy() {
        let mut w = Writer::new();
        w.field_str("a\"b", "line\nbreak");
        let doc = w.finish_with_raw("ok", "true");
        assert!(doc.contains("\"a\\\"b\":\"line\\nbreak\""));
        assert!(is_valid(&doc));
    }

    #[test]
    fn jsonl_checks_every_line() {
        assert!(is_valid_jsonl("{\"a\":1}\n{\"b\":2}\n"));
        assert!(is_valid_jsonl("\n\n{\"a\":1}\n"));
        assert!(!is_valid_jsonl("{\"a\":1}\n{torn"));
    }
}
