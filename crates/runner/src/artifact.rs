//! Atomic artifact writes: tmp file + fsync + rename.

use std::fs::{self, File};
use std::io::{self, Write as _};
use std::path::Path;

/// Writes `contents` to `path` atomically.
///
/// The bytes go to a sibling `<name>.tmp` file first, which is fsync'd
/// and then renamed over `path`, so a run killed at any instant leaves
/// either the old artifact or the new one — never a truncated hybrid.
/// The parent directory is created if missing and fsync'd best-effort
/// after the rename (directory handles are not fsync-able everywhere).
///
/// # Errors
///
/// Returns any I/O error from creating the directory, writing, syncing,
/// or renaming the file.
///
/// # Examples
///
/// ```
/// let dir = std::env::temp_dir().join("socnet-runner-doc-write-atomic");
/// let path = dir.join("data.csv");
/// socnet_runner::write_atomic(&path, b"a,b\n1,2\n").unwrap();
/// assert_eq!(std::fs::read(&path).unwrap(), b"a,b\n1,2\n");
/// # std::fs::remove_file(&path).ok();
/// ```
pub fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    let dir = match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p,
        _ => Path::new("."),
    };
    fs::create_dir_all(dir)?;
    let file_name = path
        .file_name()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidInput, "path has no file name"))?;
    let tmp = dir.join(format!("{}.tmp", file_name.to_string_lossy()));
    {
        let mut f = File::create(&tmp)?;
        f.write_all(contents)?;
        f.sync_all()?;
    }
    if let Err(e) = fs::rename(&tmp, path) {
        fs::remove_file(&tmp).ok();
        return Err(e);
    }
    if let Ok(d) = File::open(dir) {
        let _ = d.sync_all();
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> std::path::PathBuf {
        std::env::temp_dir()
            .join("socnet-runner-artifact-tests")
            .join(name)
    }

    #[test]
    fn writes_and_reads_back() {
        let path = scratch("basic.csv");
        write_atomic(&path, b"hello").expect("write");
        assert_eq!(fs::read(&path).expect("read"), b"hello");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn replaces_existing_content_entirely() {
        let path = scratch("replace.csv");
        write_atomic(&path, b"a much longer first version").expect("first");
        write_atomic(&path, b"short").expect("second");
        assert_eq!(fs::read(&path).expect("read"), b"short");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn leaves_no_tmp_file_behind() {
        let path = scratch("clean.csv");
        write_atomic(&path, b"x").expect("write");
        let tmp = scratch("clean.csv.tmp");
        assert!(!tmp.exists(), "tmp file must be renamed away");
        fs::remove_file(&path).ok();
    }

    #[test]
    fn rejects_path_without_file_name() {
        let err = write_atomic(Path::new("/"), b"x").unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
    }

    #[test]
    fn bare_file_name_lands_in_cwd_rules_but_still_works() {
        // A parent-less path is treated as relative to ".".
        let dir = scratch("cwd-sim");
        fs::create_dir_all(&dir).expect("mkdir");
        let path = dir.join("rel.csv");
        write_atomic(&path, b"1").expect("write");
        assert!(path.exists());
        fs::remove_file(&path).ok();
    }
}
