//! Cooperative cancellation tokens with optional deadlines.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a [`CancelToken`] reports itself cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CancelCause {
    /// [`CancelToken::cancel`] was called — a user interrupt or a
    /// dependent stage's decision to stop.
    Cancelled,
    /// The token's deadline (time budget) passed.
    DeadlineExceeded,
}

#[derive(Debug)]
struct Inner {
    flag: AtomicBool,
    deadline: Option<Instant>,
    parent: Option<CancelToken>,
}

/// A cheaply clonable cancellation token threaded through per-unit loops.
///
/// Workers poll [`is_cancelled`](CancelToken::is_cancelled) (an atomic
/// load plus at most one clock read) at natural yield points — once per
/// walk step, per BFS, per trial — and bail out cooperatively. Tokens
/// form a tree: a child created with [`child_with_budget`]
/// (CancelToken::child_with_budget) observes its parent's cancellation
/// *and* its own tighter deadline, which is how a multi-figure `report`
/// run gives each figure a bounded slice of the total budget.
///
/// # Examples
///
/// ```
/// use socnet_runner::{CancelCause, CancelToken};
///
/// let token = CancelToken::new();
/// assert!(!token.is_cancelled());
/// token.cancel();
/// assert_eq!(token.cause(), Some(CancelCause::Cancelled));
/// ```
#[derive(Debug, Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl CancelToken {
    /// A fresh token that never cancels on its own.
    pub fn new() -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: None,
                parent: None,
            }),
        }
    }

    /// A token that reports [`CancelCause::DeadlineExceeded`] once
    /// `budget` has elapsed from now.
    pub fn with_budget(budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                parent: None,
            }),
        }
    }

    /// A child observing this token's cancellation plus its own deadline
    /// `budget` from now. Cancelling the child does not affect the parent.
    pub fn child_with_budget(&self, budget: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                flag: AtomicBool::new(false),
                deadline: Instant::now().checked_add(budget),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.inner.flag.store(true, Ordering::Release);
    }

    /// Why the token is cancelled, or `None` if it is still live.
    ///
    /// An explicit [`cancel`](CancelToken::cancel) takes precedence over
    /// an expired deadline, and a token's own state over its parent's.
    pub fn cause(&self) -> Option<CancelCause> {
        if self.inner.flag.load(Ordering::Acquire) {
            return Some(CancelCause::Cancelled);
        }
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                return Some(CancelCause::DeadlineExceeded);
            }
        }
        self.inner.parent.as_ref().and_then(CancelToken::cause)
    }

    /// Whether the token (or any ancestor) is cancelled or past deadline.
    pub fn is_cancelled(&self) -> bool {
        self.cause().is_some()
    }

    /// The token's own deadline, if it has one.
    pub fn deadline(&self) -> Option<Instant> {
        self.inner.deadline
    }
}

impl Default for CancelToken {
    fn default() -> Self {
        CancelToken::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_token_is_live() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.cause(), None);
        assert_eq!(t.deadline(), None);
    }

    #[test]
    fn cancel_is_sticky_and_shared_across_clones() {
        let t = CancelToken::new();
        let u = t.clone();
        t.cancel();
        t.cancel();
        assert_eq!(u.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn zero_budget_expires_immediately() {
        let t = CancelToken::with_budget(Duration::ZERO);
        assert_eq!(t.cause(), Some(CancelCause::DeadlineExceeded));
    }

    #[test]
    fn generous_budget_stays_live() {
        let t = CancelToken::with_budget(Duration::from_secs(3600));
        assert!(!t.is_cancelled());
        assert!(t.deadline().is_some());
    }

    #[test]
    fn child_sees_parent_cancellation() {
        let parent = CancelToken::new();
        let child = parent.child_with_budget(Duration::from_secs(3600));
        assert!(!child.is_cancelled());
        parent.cancel();
        assert_eq!(child.cause(), Some(CancelCause::Cancelled));
    }

    #[test]
    fn child_deadline_does_not_leak_to_parent() {
        let parent = CancelToken::new();
        let child = parent.child_with_budget(Duration::ZERO);
        assert_eq!(child.cause(), Some(CancelCause::DeadlineExceeded));
        assert!(!parent.is_cancelled());
        child.cancel();
        assert!(!parent.is_cancelled());
    }

    #[test]
    fn explicit_cancel_beats_deadline() {
        let t = CancelToken::with_budget(Duration::ZERO);
        t.cancel();
        assert_eq!(t.cause(), Some(CancelCause::Cancelled));
    }
}
