//! A long-lived panic-isolated job pool with a graceful drain path.
//!
//! [`run_units`](crate::run_units) is a *batch* engine: it owns its
//! scoped workers for exactly one stage and joins them before
//! returning. A serving process needs the opposite shape — workers that
//! outlive any one request, accept jobs for hours, and then shut down
//! *gracefully*: stop intake, finish what is in flight, and account for
//! whatever had to be abandoned. [`Pool`] is that long-lived engine and
//! [`Pool::drain`] is the shutdown path; every job still executes under
//! `catch_unwind`, so a panicking job takes down neither its worker
//! thread nor the process.

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::{obs, Metrics};

type Job = Box<dyn FnOnce() + Send + 'static>;

#[derive(Default)]
struct State {
    queue: VecDeque<Job>,
    accepting: bool,
    /// Set by a timed-out drain: workers abandon the queue and exit.
    shutdown: bool,
    in_flight: usize,
    finished: u64,
    panicked: u64,
}

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is queued or shutdown is flagged.
    work: Condvar,
    /// Signalled when a job finishes (drain waits on this).
    idle: Condvar,
}

fn lock(shared: &Shared) -> MutexGuard<'_, State> {
    shared.state.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

/// Submitting to a pool that has started draining.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolClosed;

impl std::fmt::Display for PoolClosed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pool is draining and no longer accepts jobs")
    }
}

impl std::error::Error for PoolClosed {}

/// What [`Pool::drain`] observed on the way down.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrainReport {
    /// Jobs that ran to completion over the pool's whole lifetime
    /// (panicked jobs count: their worker survived and moved on).
    pub finished: u64,
    /// Of `finished`, how many panicked inside `catch_unwind`.
    pub panicked: u64,
    /// Jobs abandoned by the drain: still queued when the deadline
    /// expired, plus any still running when the drain gave up waiting.
    pub abandoned: usize,
    /// Whether the deadline expired before the pool went idle.
    pub timed_out: bool,
    /// How long the drain itself took.
    pub wall: Duration,
}

/// A persistent panic-isolated worker pool.
///
/// Jobs are opaque `FnOnce()` closures — result delivery is the
/// caller's business (the property cache parks waiters on its own
/// condvar, tests use channels). The pool guarantees isolation (a
/// panicking job is caught and counted) and a drain path.
///
/// # Examples
///
/// ```
/// use std::sync::atomic::{AtomicU32, Ordering};
/// use std::sync::Arc;
/// use std::time::Duration;
/// use socnet_runner::Pool;
///
/// let pool = Pool::new(2);
/// let hits = Arc::new(AtomicU32::new(0));
/// for _ in 0..8 {
///     let hits = hits.clone();
///     pool.submit(move || {
///         hits.fetch_add(1, Ordering::Relaxed);
///     }).expect("pool is accepting");
/// }
/// let report = pool.drain(Duration::from_secs(5));
/// assert_eq!(hits.load(Ordering::Relaxed), 8);
/// assert_eq!(report.finished, 8);
/// assert_eq!(report.abandoned, 0);
/// assert!(!report.timed_out);
/// ```
pub struct Pool {
    shared: Arc<Shared>,
    /// Behind a lock so `drain` works through `&self` — a server can
    /// share the pool via `Arc` and still shut it down gracefully.
    workers: Mutex<Vec<JoinHandle<()>>>,
    threads: usize,
}

impl Pool {
    /// Spawns a pool with `threads` workers (at least one).
    pub fn new(threads: usize) -> Pool {
        let threads = threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State { accepting: true, ..State::default() }),
            work: Condvar::new(),
            idle: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("socnet-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { shared, workers: Mutex::new(workers), threads }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Jobs currently queued or running.
    pub fn backlog(&self) -> usize {
        let s = lock(&self.shared);
        s.queue.len() + s.in_flight
    }

    /// Enqueues one job.
    ///
    /// # Errors
    ///
    /// Returns [`PoolClosed`] once [`drain`](Pool::drain) has stopped
    /// intake.
    pub fn submit(&self, job: impl FnOnce() + Send + 'static) -> Result<(), PoolClosed> {
        let mut s = lock(&self.shared);
        if !s.accepting {
            return Err(PoolClosed);
        }
        s.queue.push_back(Box::new(job));
        drop(s);
        Metrics::global().incr("pool.submitted", 1);
        self.shared.work.notify_one();
        Ok(())
    }

    /// Gracefully shuts the pool down: stops intake immediately, waits
    /// up to `deadline` for queued and in-flight jobs to finish, then
    /// abandons whatever remains and reports it.
    ///
    /// Workers stuck inside a job past the deadline are detached, not
    /// joined — a hung request must not be able to hang the shutdown.
    /// Draining twice is a no-op that reports the final counters.
    pub fn drain(&self, deadline: Duration) -> DrainReport {
        let start = Instant::now();
        {
            let mut s = lock(&self.shared);
            s.accepting = false;
        }
        // Wake sleepers so they observe the closed intake and exit.
        self.shared.work.notify_all();

        let mut timed_out = false;
        {
            let mut s = lock(&self.shared);
            while !(s.queue.is_empty() && s.in_flight == 0) {
                let elapsed = start.elapsed();
                if elapsed >= deadline {
                    timed_out = true;
                    break;
                }
                let (guard, _) = self
                    .shared
                    .idle
                    .wait_timeout(s, deadline - elapsed)
                    .unwrap_or_else(|poisoned| poisoned.into_inner());
                s = guard;
            }
        }

        let (finished, panicked, abandoned) = {
            let mut s = lock(&self.shared);
            s.shutdown = true;
            let abandoned = s.queue.len() + s.in_flight;
            s.queue.clear();
            (s.finished, s.panicked, abandoned)
        };
        self.shared.work.notify_all();
        {
            let mut workers =
                self.workers.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
            if timed_out {
                // Detach: a job that never returns must not block
                // shutdown.
                workers.clear();
            } else {
                for worker in workers.drain(..) {
                    worker.join().ok();
                }
            }
        }
        let report = DrainReport {
            finished,
            panicked,
            abandoned,
            timed_out,
            wall: start.elapsed(),
        };
        Metrics::global().incr("pool.drains", 1);
        let fields = [
            ("finished", report.finished.into()),
            ("abandoned", (report.abandoned as u64).into()),
            ("timed_out", report.timed_out.into()),
            ("wall_s", report.wall.as_secs_f64().into()),
        ];
        if report.abandoned > 0 {
            obs::warn("pool.drain", &fields);
        } else {
            obs::debug("pool.drain", &fields);
        }
        report
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        let live = !self
            .workers
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner())
            .is_empty();
        if live {
            // Best-effort: an idle pool joins instantly, a busy one is
            // abandoned rather than hanging the drop.
            self.drain(Duration::ZERO);
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut s = lock(shared);
            loop {
                if s.shutdown {
                    return;
                }
                if let Some(job) = s.queue.pop_front() {
                    s.in_flight += 1;
                    break job;
                }
                if !s.accepting {
                    return;
                }
                s = shared.work.wait(s).unwrap_or_else(|poisoned| poisoned.into_inner());
            }
        };
        let outcome = catch_unwind(AssertUnwindSafe(job));
        {
            let mut s = lock(shared);
            s.in_flight -= 1;
            s.finished += 1;
            if outcome.is_err() {
                s.panicked += 1;
            }
        }
        if outcome.is_err() {
            Metrics::global().incr("pool.job_panics", 1);
        }
        shared.idle.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU32, Ordering};
    use std::sync::mpsc;

    #[test]
    fn jobs_run_and_drain_reports_them() {
        let pool = Pool::new(3);
        assert_eq!(pool.threads(), 3);
        let done = Arc::new(AtomicU32::new(0));
        for _ in 0..20 {
            let done = done.clone();
            pool.submit(move || {
                done.fetch_add(1, Ordering::Relaxed);
            })
            .expect("accepting");
        }
        let report = pool.drain(Duration::from_secs(10));
        assert_eq!(done.load(Ordering::Relaxed), 20);
        assert_eq!(report.finished, 20);
        assert_eq!(report.abandoned, 0);
        assert!(!report.timed_out);
    }

    #[test]
    fn zero_threads_becomes_one() {
        let pool = Pool::new(0);
        assert_eq!(pool.threads(), 1);
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send(7).unwrap()).expect("accepting");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), 7);
        pool.drain(Duration::from_secs(5));
    }

    #[test]
    fn submit_after_drain_is_rejected() {
        let pool = Pool::new(1);
        pool.drain(Duration::from_secs(1));
        assert_eq!(pool.submit(|| {}), Err(PoolClosed));
        // Second drain is a calm no-op.
        let report = pool.drain(Duration::from_secs(1));
        assert_eq!(report.abandoned, 0);
    }

    #[test]
    fn panicking_job_does_not_kill_its_worker() {
        let pool = Pool::new(1);
        pool.submit(|| panic!("poisoned job")).expect("accepting");
        let (tx, rx) = mpsc::channel();
        pool.submit(move || tx.send("alive").unwrap()).expect("accepting");
        assert_eq!(rx.recv_timeout(Duration::from_secs(5)).unwrap(), "alive");
        let report = pool.drain(Duration::from_secs(5));
        assert_eq!(report.finished, 2);
        assert_eq!(report.panicked, 1);
    }

    #[test]
    fn expired_drain_abandons_queued_jobs() {
        let pool = Pool::new(1);
        // Gate the single worker so the queue backs up deterministically.
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (started_tx, started_rx) = mpsc::channel();
        {
            let gate = gate.clone();
            pool.submit(move || {
                started_tx.send(()).unwrap();
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .expect("accepting");
        }
        let ran = Arc::new(AtomicU32::new(0));
        for _ in 0..4 {
            let ran = ran.clone();
            pool.submit(move || {
                ran.fetch_add(1, Ordering::Relaxed);
            })
            .expect("accepting");
        }
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        let report = pool.drain(Duration::ZERO);
        assert!(report.timed_out);
        // 4 queued + 1 in flight, none of the queued ones ran.
        assert_eq!(report.abandoned, 5);
        assert_eq!(ran.load(Ordering::Relaxed), 0);
        // Unblock the detached worker so the test exits cleanly.
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
    }

    #[test]
    fn backlog_counts_queued_and_running() {
        let pool = Pool::new(1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let (started_tx, started_rx) = mpsc::channel();
        {
            let gate = gate.clone();
            pool.submit(move || {
                started_tx.send(()).unwrap();
                let (open, cv) = &*gate;
                let mut open = open.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
            })
            .expect("accepting");
        }
        pool.submit(|| {}).expect("accepting");
        started_rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(pool.backlog(), 2);
        let (open, cv) = &*gate;
        *open.lock().unwrap() = true;
        cv.notify_all();
        let report = pool.drain(Duration::from_secs(5));
        assert_eq!(report.abandoned, 0);
        assert_eq!(pool.backlog(), 0);
    }
}
