//! Per-stage accounting of what a fault-tolerant run actually did.

use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

use crate::write_atomic;

/// What happened to one unit of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnitStatus {
    /// The unit ran to completion (possibly after retries).
    Completed,
    /// The unit was restored from a checkpoint journal, not recomputed.
    Resumed,
    /// Every attempt failed (panic or reported error).
    Failed,
    /// The run was cancelled before or during the unit.
    Cancelled,
    /// The stage's time budget expired before or during the unit.
    TimedOut,
}

impl UnitStatus {
    /// A fixed-width, uppercase label for report rendering.
    pub fn label(self) -> &'static str {
        match self {
            UnitStatus::Completed => "completed",
            UnitStatus::Resumed => "resumed",
            UnitStatus::Failed => "FAILED",
            UnitStatus::Cancelled => "cancelled",
            UnitStatus::TimedOut => "timed-out",
        }
    }

    /// Whether this status means the unit's output is available.
    pub fn has_output(self) -> bool {
        matches!(self, UnitStatus::Completed | UnitStatus::Resumed)
    }
}

/// The record of one unit of work.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnitRecord {
    /// Stable identifier of the unit (also the checkpoint journal key).
    pub id: String,
    /// Outcome.
    pub status: UnitStatus,
    /// Number of attempts made (0 when never started).
    pub attempts: u32,
    /// The last error message for failed units.
    pub error: Option<String>,
    /// Wall time the unit's attempts took (zero when never started or
    /// restored from a checkpoint).
    pub wall: Duration,
}

impl UnitRecord {
    /// A completed unit after `attempts` attempts.
    pub fn completed(id: impl Into<String>, attempts: u32) -> Self {
        UnitRecord {
            id: id.into(),
            status: UnitStatus::Completed,
            attempts,
            error: None,
            wall: Duration::ZERO,
        }
    }

    /// A unit restored from a checkpoint journal.
    pub fn resumed(id: impl Into<String>) -> Self {
        UnitRecord {
            id: id.into(),
            status: UnitStatus::Resumed,
            attempts: 0,
            error: None,
            wall: Duration::ZERO,
        }
    }

    /// A unit whose every attempt failed.
    pub fn failed(id: impl Into<String>, attempts: u32, error: impl Into<String>) -> Self {
        UnitRecord {
            id: id.into(),
            status: UnitStatus::Failed,
            attempts,
            error: Some(error.into()),
            wall: Duration::ZERO,
        }
    }

    /// A unit pre-empted by cancellation or a deadline.
    pub fn stopped(id: impl Into<String>, status: UnitStatus, attempts: u32) -> Self {
        UnitRecord {
            id: id.into(),
            status,
            attempts,
            error: None,
            wall: Duration::ZERO,
        }
    }

    /// Attaches the unit's measured wall time (builder style).
    pub fn with_wall(mut self, wall: Duration) -> Self {
        self.wall = wall;
        self
    }
}

/// Unit-level accounting for one stage of a run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageReport {
    /// The stage name (e.g. `fig1a`).
    pub stage: String,
    /// One record per unit, in unit order.
    pub units: Vec<UnitRecord>,
    /// Wall time the stage took.
    pub wall: Duration,
}

impl StageReport {
    /// An empty report for `stage`.
    pub fn new(stage: impl Into<String>) -> Self {
        StageReport {
            stage: stage.into(),
            units: Vec::new(),
            wall: Duration::ZERO,
        }
    }

    /// Number of units with the given status.
    pub fn count(&self, status: UnitStatus) -> usize {
        self.units.iter().filter(|u| u.status == status).count()
    }

    /// Units that ran to completion this run.
    pub fn completed(&self) -> usize {
        self.count(UnitStatus::Completed)
    }

    /// Units restored from a checkpoint.
    pub fn resumed(&self) -> usize {
        self.count(UnitStatus::Resumed)
    }

    /// Units whose every attempt failed.
    pub fn failed(&self) -> usize {
        self.count(UnitStatus::Failed)
    }

    /// Units pre-empted by explicit cancellation.
    pub fn cancelled(&self) -> usize {
        self.count(UnitStatus::Cancelled)
    }

    /// Units pre-empted by the time budget.
    pub fn timed_out(&self) -> usize {
        self.count(UnitStatus::TimedOut)
    }

    /// Total number of units.
    pub fn total(&self) -> usize {
        self.units.len()
    }

    /// Whether every unit's output is available (completed or resumed).
    pub fn is_complete(&self) -> bool {
        self.units.iter().all(|u| u.status.has_output())
    }

    /// Fraction of units with output available; 1.0 for an empty stage.
    pub fn coverage(&self) -> f64 {
        if self.units.is_empty() {
            return 1.0;
        }
        let ok = self.units.iter().filter(|u| u.status.has_output()).count();
        ok as f64 / self.units.len() as f64
    }

    /// The timed unit with the longest wall clock, if any unit was timed.
    pub fn slowest_unit(&self) -> Option<&UnitRecord> {
        self.units
            .iter()
            .filter(|u| u.wall > Duration::ZERO)
            .max_by_key(|u| u.wall)
    }

    /// One-line summary, e.g.
    /// `fig1a: 6/7 ok (5 computed, 1 resumed), 1 FAILED [12.3s] coverage=85.7%`.
    pub fn summary_line(&self) -> String {
        let ok = self.completed() + self.resumed();
        let mut line = format!(
            "{}: {}/{} ok ({} computed, {} resumed)",
            self.stage,
            ok,
            self.total(),
            self.completed(),
            self.resumed()
        );
        for (count, label) in [
            (self.failed(), "FAILED"),
            (self.cancelled(), "cancelled"),
            (self.timed_out(), "timed-out"),
        ] {
            if count > 0 {
                line.push_str(&format!(", {count} {label}"));
            }
        }
        line.push_str(&format!(
            " [{:.1}s] coverage={:.1}%",
            self.wall.as_secs_f64(),
            self.coverage() * 100.0
        ));
        line
    }
}

/// The full accounting of one experiment run, one entry per stage.
///
/// # Examples
///
/// ```
/// use socnet_runner::{RunReport, StageReport, UnitRecord};
///
/// let mut stage = StageReport::new("fig1a");
/// stage.units.push(UnitRecord::completed("Wiki-vote", 1));
/// stage.units.push(UnitRecord::failed("Enron", 2, "panicked: bad walk"));
/// let mut report = RunReport::new();
/// report.push(stage);
/// assert!(!report.is_complete());
/// assert!(report.render().contains("Enron"));
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RunReport {
    /// Per-stage reports, in execution order.
    pub stages: Vec<StageReport>,
}

impl RunReport {
    /// An empty report.
    pub fn new() -> Self {
        RunReport { stages: Vec::new() }
    }

    /// Appends a stage's report.
    pub fn push(&mut self, stage: StageReport) {
        self.stages.push(stage);
    }

    /// Whether every stage has full coverage.
    pub fn is_complete(&self) -> bool {
        self.stages.iter().all(StageReport::is_complete)
    }

    /// Renders the report: one summary line per stage, plus an itemized
    /// line for every unit that did not produce output.
    pub fn render(&self) -> String {
        let mut out = String::from("== run report ==\n");
        if self.stages.is_empty() {
            out.push_str("(no stages ran)\n");
            return out;
        }
        for stage in &self.stages {
            out.push_str(&stage.summary_line());
            out.push('\n');
            if let Some(slow) = stage.slowest_unit() {
                out.push_str(&format!(
                    "  slowest unit: {} [{:.1}s]\n",
                    slow.id,
                    slow.wall.as_secs_f64()
                ));
            }
            for unit in &stage.units {
                if unit.status.has_output() {
                    continue;
                }
                out.push_str(&format!(
                    "  {} {} after {} attempt{}",
                    unit.status.label(),
                    unit.id,
                    unit.attempts,
                    if unit.attempts == 1 { "" } else { "s" }
                ));
                if let Some(err) = &unit.error {
                    out.push_str(&format!(": {err}"));
                }
                out.push('\n');
            }
        }
        if !self.is_complete() {
            out.push_str("DEGRADED: artifacts cover only the units listed as ok above\n");
        }
        out
    }

    /// Writes the rendered report atomically to `<dir>/<stem>_report.txt`
    /// and returns the path.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the directory or file.
    pub fn write_beside_artifacts(&self, dir: &Path, stem: &str) -> io::Result<PathBuf> {
        let path = dir.join(format!("{stem}_report.txt"));
        write_atomic(&path, self.render().as_bytes())?;
        Ok(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stage() -> StageReport {
        let mut s = StageReport::new("demo");
        s.units.push(UnitRecord::completed("a", 1));
        s.units.push(UnitRecord::resumed("b"));
        s.units.push(UnitRecord::failed("c", 2, "panicked: boom"));
        s.units
            .push(UnitRecord::stopped("d", UnitStatus::Cancelled, 0));
        s.units
            .push(UnitRecord::stopped("e", UnitStatus::TimedOut, 1));
        s.wall = Duration::from_millis(1500);
        s
    }

    #[test]
    fn counts_partition_the_units() {
        let s = sample_stage();
        assert_eq!(s.completed(), 1);
        assert_eq!(s.resumed(), 1);
        assert_eq!(s.failed(), 1);
        assert_eq!(s.cancelled(), 1);
        assert_eq!(s.timed_out(), 1);
        assert_eq!(s.total(), 5);
        assert!(!s.is_complete());
        assert!((s.coverage() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn summary_line_mentions_every_failure_class() {
        let line = sample_stage().summary_line();
        assert!(line.contains("2/5 ok"), "line: {line}");
        assert!(line.contains("1 FAILED"));
        assert!(line.contains("1 cancelled"));
        assert!(line.contains("1 timed-out"));
        assert!(line.contains("[1.5s]"));
        assert!(line.contains("coverage=40.0%"), "line: {line}");
    }

    #[test]
    fn render_itemizes_only_failed_units() {
        let mut r = RunReport::new();
        r.push(sample_stage());
        let text = r.render();
        assert!(text.contains("FAILED c after 2 attempts: panicked: boom"));
        assert!(text.contains("cancelled d"));
        assert!(text.contains("timed-out e"));
        assert!(
            !text.contains("completed a after"),
            "ok units are not itemized"
        );
        assert!(text.contains("DEGRADED"));
    }

    #[test]
    fn complete_report_is_not_degraded() {
        let mut s = StageReport::new("ok");
        s.units.push(UnitRecord::completed("a", 1));
        let mut r = RunReport::new();
        r.push(s);
        assert!(r.is_complete());
        assert!(!r.render().contains("DEGRADED"));
    }

    #[test]
    fn empty_stage_has_full_coverage() {
        let s = StageReport::new("empty");
        assert!(s.is_complete());
        assert_eq!(s.coverage(), 1.0);
        assert_eq!(
            RunReport::new().render(),
            "== run report ==\n(no stages ran)\n"
        );
    }

    #[test]
    fn slowest_unit_tracks_per_unit_wall() {
        let mut s = StageReport::new("timed");
        s.units
            .push(UnitRecord::completed("fast", 1).with_wall(Duration::from_millis(10)));
        s.units
            .push(UnitRecord::completed("slow", 1).with_wall(Duration::from_millis(300)));
        s.units.push(UnitRecord::resumed("untimed"));
        assert_eq!(s.slowest_unit().expect("timed units").id, "slow");

        let mut r = RunReport::new();
        r.push(s);
        assert!(r.render().contains("slowest unit: slow [0.3s]"), "{}", r.render());

        let untimed = StageReport::new("empty");
        assert!(untimed.slowest_unit().is_none());
    }

    #[test]
    fn report_writes_atomically() {
        let dir = std::env::temp_dir().join("socnet-runner-report-test");
        let mut r = RunReport::new();
        r.push(sample_stage());
        let path = r.write_beside_artifacts(&dir, "demo").expect("write");
        let text = std::fs::read_to_string(&path).expect("read");
        assert_eq!(text, r.render());
        assert!(path.ends_with("demo_report.txt"));
        std::fs::remove_file(path).ok();
    }
}
