//! Checkpoint payload codecs for the unit outputs the binaries produce.

/// A value that can round-trip through a checkpoint journal record.
///
/// Implementations must be **lossless**: resuming a run replays decoded
/// payloads in place of recomputation, and the acceptance bar is
/// byte-identical artifacts. That is why `f64` travels as its IEEE-754
/// bit pattern in hex rather than a decimal rendering — `0.1 + 0.2`
/// must come back as exactly the double that was computed, not a
/// near-miss that formats differently.
///
/// `decode_payload` returns `None` on malformed input; the caller then
/// treats the unit as not-yet-computed (a corrupt record costs one
/// unit, never a crash).
///
/// # Examples
///
/// ```
/// use socnet_runner::Payload;
///
/// let curve = vec![0.5_f64, 0.1 + 0.2, f64::NAN];
/// let encoded = curve.encode_payload();
/// let back = Vec::<f64>::decode_payload(&encoded).unwrap();
/// assert_eq!(back[1].to_bits(), (0.1_f64 + 0.2).to_bits());
/// assert!(back[2].is_nan());
/// ```
pub trait Payload: Sized {
    /// Encodes the value as a single-line-safe string (the journal
    /// layer escapes control characters, so any `String` is fine).
    fn encode_payload(&self) -> String;

    /// Decodes a value previously produced by
    /// [`encode_payload`](Payload::encode_payload), or `None` if the
    /// input is malformed.
    fn decode_payload(s: &str) -> Option<Self>;
}

impl Payload for String {
    fn encode_payload(&self) -> String {
        self.clone()
    }

    fn decode_payload(s: &str) -> Option<Self> {
        Some(s.to_string())
    }
}

impl Payload for () {
    fn encode_payload(&self) -> String {
        String::new()
    }

    fn decode_payload(_s: &str) -> Option<Self> {
        Some(())
    }
}

impl Payload for f64 {
    fn encode_payload(&self) -> String {
        format!("{:016x}", self.to_bits())
    }

    fn decode_payload(s: &str) -> Option<Self> {
        if s.len() != 16 {
            return None;
        }
        u64::from_str_radix(s, 16).ok().map(f64::from_bits)
    }
}

impl Payload for u64 {
    fn encode_payload(&self) -> String {
        self.to_string()
    }

    fn decode_payload(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

impl Payload for usize {
    fn encode_payload(&self) -> String {
        self.to_string()
    }

    fn decode_payload(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

impl Payload for u32 {
    fn encode_payload(&self) -> String {
        self.to_string()
    }

    fn decode_payload(s: &str) -> Option<Self> {
        s.parse().ok()
    }
}

// Element-level escaping for sequence payloads: the journal layer
// escapes the whole record, but element separators inside a payload
// need their own layer so cells may contain commas, pipes, newlines.
fn escape_elem(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn unescape_elem(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Splits on unescaped `sep`, honoring backslash escapes.
fn split_escaped(s: &str, sep: char) -> Vec<String> {
    let mut parts = Vec::new();
    let mut cur = String::new();
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push('\\');
            cur.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == sep {
            parts.push(std::mem::take(&mut cur));
        } else {
            cur.push(c);
        }
    }
    if escaped {
        cur.push('\\'); // trailing backslash; unescape_elem will reject it
    }
    parts.push(cur);
    parts
}

/// `"{n};"` length prefix so an empty vec and a vec of one empty string
/// stay distinguishable.
fn strip_len_prefix(s: &str) -> Option<(usize, &str)> {
    let (n, rest) = s.split_once(';')?;
    Some((n.parse().ok()?, rest))
}

impl Payload for Vec<String> {
    fn encode_payload(&self) -> String {
        let cells: Vec<String> = self.iter().map(|c| escape_elem(c)).collect();
        format!("{};{}", self.len(), cells.join("\t"))
    }

    fn decode_payload(s: &str) -> Option<Self> {
        let (n, rest) = strip_len_prefix(s)?;
        if n == 0 {
            return rest.is_empty().then(Vec::new);
        }
        let parts = split_escaped(rest, '\t');
        if parts.len() != n {
            return None;
        }
        parts.iter().map(|p| unescape_elem(p)).collect()
    }
}

impl Payload for Vec<Vec<String>> {
    fn encode_payload(&self) -> String {
        let rows: Vec<String> = self
            .iter()
            .map(|r| escape_elem(&r.encode_payload()))
            .collect();
        format!("{};{}", self.len(), rows.join("\n"))
    }

    fn decode_payload(s: &str) -> Option<Self> {
        let (n, rest) = strip_len_prefix(s)?;
        if n == 0 {
            return rest.is_empty().then(Vec::new);
        }
        let parts = split_escaped(rest, '\n');
        if parts.len() != n {
            return None;
        }
        parts
            .iter()
            .map(|p| Vec::<String>::decode_payload(&unescape_elem(p)?))
            .collect()
    }
}

impl Payload for Vec<f64> {
    fn encode_payload(&self) -> String {
        let vals: Vec<String> = self
            .iter()
            .map(|v| format!("{:016x}", v.to_bits()))
            .collect();
        format!("{};{}", self.len(), vals.join(","))
    }

    fn decode_payload(s: &str) -> Option<Self> {
        let (n, rest) = strip_len_prefix(s)?;
        if n == 0 {
            return rest.is_empty().then(Vec::new);
        }
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != n {
            return None;
        }
        parts.iter().map(|p| f64::decode_payload(p)).collect()
    }
}

impl Payload for Vec<(u64, f64)> {
    fn encode_payload(&self) -> String {
        let vals: Vec<String> = self
            .iter()
            .map(|(k, v)| format!("{}:{:016x}", k, v.to_bits()))
            .collect();
        format!("{};{}", self.len(), vals.join(","))
    }

    fn decode_payload(s: &str) -> Option<Self> {
        let (n, rest) = strip_len_prefix(s)?;
        if n == 0 {
            return rest.is_empty().then(Vec::new);
        }
        let parts: Vec<&str> = rest.split(',').collect();
        if parts.len() != n {
            return None;
        }
        parts
            .iter()
            .map(|p| {
                let (k, v) = p.split_once(':')?;
                Some((k.parse().ok()?, f64::decode_payload(v)?))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Payload + PartialEq + std::fmt::Debug>(value: T) {
        let encoded = value.encode_payload();
        let decoded = T::decode_payload(&encoded).expect("decode");
        assert_eq!(decoded, value, "encoded as {encoded:?}");
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(String::from("Wiki-vote"));
        round_trip(String::new());
        round_trip(());
        round_trip(0.1_f64 + 0.2);
        round_trip(f64::NEG_INFINITY);
        round_trip(42_u64);
        round_trip(7_usize);
        round_trip(3_u32);
    }

    #[test]
    fn nan_round_trips_bitwise() {
        let encoded = f64::NAN.encode_payload();
        let back = f64::decode_payload(&encoded).expect("decode");
        assert_eq!(back.to_bits(), f64::NAN.to_bits());
    }

    #[test]
    fn string_vectors_round_trip_with_separators_in_cells() {
        round_trip(Vec::<String>::new());
        round_trip(vec![String::new()]);
        round_trip(vec![
            "a".to_string(),
            "b\tc".to_string(),
            "d\ne\\f".to_string(),
        ]);
    }

    #[test]
    fn nested_rows_round_trip() {
        round_trip(Vec::<Vec<String>>::new());
        round_trip(vec![Vec::<String>::new()]);
        round_trip(vec![
            vec!["Wiki-vote".to_string(), "1.5e-3".to_string()],
            vec!["Enron\twith tab".to_string()],
            vec![String::new(), "x\ny".to_string()],
        ]);
    }

    #[test]
    fn float_vectors_round_trip_bitwise() {
        round_trip(Vec::<f64>::new());
        round_trip(vec![0.5, 0.1 + 0.2, -0.0, f64::INFINITY]);
        let with_nan = vec![f64::NAN, 1.0];
        let back = Vec::<f64>::decode_payload(&with_nan.encode_payload()).expect("decode");
        assert_eq!(back[0].to_bits(), f64::NAN.to_bits());
        assert_eq!(back[1], 1.0);
    }

    #[test]
    fn pair_vectors_round_trip() {
        round_trip(Vec::<(u64, f64)>::new());
        round_trip(vec![(1_u64, 0.5), (1000_u64, 0.1 + 0.2)]);
    }

    #[test]
    fn malformed_inputs_decode_to_none() {
        assert_eq!(Vec::<f64>::decode_payload("nonsense"), None);
        assert_eq!(Vec::<f64>::decode_payload("2;0000000000000000"), None);
        assert_eq!(Vec::<String>::decode_payload("3;a\tb"), None);
        assert_eq!(f64::decode_payload("xyz"), None);
        assert_eq!(f64::decode_payload("3ff"), None);
        assert_eq!(u64::decode_payload("12.5"), None);
        assert_eq!(Vec::<(u64, f64)>::decode_payload("1;no-colon"), None);
        assert_eq!(Vec::<Vec<String>>::decode_payload("1;bad"), None);
    }

    #[test]
    fn empty_and_single_empty_are_distinct() {
        let empty = Vec::<String>::new().encode_payload();
        let one_empty = vec![String::new()].encode_payload();
        assert_ne!(empty, one_empty);
        assert_eq!(
            Vec::<String>::decode_payload(&empty).expect("decode").len(),
            0
        );
        assert_eq!(
            Vec::<String>::decode_payload(&one_empty)
                .expect("decode")
                .len(),
            1
        );
    }
}
