//! Append-only, fsync'd journals of completed units.

use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Read as _, Seek as _, SeekFrom, Write as _};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const HEADER_TAG: &str = "#socnet-ckpt v1";

/// A checkpoint journal: one fsync'd record per completed unit.
///
/// The journal is a line-oriented text file. The first line binds it to
/// a **run key** (experiment name plus the parameters that shape the
/// unit set — scale, seed, sources); opening a journal whose key differs
/// resets it, so stale checkpoints can never leak units into a run with
/// different parameters. Each subsequent line is one completed unit:
///
/// ```text
/// #socnet-ckpt v1\t<key>
/// u\t<id>\t<payload>\t<fnv1a64 checksum>
/// ```
///
/// Tabs, newlines, and backslashes inside fields are backslash-escaped.
/// Every [`record`](Checkpoint::record) call appends one line and
/// fsyncs, so a crash loses at most the in-flight unit. On open, the
/// file is scanned front to back and truncated to the last fully valid,
/// newline-terminated record — a torn final write (partial line, bad
/// checksum) costs exactly that one unit, never the journal.
///
/// # Examples
///
/// ```
/// use socnet_runner::Checkpoint;
///
/// let dir = std::env::temp_dir().join("socnet-runner-doc-ckpt");
/// let path = dir.join("fig1.ckpt");
/// # std::fs::remove_file(&path).ok();
/// let ckpt = Checkpoint::open(&path, "fig1 scale=1 seed=7").unwrap();
/// ckpt.record("Wiki-vote", "0.5,0.25").unwrap();
///
/// // A rerun with the same key sees the finished unit.
/// let again = Checkpoint::open(&path, "fig1 scale=1 seed=7").unwrap();
/// assert_eq!(again.get("Wiki-vote").as_deref(), Some("0.5,0.25"));
///
/// // A different key resets the journal.
/// let fresh = Checkpoint::open(&path, "fig1 scale=2 seed=7").unwrap();
/// assert_eq!(fresh.len(), 0);
/// # std::fs::remove_file(&path).ok();
/// ```
#[derive(Debug)]
pub struct Checkpoint {
    path: PathBuf,
    key: String,
    // Both behind one lock: an append and its index update are atomic
    // with respect to concurrent workers recording their own units.
    state: Mutex<State>,
}

#[derive(Debug)]
struct State {
    entries: BTreeMap<String, String>,
    file: File,
}

impl Checkpoint {
    /// Opens (or creates) the journal at `path` for the run `key`.
    ///
    /// Existing records are loaded when the stored key matches; on a key
    /// mismatch, a missing/invalid header, or trailing torn records, the
    /// file is truncated to its last valid state.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the parent directory or
    /// reading/writing the journal file.
    pub fn open(path: &Path, key: &str) -> io::Result<Self> {
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                fs::create_dir_all(dir)?;
            }
        }
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(path)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes)?;

        let header = format!("{HEADER_TAG}\t{}\n", escape(key));
        let mut entries = BTreeMap::new();
        let valid_len = if bytes.starts_with(header.as_bytes()) {
            let body = &bytes[header.len()..];
            let mut len = header.len();
            for line in LineSpans::new(body) {
                match parse_record(&body[line.start..line.end]) {
                    Some((id, payload)) => {
                        entries.insert(id, payload);
                        len = header.len() + line.end + 1; // include the newline
                    }
                    None => break,
                }
            }
            len
        } else {
            0
        };

        let reset = valid_len == 0 && !bytes.is_empty();
        if valid_len != bytes.len() || valid_len == 0 {
            file.set_len(valid_len as u64)?;
            file.seek(SeekFrom::Start(valid_len as u64))?;
            if valid_len == 0 {
                entries.clear();
                file.write_all(header.as_bytes())?;
            }
            file.sync_data()?;
        } else {
            file.seek(SeekFrom::End(0))?;
        }

        if reset {
            crate::obs::info(
                "checkpoint.reset",
                &[
                    ("path", path.display().to_string().into()),
                    ("key", key.into()),
                ],
            );
        }
        crate::obs::debug(
            "checkpoint.open",
            &[
                ("path", path.display().to_string().into()),
                ("entries", entries.len().into()),
            ],
        );

        Ok(Checkpoint {
            path: path.to_path_buf(),
            key: key.to_string(),
            state: Mutex::new(State { entries, file }),
        })
    }

    /// Appends one completed unit and fsyncs the journal.
    ///
    /// The entry is also visible immediately via [`get`](Checkpoint::get);
    /// recording the same id twice keeps the latest payload, matching
    /// the replay semantics of the journal scan.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the append or the fsync.
    pub fn record(&self, id: &str, payload: &str) -> io::Result<()> {
        let body = format!("{}\t{}", escape(id), escape(payload));
        let line = format!("u\t{}\t{:016x}\n", body, fnv1a64(body.as_bytes()));
        let mut state = self.state.lock().expect("checkpoint lock");
        state.file.write_all(line.as_bytes())?;
        state.file.sync_data()?;
        state.entries.insert(id.to_string(), payload.to_string());
        crate::Metrics::global().incr("checkpoint.appends", 1);
        Ok(())
    }

    /// The recorded payload for `id`, if that unit already completed.
    pub fn get(&self, id: &str) -> Option<String> {
        self.state
            .lock()
            .expect("checkpoint lock")
            .entries
            .get(id)
            .cloned()
    }

    /// Whether `id` is already recorded.
    pub fn contains(&self, id: &str) -> bool {
        self.state
            .lock()
            .expect("checkpoint lock")
            .entries
            .contains_key(id)
    }

    /// Number of recorded units.
    pub fn len(&self) -> usize {
        self.state.lock().expect("checkpoint lock").entries.len()
    }

    /// Whether the journal has no recorded units.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The journal's path on disk.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run key this journal is bound to.
    pub fn key(&self) -> &str {
        &self.key
    }
}

/// Byte spans of newline-terminated lines (lines without a trailing
/// newline are not yielded — they are torn writes).
struct LineSpans<'a> {
    bytes: &'a [u8],
    pos: usize,
}

struct Span {
    start: usize,
    end: usize,
}

impl<'a> LineSpans<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        LineSpans { bytes, pos: 0 }
    }
}

impl Iterator for LineSpans<'_> {
    type Item = Span;

    fn next(&mut self) -> Option<Span> {
        let rest = &self.bytes[self.pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let span = Span {
            start: self.pos,
            end: self.pos + nl,
        };
        self.pos += nl + 1;
        Some(span)
    }
}

fn parse_record(line: &[u8]) -> Option<(String, String)> {
    let line = std::str::from_utf8(line).ok()?;
    let rest = line.strip_prefix("u\t")?;
    // Split off the checksum (last tab-separated field, fixed 16 hex).
    let (body, crc_hex) = rest.rsplit_once('\t')?;
    let crc = u64::from_str_radix(crc_hex, 16).ok()?;
    if crc_hex.len() != 16 || fnv1a64(body.as_bytes()) != crc {
        return None;
    }
    let (id_esc, payload_esc) = body.split_once('\t')?;
    Some((unescape(id_esc)?, unescape(payload_esc)?))
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\t' => out.push_str("\\t"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            c => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> Option<String> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('\\') => out.push('\\'),
            Some('t') => out.push('\t'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            _ => return None,
        }
    }
    Some(out)
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf29ce484222325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x100000001b3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("socnet-runner-ckpt-tests");
        fs::create_dir_all(&dir).expect("mkdir");
        dir.join(name)
    }

    fn open_fresh(name: &str, key: &str) -> (PathBuf, Checkpoint) {
        let path = scratch(name);
        fs::remove_file(&path).ok();
        let ckpt = Checkpoint::open(&path, key).expect("open");
        (path, ckpt)
    }

    #[test]
    fn record_then_reopen_resumes() {
        let (path, ckpt) = open_fresh("resume.ckpt", "demo seed=1");
        ckpt.record("a", "1.0,2.0").expect("record");
        ckpt.record("b", "3.0").expect("record");
        drop(ckpt);
        let again = Checkpoint::open(&path, "demo seed=1").expect("reopen");
        assert_eq!(again.len(), 2);
        assert_eq!(again.get("a").as_deref(), Some("1.0,2.0"));
        assert_eq!(again.get("b").as_deref(), Some("3.0"));
        assert!(again.contains("a"));
        assert!(!again.contains("c"));
        fs::remove_file(path).ok();
    }

    #[test]
    fn key_mismatch_resets_journal() {
        let (path, ckpt) = open_fresh("rekey.ckpt", "demo seed=1");
        ckpt.record("a", "1").expect("record");
        drop(ckpt);
        let other = Checkpoint::open(&path, "demo seed=2").expect("reopen");
        assert!(other.is_empty());
        other.record("z", "9").expect("record");
        drop(other);
        // The reset journal carries the new key and the new record.
        let again = Checkpoint::open(&path, "demo seed=2").expect("reopen");
        assert_eq!(again.get("z").as_deref(), Some("9"));
        assert_eq!(again.get("a"), None);
        fs::remove_file(path).ok();
    }

    #[test]
    fn special_characters_round_trip() {
        let (path, ckpt) = open_fresh("escape.ckpt", "key\twith\nweird\\chars");
        let id = "unit\twith\ttabs";
        let payload = "line1\nline2\r\\backslash\\";
        ckpt.record(id, payload).expect("record");
        drop(ckpt);
        let again = Checkpoint::open(&path, "key\twith\nweird\\chars").expect("reopen");
        assert_eq!(again.get(id).as_deref(), Some(payload));
        fs::remove_file(path).ok();
    }

    #[test]
    fn torn_final_write_is_truncated_away() {
        let (path, ckpt) = open_fresh("torn.ckpt", "k");
        ckpt.record("a", "1").expect("record");
        ckpt.record("b", "2").expect("record");
        drop(ckpt);
        let full = fs::read(&path).expect("read");
        // Chop the last record mid-line (drop its trailing 5 bytes).
        fs::write(&path, &full[..full.len() - 5]).expect("write");
        let again = Checkpoint::open(&path, "k").expect("reopen");
        assert_eq!(again.get("a").as_deref(), Some("1"));
        assert_eq!(again.get("b"), None, "torn record must be dropped");
        // The file was repaired: append works and survives reopen.
        again.record("b", "2").expect("re-record");
        drop(again);
        let healed = Checkpoint::open(&path, "k").expect("reopen");
        assert_eq!(healed.len(), 2);
        fs::remove_file(path).ok();
    }

    #[test]
    fn corrupt_checksum_invalidates_the_tail() {
        let (path, ckpt) = open_fresh("crc.ckpt", "k");
        ckpt.record("a", "1").expect("record");
        ckpt.record("b", "2").expect("record");
        drop(ckpt);
        let mut bytes = fs::read(&path).expect("read");
        // Flip a payload byte in the *last* record, leaving its checksum
        // stale; only that record is dropped.
        let last_line_start = bytes[..bytes.len() - 1]
            .iter()
            .rposition(|&b| b == b'\n')
            .map(|i| i + 1)
            .unwrap_or(0);
        bytes[last_line_start + 2] = b'X';
        fs::write(&path, &bytes).expect("write");
        let again = Checkpoint::open(&path, "k").expect("reopen");
        assert_eq!(again.get("a").as_deref(), Some("1"));
        assert!(!again.contains("b"));
        fs::remove_file(path).ok();
    }

    #[test]
    fn garbage_file_is_reset() {
        let path = scratch("garbage.ckpt");
        fs::write(&path, b"this is not a checkpoint\nat all\n").expect("write");
        let ckpt = Checkpoint::open(&path, "k").expect("open");
        assert!(ckpt.is_empty());
        ckpt.record("a", "1").expect("record");
        drop(ckpt);
        let again = Checkpoint::open(&path, "k").expect("reopen");
        assert_eq!(again.get("a").as_deref(), Some("1"));
        fs::remove_file(path).ok();
    }

    /// Property test (hand-rolled LCG, no external deps): whatever
    /// garbage is appended to a valid journal, reopening recovers
    /// exactly the intact prefix of records — never fewer, never an
    /// invented entry — and leaves the file appendable.
    #[test]
    fn torn_write_recovery_property() {
        let mut rng = 0x243f6a8885a308d3u64;
        let mut next = move || {
            rng = rng
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng >> 33
        };
        for case in 0..40 {
            let path = scratch(&format!("prop-{case}.ckpt"));
            fs::remove_file(&path).ok();
            let ckpt = Checkpoint::open(&path, "prop").expect("open");
            let n = (next() % 6) as usize;
            for i in 0..n {
                ckpt.record(&format!("unit-{i}"), &format!("payload-{i}\t{i}"))
                    .expect("record");
            }
            drop(ckpt);
            let mut bytes = fs::read(&path).expect("read");
            let intact_len = bytes.len();
            // Append 0..32 random garbage bytes (may contain newlines,
            // tabs, partial record prefixes).
            let extra = (next() % 33) as usize;
            for _ in 0..extra {
                let b = match next() % 4 {
                    0 => b'\n',
                    1 => b'\t',
                    2 => b'u',
                    _ => (next() % 256) as u8,
                };
                bytes.push(b);
            }
            fs::write(&path, &bytes).expect("write");
            let again = Checkpoint::open(&path, "prop").expect("reopen");
            assert_eq!(again.len(), n, "case {case}: all intact records recovered");
            for i in 0..n {
                assert_eq!(
                    again.get(&format!("unit-{i}")),
                    Some(format!("payload-{i}\t{i}")),
                    "case {case}"
                );
            }
            drop(again);
            let repaired = fs::read(&path).expect("read");
            assert_eq!(
                repaired.len(),
                intact_len,
                "case {case}: truncated to valid prefix"
            );
            fs::remove_file(path).ok();
        }
    }
}
