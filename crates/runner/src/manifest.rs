//! Machine-readable run manifests and bench summaries.
//!
//! [`RunManifest`] captures what one experiment invocation *was* —
//! binary name, arguments, seed, scale, thread count, git revision,
//! hostname, start time — and, when rendered against the final
//! [`RunReport`], what it *did*: per-stage wall, coverage, and one
//! record per unit with an explicit `resumed` marker (a resumed unit's
//! `wall_s` is `0.000` because it was restored, not recomputed — the
//! marker removes the ambiguity with "never timed"). Written atomically
//! to `<out>/run.json` with schema `socnet-run-v1`.
//!
//! [`render_bench`] / [`write_bench`] derive the perf-trajectory
//! summary `BENCH_<name>.json` (schema `socnet-bench-v1`) from the same
//! report: one line per stage mapping to `{wall_s, units, throughput}`,
//! so `scripts/bench-compare.sh` can diff two runs with `awk`.

use std::io;
use std::path::Path;
use std::process::Command;
use std::time::{SystemTime, UNIX_EPOCH};

use crate::json;
use crate::report::{RunReport, StageReport, UnitStatus};
use crate::write_atomic;

fn status_token(status: UnitStatus) -> &'static str {
    match status {
        UnitStatus::Completed => "completed",
        UnitStatus::Resumed => "resumed",
        UnitStatus::Failed => "failed",
        UnitStatus::Cancelled => "cancelled",
        UnitStatus::TimedOut => "timed_out",
    }
}

/// Best-effort short git revision: `SOCNET_GIT_REV` env override, then
/// `git rev-parse --short HEAD`, else `"unknown"`.
pub fn git_rev() -> String {
    if let Ok(rev) = std::env::var("SOCNET_GIT_REV") {
        if !rev.is_empty() {
            return rev;
        }
    }
    Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .map(|out| String::from_utf8_lossy(&out.stdout).trim().to_string())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Best-effort hostname: `HOSTNAME` env, then `/etc/hostname`, else
/// `"unknown"`.
pub fn hostname() -> String {
    if let Ok(name) = std::env::var("HOSTNAME") {
        if !name.is_empty() {
            return name;
        }
    }
    std::fs::read_to_string("/etc/hostname")
        .ok()
        .map(|s| s.trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// The provenance half of a `run.json` manifest, built at run start.
#[derive(Debug, Clone)]
pub struct RunManifest {
    name: String,
    started_unix_ms: u64,
    git_rev: String,
    hostname: String,
    /// `(key, rendered JSON value)` in insertion order.
    args: Vec<(String, String)>,
}

impl RunManifest {
    /// A manifest for the named experiment, capturing git revision,
    /// hostname, and the current time.
    pub fn new(name: impl Into<String>) -> Self {
        let started_unix_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        RunManifest {
            name: name.into(),
            started_unix_ms,
            git_rev: git_rev(),
            hostname: hostname(),
            args: Vec::new(),
        }
    }

    /// Records a string-valued invocation argument.
    pub fn arg_str(&mut self, key: &str, value: &str) -> &mut Self {
        self.args
            .push((key.to_string(), format!("\"{}\"", json::escape(value))));
        self
    }

    /// Records an integer-valued invocation argument.
    pub fn arg_int(&mut self, key: &str, value: u64) -> &mut Self {
        self.args.push((key.to_string(), value.to_string()));
        self
    }

    /// Records a float-valued invocation argument.
    pub fn arg_num(&mut self, key: &str, value: f64, decimals: usize) -> &mut Self {
        self.args.push((key.to_string(), json::num(value, decimals)));
        self
    }

    /// Records a boolean invocation argument.
    pub fn arg_bool(&mut self, key: &str, value: bool) -> &mut Self {
        self.args
            .push((key.to_string(), if value { "true" } else { "false" }.to_string()));
        self
    }

    /// Overrides the captured git revision (tests pin the output).
    pub fn set_git_rev(&mut self, rev: &str) -> &mut Self {
        self.git_rev = rev.to_string();
        self
    }

    /// Overrides the captured hostname (tests pin the output).
    pub fn set_hostname(&mut self, host: &str) -> &mut Self {
        self.hostname = host.to_string();
        self
    }

    /// Overrides the captured start time (tests pin the output).
    pub fn set_started_unix_ms(&mut self, ms: u64) -> &mut Self {
        self.started_unix_ms = ms;
        self
    }

    fn stage_json(stage: &StageReport) -> String {
        let mut units = json::Arr::new();
        for unit in &stage.units {
            let mut u = json::Obj::new();
            u.str("id", &unit.id)
                .str("status", status_token(unit.status))
                .int("attempts", unit.attempts as u64)
                .num("wall_s", unit.wall.as_secs_f64(), 3)
                .bool("resumed", unit.status == UnitStatus::Resumed);
            if let Some(err) = &unit.error {
                u.str("error", err);
            }
            units.push_raw(u.finish());
        }
        let mut s = json::Obj::new();
        s.str("stage", &stage.stage)
            .num("wall_s", stage.wall.as_secs_f64(), 3)
            .num("coverage", stage.coverage(), 4)
            .int("completed", stage.completed() as u64)
            .int("resumed", stage.resumed() as u64)
            .int("failed", stage.failed() as u64)
            .int("cancelled", stage.cancelled() as u64)
            .int("timed_out", stage.timed_out() as u64)
            .raw("units", &units.finish());
        s.finish()
    }

    /// Renders the `socnet-run-v1` manifest against the final report.
    ///
    /// Layout contract: header fields one per line, `"args"` on one
    /// line, one line per stage, then `"complete"`.
    pub fn render(&self, report: &RunReport) -> String {
        let mut args = json::Obj::new();
        for (k, v) in &self.args {
            args.raw(k, v);
        }
        let mut w = json::Writer::new();
        w.field_str("schema", "socnet-run-v1")
            .field_str("name", &self.name)
            .field_int("started_unix_ms", self.started_unix_ms)
            .field_str("git_rev", &self.git_rev)
            .field_str("hostname", &self.hostname)
            .field_raw("args", &args.finish());
        w.begin_array("stages");
        for stage in &report.stages {
            w.push_item(&Self::stage_json(stage));
        }
        w.end_array();
        w.finish_with_raw("complete", if report.is_complete() { "true" } else { "false" })
    }

    /// Writes the manifest atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write.
    pub fn write(&self, report: &RunReport, path: &Path) -> io::Result<()> {
        write_atomic(path, self.render(report).as_bytes())
    }
}

/// Renders the `socnet-bench-v1` summary: per stage, total wall,
/// unit count, and throughput (`units / wall_s`, `null` when the stage
/// took no measurable time). One stage per line so shell tooling can
/// grep a single stage.
pub fn render_bench(name: &str, report: &RunReport) -> String {
    render_bench_with(name, report, &[])
}

/// [`render_bench`] plus workload-specific summary fields: with a
/// non-empty `extras` list the document gains a final one-line
/// `"extra"` object of `(key, rendered JSON value)` pairs — the load
/// harness records latency percentiles and cache hit rate there. An
/// empty list renders the plain `socnet-bench-v1` bytes unchanged.
pub fn render_bench_with(name: &str, report: &RunReport, extras: &[(String, String)]) -> String {
    let mut w = json::Writer::new();
    w.field_str("schema", "socnet-bench-v1").field_str("name", name);
    w.begin_map("stages");
    for stage in &report.stages {
        let wall = stage.wall.as_secs_f64();
        let units = stage.total() as u64;
        let throughput = if wall > 0.0 {
            json::num(units as f64 / wall, 3)
        } else {
            "null".to_string()
        };
        let mut s = json::Obj::new();
        s.num("wall_s", wall, 3).int("units", units).raw("throughput", &throughput);
        w.push_entry(&stage.stage, &s.finish());
    }
    if extras.is_empty() {
        return w.finish_with_map();
    }
    w.end_map();
    let mut extra = json::Obj::new();
    for (k, v) in extras {
        extra.raw(k, v);
    }
    w.finish_with_raw("extra", &extra.finish())
}

/// Writes `BENCH_<name>.json` atomically into `dir` and returns its
/// path.
///
/// # Errors
///
/// Returns any I/O error from the atomic write.
pub fn write_bench(name: &str, report: &RunReport, dir: &Path) -> io::Result<std::path::PathBuf> {
    write_bench_with(name, report, dir, &[])
}

/// [`write_bench`] with the `extras` section of [`render_bench_with`].
///
/// # Errors
///
/// Returns any I/O error from the atomic write.
pub fn write_bench_with(
    name: &str,
    report: &RunReport,
    dir: &Path,
    extras: &[(String, String)],
) -> io::Result<std::path::PathBuf> {
    let path = dir.join(format!("BENCH_{name}.json"));
    write_atomic(&path, render_bench_with(name, report, extras).as_bytes())?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::report::UnitRecord;
    use std::time::Duration;

    fn sample_report() -> RunReport {
        let mut stage = StageReport::new("fig1a");
        stage
            .units
            .push(UnitRecord::completed("src-0", 1).with_wall(Duration::from_millis(250)));
        stage.units.push(UnitRecord::resumed("src-1"));
        stage
            .units
            .push(UnitRecord::failed("src-2", 2, "panicked: boom"));
        stage.wall = Duration::from_millis(1500);
        let mut report = RunReport::new();
        report.push(stage);
        report
    }

    #[test]
    fn run_manifest_schema_is_pinned() {
        let mut m = RunManifest::new("demo");
        m.set_git_rev("abc1234")
            .set_hostname("ci-box")
            .set_started_unix_ms(1700000000000);
        m.arg_num("scale", 0.02, 3).arg_int("seed", 42).arg_bool("resume", false);
        let rendered = m.render(&sample_report());
        assert_eq!(
            rendered,
            "{\n\
             \"schema\":\"socnet-run-v1\",\n\
             \"name\":\"demo\",\n\
             \"started_unix_ms\":1700000000000,\n\
             \"git_rev\":\"abc1234\",\n\
             \"hostname\":\"ci-box\",\n\
             \"args\":{\"scale\":0.020,\"seed\":42,\"resume\":false},\n\
             \"stages\":[\n\
             {\"stage\":\"fig1a\",\"wall_s\":1.500,\"coverage\":0.6667,\"completed\":1,\"resumed\":1,\"failed\":1,\"cancelled\":0,\"timed_out\":0,\
             \"units\":[\
             {\"id\":\"src-0\",\"status\":\"completed\",\"attempts\":1,\"wall_s\":0.250,\"resumed\":false},\
             {\"id\":\"src-1\",\"status\":\"resumed\",\"attempts\":0,\"wall_s\":0.000,\"resumed\":true},\
             {\"id\":\"src-2\",\"status\":\"failed\",\"attempts\":2,\"wall_s\":0.000,\"resumed\":false,\"error\":\"panicked: boom\"}\
             ]}\n\
             ],\n\
             \"complete\":false\n}\n"
        );
        assert!(json::is_valid(&rendered));
    }

    #[test]
    fn bench_schema_is_pinned() {
        let rendered = render_bench("demo", &sample_report());
        assert_eq!(
            rendered,
            "{\n\
             \"schema\":\"socnet-bench-v1\",\n\
             \"name\":\"demo\",\n\
             \"stages\":{\n\
             \"fig1a\":{\"wall_s\":1.500,\"units\":3,\"throughput\":2.000}\n\
             }\n}\n"
        );
        assert!(json::is_valid(&rendered));
    }

    #[test]
    fn bench_extras_extend_without_disturbing_the_schema() {
        let report = sample_report();
        let extras = vec![
            ("p50_ms".to_string(), json::num(1.25, 3)),
            ("cache_hit_rate".to_string(), json::num(0.9, 4)),
        ];
        let rendered = render_bench_with("serve", &report, &extras);
        assert!(json::is_valid(&rendered), "{rendered}");
        assert!(rendered.contains("\"schema\":\"socnet-bench-v1\""));
        assert!(rendered.contains("\"extra\":{\"p50_ms\":1.250,\"cache_hit_rate\":0.9000}"));
        // The plain renderer is byte-equal to the extras renderer with
        // no extras — one writer, one layout.
        assert_eq!(render_bench("serve", &report), render_bench_with("serve", &report, &[]));
    }

    #[test]
    fn bench_guards_zero_wall() {
        let mut report = RunReport::new();
        report.push(StageReport::new("instant"));
        let rendered = render_bench("demo", &report);
        assert!(rendered.contains("\"throughput\":null"), "{rendered}");
        assert!(json::is_valid(&rendered));
    }

    #[test]
    fn empty_report_renders_valid_manifest() {
        let m = RunManifest::new("empty");
        let rendered = m.render(&RunReport::new());
        assert!(json::is_valid(&rendered), "{rendered}");
        assert!(rendered.contains("\"stages\":[],"));
        assert!(rendered.contains("\"complete\":true"));
    }

    #[test]
    fn provenance_capture_is_nonempty() {
        assert!(!git_rev().is_empty());
        assert!(!hostname().is_empty());
        let m = RunManifest::new("probe");
        let rendered = m.render(&RunReport::new());
        assert!(json::is_valid(&rendered));
    }

    #[test]
    fn manifest_and_bench_write_atomically() {
        let dir = std::env::temp_dir().join("socnet-manifest-test");
        std::fs::create_dir_all(&dir).unwrap();
        let report = sample_report();
        let m = RunManifest::new("demo");
        let run_path = dir.join("run.json");
        m.write(&report, &run_path).expect("write run.json");
        assert!(json::is_valid(&std::fs::read_to_string(&run_path).unwrap()));
        let bench_path = write_bench("demo", &report, &dir).expect("write bench");
        assert!(bench_path.ends_with("BENCH_demo.json"));
        assert!(json::is_valid(&std::fs::read_to_string(&bench_path).unwrap()));
        std::fs::remove_file(run_path).ok();
        std::fs::remove_file(bench_path).ok();
    }
}
