//! The deterministic data-parallel sweep engine.
//!
//! Every headline measurement of the paper is an embarrassingly parallel
//! per-source sweep: the sampling method evolves one walk distribution
//! per source, envelope expansion runs one BFS per core, GateKeeper
//! floods once per distributor. [`par_sweep`] is the shared engine those
//! inner loops run on:
//!
//! * **Deterministic.** The ordered item list is chunked across a scoped
//!   thread pool and every result is slotted back at its item index, so
//!   the output — and any CSV derived from it in item order — is
//!   byte-identical at every thread count, including `threads = 1`.
//! * **Scratch-reusing.** Each worker thread builds one scratch value
//!   (a BFS frontier, a pair of walk-distribution vectors) and reuses it
//!   across every unit it runs, amortizing the per-source allocations
//!   that dominate small units.
//! * **Panic-isolated.** Each unit executes under `catch_unwind`; a
//!   poisoned unit is recorded as failed and — because the panic may
//!   have left the scratch value in an inconsistent state — the worker
//!   rebuilds its scratch before touching the next unit.
//! * **Cancellable.** The [`CancelToken`] is checked before every unit;
//!   once it trips, remaining units are recorded as cancelled or
//!   timed-out (per the token's cause) without running.
//!
//! The engine deliberately does *not* retry: retries belong to the outer
//! per-dataset stage (`run_units`), which reruns a whole sweep with a
//! deterministically bumped seed. One sweep = one attempt per unit.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use crate::pool::{
    effective_threads, panic_message, record_unit_metrics, stop_status, StageOutput,
};
use crate::{obs, CancelToken, Metrics, StageReport, UnitError, UnitRecord, UnitStatus};

/// Tuning knobs for [`par_sweep`].
#[derive(Debug, Clone)]
pub struct ParConfig {
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Items handed to a worker per grab; 0 picks a size that balances
    /// scheduling overhead against load skew.
    pub chunk: usize,
    /// The cancellation token checked before every unit.
    pub cancel: CancelToken,
}

impl Default for ParConfig {
    fn default() -> Self {
        ParConfig {
            threads: 0,
            chunk: 0,
            cancel: CancelToken::new(),
        }
    }
}

impl ParConfig {
    /// A config with the given token and thread count (0 = one per core).
    pub fn new(cancel: CancelToken, threads: usize) -> Self {
        ParConfig {
            threads,
            chunk: 0,
            cancel,
        }
    }

    /// A single-threaded config — the reference execution every other
    /// thread count must reproduce byte-for-byte.
    pub fn sequential(cancel: CancelToken) -> Self {
        Self::new(cancel, 1)
    }
}

/// Per-unit context handed to sweep workers.
#[derive(Debug)]
pub struct SweepCtx<'a> {
    /// Index of the unit in the sweep's item slice.
    pub index: usize,
    /// The sweep's cancellation token; poll it at natural yield points
    /// (once per walk step, per BFS level) and return
    /// [`UnitError::Cancelled`] when it trips.
    pub cancel: &'a CancelToken,
}

/// Runs one unit of work per item across a scoped thread pool, reusing
/// per-thread scratch, and merges the results back in item order.
///
/// `make_scratch` is called once per worker thread (and again after a
/// unit panics, since the panic may have corrupted the scratch value);
/// `worker` receives the thread's scratch, a [`SweepCtx`], and the item.
/// `id_of` names units for the [`StageReport`]; it must not panic.
///
/// Outputs are slotted by item index: `outputs[i]` belongs to `items[i]`
/// whatever the thread count or interleaving, which is what makes sweep
/// CSVs byte-identical between `--threads 1` and `--threads N`.
///
/// # Examples
///
/// ```
/// use socnet_runner::{par_sweep, ParConfig, UnitError};
///
/// let items: Vec<u64> = (0..64).collect();
/// let run = |threads| {
///     par_sweep(
///         "square",
///         &items,
///         &ParConfig { threads, ..Default::default() },
///         |i, _| format!("unit-{i}"),
///         || 0u64, // per-thread scratch: a running total
///         |acc, _ctx, &x| {
///             *acc += x;
///             Ok::<u64, UnitError>(x * x)
///         },
///     )
///     .outputs
/// };
/// assert_eq!(run(1), run(4)); // deterministic at any thread count
/// ```
pub fn par_sweep<I, O, S, MS, G, F>(
    stage: &str,
    items: &[I],
    config: &ParConfig,
    id_of: G,
    make_scratch: MS,
    worker: F,
) -> StageOutput<O>
where
    I: Sync,
    O: Send,
    MS: Fn() -> S + Sync,
    G: Fn(usize, &I) -> String + Sync,
    F: Fn(&mut S, SweepCtx<'_>, &I) -> Result<O, UnitError> + Sync,
{
    let start = Instant::now();
    let n = items.len();
    let mut outputs: Vec<Option<O>> = Vec::with_capacity(n);
    let mut records: Vec<Option<UnitRecord>> = Vec::with_capacity(n);
    for _ in 0..n {
        outputs.push(None);
        records.push(None);
    }

    if n > 0 {
        let threads = effective_threads(config.threads, n);
        let chunk = chunk_size(config.chunk, n, threads);
        let cursor = AtomicUsize::new(0);
        obs::progress_begin(stage, n as u64);
        obs::debug(
            "sweep.start",
            &[
                ("stage", stage.into()),
                ("units", n.into()),
                ("threads", threads.into()),
                ("chunk", chunk.into()),
            ],
        );
        type Done<O> = Vec<(usize, Option<O>, UnitRecord)>;
        let done: Mutex<Done<O>> = Mutex::new(Vec::with_capacity(n));
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| {
                    let mut scratch = make_scratch();
                    loop {
                        let begin = cursor.fetch_add(chunk, Ordering::Relaxed);
                        if begin >= n {
                            break;
                        }
                        let end = (begin + chunk).min(n);
                        let mut batch: Done<O> = Vec::with_capacity(end - begin);
                        for i in begin..end {
                            batch.push(run_unit(
                                i,
                                &items[i],
                                config,
                                start,
                                &id_of,
                                &make_scratch,
                                &mut scratch,
                                &worker,
                            ));
                        }
                        for (_, _, rec) in &batch {
                            record_unit_metrics(rec);
                        }
                        done.lock().expect("sweep results lock").append(&mut batch);
                    }
                });
            }
        });
        let collected = done.into_inner().expect("sweep results lock");
        for (i, out, rec) in collected {
            outputs[i] = out;
            records[i] = Some(rec);
        }
    }

    let units = records
        .into_iter()
        .map(|r| r.expect("every unit recorded"))
        .collect();
    let wall = start.elapsed();
    Metrics::global().observe("stage.wall", wall.as_secs_f64());
    obs::debug(
        "sweep.done",
        &[("stage", stage.into()), ("wall_s", wall.as_secs_f64().into())],
    );
    StageOutput {
        outputs,
        report: StageReport {
            stage: stage.to_string(),
            units,
            wall,
        },
    }
}

/// Runs one unit: cancellation gate, `catch_unwind`, per-unit timing,
/// scratch recovery after a panic.
#[allow(clippy::too_many_arguments)]
fn run_unit<I, O, S, MS, G, F>(
    index: usize,
    item: &I,
    config: &ParConfig,
    sweep_start: Instant,
    id_of: &G,
    make_scratch: &MS,
    scratch: &mut S,
    worker: &F,
) -> (usize, Option<O>, UnitRecord)
where
    MS: Fn() -> S,
    G: Fn(usize, &I) -> String,
    F: Fn(&mut S, SweepCtx<'_>, &I) -> Result<O, UnitError>,
{
    let id = id_of(index, item);
    if let Some(cause) = config.cancel.cause() {
        return (index, None, UnitRecord::stopped(id, stop_status(cause), 0));
    }
    let started = Instant::now();
    // Queue wait: how long this unit sat scheduled before a worker
    // picked it up — the load-skew signal for chunk-size tuning.
    Metrics::global().observe(
        "sweep.queue_wait",
        started.duration_since(sweep_start).as_secs_f64(),
    );
    let ctx = SweepCtx {
        index,
        cancel: &config.cancel,
    };
    let result = catch_unwind(AssertUnwindSafe(|| worker(scratch, ctx, item)));
    let wall = started.elapsed();
    match result {
        Ok(Ok(output)) => {
            let rec = UnitRecord::completed(id, 1).with_wall(wall);
            (index, Some(output), rec)
        }
        Ok(Err(UnitError::Cancelled)) => {
            let status = config
                .cancel
                .cause()
                .map(stop_status)
                .unwrap_or(UnitStatus::Cancelled);
            (index, None, UnitRecord::stopped(id, status, 1).with_wall(wall))
        }
        Ok(Err(UnitError::Failed(message))) => {
            (index, None, UnitRecord::failed(id, 1, message).with_wall(wall))
        }
        Err(payload) => {
            // The panic may have unwound mid-mutation: rebuild the
            // scratch value so later units on this thread start clean.
            *scratch = make_scratch();
            let message = format!("panicked: {}", panic_message(payload.as_ref()));
            (index, None, UnitRecord::failed(id, 1, message).with_wall(wall))
        }
    }
}

/// Chunk size balancing grab overhead against load skew: aim for ~8
/// grabs per thread so one slow chunk cannot idle the rest of the pool.
fn chunk_size(configured: usize, units: usize, threads: usize) -> usize {
    if configured > 0 {
        return configured;
    }
    (units / (threads * 8)).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    fn cfg(threads: usize) -> ParConfig {
        ParConfig {
            threads,
            ..Default::default()
        }
    }

    #[test]
    fn outputs_are_slotted_in_item_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_sweep(
            "sq",
            &items,
            &cfg(0),
            |i, _| format!("u{i}"),
            || (),
            |_, _ctx, &x| Ok::<usize, UnitError>(x * x),
        );
        assert!(out.report.is_complete());
        for (i, o) in out.outputs.iter().enumerate() {
            assert_eq!(*o, Some(i * i));
        }
        assert_eq!(out.report.units[41].id, "u41");
    }

    #[test]
    fn deterministic_across_thread_and_chunk_counts() {
        let items: Vec<u64> = (0..257).collect();
        let run = |threads, chunk| {
            let config = ParConfig {
                threads,
                chunk,
                cancel: CancelToken::new(),
            };
            par_sweep(
                "det",
                &items,
                &config,
                |i, _| i.to_string(),
                || 0u64,
                |acc, _ctx, &x| {
                    *acc = acc.wrapping_add(x);
                    Ok::<u64, UnitError>(x.wrapping_mul(0x9e3779b97f4a7c15))
                },
            )
            .outputs
        };
        let reference = run(1, 1);
        for (threads, chunk) in [(2, 0), (4, 0), (7, 3), (0, 64), (3, 1000)] {
            assert_eq!(reference, run(threads, chunk), "threads={threads} chunk={chunk}");
        }
    }

    #[test]
    fn scratch_is_reused_within_a_thread() {
        let built = AtomicU32::new(0);
        let items: Vec<u32> = (0..64).collect();
        let out = par_sweep(
            "scratch",
            &items,
            &cfg(2),
            |i, _| i.to_string(),
            || {
                built.fetch_add(1, Ordering::Relaxed);
                Vec::<u32>::new()
            },
            |buf, _ctx, &x| {
                buf.push(x); // grows across units: proof the buffer persists
                Ok::<usize, UnitError>(buf.len())
            },
        );
        assert!(out.report.is_complete());
        let builds = built.load(Ordering::Relaxed);
        assert!(builds <= 2, "one scratch per thread, got {builds}");
        // Some unit must have observed a buffer with earlier units in it.
        let deepest = out.outputs.iter().flatten().max().expect("outputs");
        assert!(*deepest > 1, "scratch was rebuilt between units");
    }

    #[test]
    fn panicking_unit_fails_alone_and_scratch_recovers() {
        let items: Vec<usize> = (0..32).collect();
        let out = par_sweep(
            "poison",
            &items,
            &cfg(2),
            |i, _| format!("u{i}"),
            || vec![0u8; 4],
            |buf, _ctx, &x| {
                if x == 5 {
                    buf.clear(); // corrupt the scratch, then die
                    panic!("poisoned unit 5");
                }
                assert_eq!(buf.len(), 4, "scratch must be clean after a panic");
                Ok::<usize, UnitError>(x)
            },
        );
        assert_eq!(out.report.failed(), 1);
        assert_eq!(out.report.completed(), 31);
        assert_eq!(out.outputs[5], None);
        let rec = &out.report.units[5];
        assert_eq!(rec.status, UnitStatus::Failed);
        assert!(rec.error.as_deref().expect("error").contains("poisoned unit 5"));
    }

    #[test]
    fn cancelled_token_stops_unstarted_units() {
        let cancel = CancelToken::new();
        cancel.cancel();
        let items: Vec<usize> = (0..5).collect();
        let out = par_sweep(
            "cancelled",
            &items,
            &ParConfig::new(cancel, 2),
            |i, _| format!("u{i}"),
            || (),
            |_, _ctx, &x| Ok::<usize, UnitError>(x),
        );
        assert_eq!(out.report.cancelled(), 5);
        assert!(out.outputs.iter().all(Option::is_none));
    }

    #[test]
    fn expired_budget_marks_units_timed_out() {
        let config = ParConfig::new(CancelToken::with_budget(Duration::ZERO), 2);
        let out = par_sweep(
            "late",
            &[1, 2, 3],
            &config,
            |i, _| format!("u{i}"),
            || (),
            |_, _ctx, &x| Ok::<i32, UnitError>(x),
        );
        assert_eq!(out.report.timed_out(), 3);
    }

    #[test]
    fn mid_sweep_cancellation_stops_the_tail() {
        // Sequential with chunk 1 so ordering is deterministic: unit 2
        // cancels, units 3.. never run.
        let cancel = CancelToken::new();
        let config = ParConfig {
            threads: 1,
            chunk: 1,
            cancel: cancel.clone(),
        };
        let items: Vec<usize> = (0..6).collect();
        let out = par_sweep(
            "tail",
            &items,
            &config,
            |i, _| format!("u{i}"),
            || (),
            |_, _ctx, &x| {
                if x == 2 {
                    cancel.cancel();
                }
                Ok::<usize, UnitError>(x)
            },
        );
        assert_eq!(out.report.completed(), 3);
        assert_eq!(out.report.cancelled(), 3);
        assert_eq!(out.outputs[2], Some(2));
        assert_eq!(out.outputs[3], None);
    }

    #[test]
    fn worker_observed_cancellation_is_recorded() {
        let cancel = CancelToken::new();
        let config = ParConfig::sequential(cancel.clone());
        let out = par_sweep(
            "coop",
            &[()],
            &config,
            |_, _| "unit".into(),
            || (),
            |_, _ctx, _| -> Result<(), UnitError> {
                cancel.cancel(); // e.g. the unit notices mid-walk
                Err(UnitError::Cancelled)
            },
        );
        assert_eq!(out.report.cancelled(), 1);
        assert_eq!(out.report.units[0].attempts, 1);
    }

    #[test]
    fn per_unit_wall_time_is_recorded() {
        let out = par_sweep(
            "timed",
            &[5u64],
            &cfg(1),
            |i, _| i.to_string(),
            || (),
            |_, _ctx, _| {
                std::thread::sleep(Duration::from_millis(5));
                Ok::<(), UnitError>(())
            },
        );
        let rec = &out.report.units[0];
        assert!(rec.wall >= Duration::from_millis(5), "wall {:?}", rec.wall);
        assert!(out.report.slowest_unit().is_some());
    }

    #[test]
    fn empty_items_yield_empty_complete_stage() {
        let out = par_sweep(
            "empty",
            &[] as &[u8],
            &ParConfig::default(),
            |i, _| i.to_string(),
            || (),
            |_, _ctx, &x| Ok::<u8, UnitError>(x),
        );
        assert!(out.outputs.is_empty());
        assert!(out.report.is_complete());
    }

    #[test]
    fn chunk_size_targets_eight_grabs_per_thread() {
        assert_eq!(chunk_size(0, 1000, 4), 31);
        assert_eq!(chunk_size(0, 3, 8), 1);
        assert_eq!(chunk_size(7, 1000, 4), 7);
    }
}
