//! A process-wide metrics registry: counters, gauges, and fixed-bucket
//! duration histograms.
//!
//! The runner's engines record into [`Metrics::global`] as they work —
//! `units.completed`, `units.retried`, `checkpoint.appends`, per-unit
//! and per-stage wall histograms, queue wait inside `par_sweep` — and
//! the experiment harness snapshots the whole registry atomically to
//! `<out>/<name>_metrics.json` when the run finishes.
//!
//! The snapshot schema (`socnet-metrics-v1`) renders every section in
//! sorted key order, and the `"counters"` section on a single line:
//! counter values are deterministic for a deterministic workload, so a
//! test (or a human with `grep`) can byte-compare that line across
//! `--threads 1/2/4` while the timing histograms vary freely.
//!
//! Beside the JSON snapshot, [`Metrics::render_prometheus`] renders the
//! same registry as Prometheus text exposition for live scraping (the
//! serve path's `GET /metrics`). Metric keys may carry labels with the
//! `name|k=v,k2=v2` convention — everything after the first `|` becomes
//! a Prometheus label set, so `http.request_s|route=mixing` renders as
//! `http_request_seconds_bucket{route="mixing",le="..."}` while the JSON
//! snapshot keeps the raw key. [`is_valid_prometheus`] is the matching
//! validator used by `socnet obs-check`.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::json;
use crate::write_atomic;

/// Upper bounds (seconds) of the fixed histogram buckets; a final
/// implicit `+inf` bucket catches everything slower.
pub const BUCKET_BOUNDS_S: [f64; 6] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

/// A fixed-bucket duration histogram (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation counts per bucket (`BUCKET_BOUNDS_S` + overflow).
    pub buckets: [u64; BUCKET_BOUNDS_S.len() + 1],
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_s: f64,
    /// Smallest observation, in seconds.
    pub min_s: f64,
    /// Largest observation, in seconds.
    pub max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_BOUNDS_S.len() + 1],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }
}

impl Histogram {
    /// Records one observation (seconds) into the fixed buckets.
    pub fn observe(&mut self, secs: f64) {
        let idx = BUCKET_BOUNDS_S
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(BUCKET_BOUNDS_S.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_s += secs;
        self.min_s = self.min_s.min(secs);
        self.max_s = self.max_s.max(secs);
    }

    /// Folds `other` into `self`. Merging is commutative and
    /// associative — per-thread histograms can be combined in any
    /// order and yield the identical aggregate (bucket counts and
    /// `sum_s` are plain sums; `min`/`max` are order-free).
    pub fn merge(&mut self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum_s += other.sum_s;
        self.min_s = self.min_s.min(other.min_s);
        self.max_s = self.max_s.max(other.max_s);
    }

    fn to_json(&self) -> String {
        let mut buckets = json::Arr::new();
        for &b in &self.buckets {
            buckets.push_raw(b.to_string());
        }
        let mut o = json::Obj::new();
        o.int("count", self.count)
            .num("sum_s", self.sum_s, 6)
            .num("min_s", if self.count == 0 { 0.0 } else { self.min_s }, 6)
            .num("max_s", self.max_s, 6)
            .raw("buckets", &buckets.finish());
        o.finish()
    }
}

/// A registry of named counters, gauges, and duration histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    durations: Mutex<BTreeMap<String, Histogram>>,
}

static GLOBAL: Metrics = Metrics {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    durations: Mutex::new(BTreeMap::new()),
};

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The process-wide registry the engines record into.
    pub fn global() -> &'static Metrics {
        &GLOBAL
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, delta: u64) {
        *Self::lock(&self.counters).entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Records one duration observation (seconds) into the named
    /// histogram.
    pub fn observe(&self, name: &str, secs: f64) {
        Self::lock(&self.durations)
            .entry(name.to_string())
            .or_default()
            .observe(secs);
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        Self::lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        Self::lock(&self.gauges).get(name).copied()
    }

    /// A copy of the named histogram, if any observation was recorded.
    pub fn duration(&self, name: &str) -> Option<Histogram> {
        Self::lock(&self.durations).get(name).cloned()
    }

    /// Clears every metric. The experiment harness calls this at run
    /// start so one binary invocation owns the whole registry.
    pub fn reset(&self) {
        Self::lock(&self.counters).clear();
        Self::lock(&self.gauges).clear();
        Self::lock(&self.durations).clear();
    }

    /// Renders the `socnet-metrics-v1` snapshot.
    ///
    /// Layout contract: four lines — schema, `"counters"` (one line,
    /// sorted keys), `"gauges"`, then a `"durations"` object with one
    /// line per histogram. Pinned by golden tests.
    pub fn render_snapshot(&self) -> String {
        let mut counters = json::Obj::new();
        for (k, v) in Self::lock(&self.counters).iter() {
            counters.int(k, *v);
        }
        let mut gauges = json::Obj::new();
        for (k, v) in Self::lock(&self.gauges).iter() {
            gauges.num(k, *v, 6);
        }
        let mut out = String::from("{\n");
        out.push_str("\"schema\":\"socnet-metrics-v1\",\n");
        out.push_str(&format!("\"counters\":{},\n", counters.finish()));
        out.push_str(&format!("\"gauges\":{},\n", gauges.finish()));
        out.push_str("\"durations\":{");
        let durations = Self::lock(&self.durations);
        for (i, (k, h)) in durations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n\"{}\":{}", json::escape(k), h.to_json()));
        }
        if !durations.is_empty() {
            out.push('\n');
        }
        out.push_str("}\n}\n");
        out
    }

    /// Merges a locally-accumulated [`Histogram`] (for example one per
    /// worker thread) into the named registry histogram in one lock
    /// acquisition. Order-independent: any interleaving of merges
    /// produces the same aggregate.
    pub fn observe_histogram(&self, name: &str, h: &Histogram) {
        Self::lock(&self.durations)
            .entry(name.to_string())
            .or_default()
            .merge(h);
    }

    /// Renders the registry as Prometheus text exposition
    /// (`text/plain; version=0.0.4`).
    ///
    /// Key convention: everything after the first `|` in a metric key
    /// is parsed as `k=v,k2=v2` label pairs. Names are mangled to the
    /// Prometheus charset (`.` → `_`), counters gain a `_total` suffix,
    /// and a trailing `_s` on a histogram becomes `_seconds`. Duration
    /// histograms render cumulative `le` buckets from
    /// [`BUCKET_BOUNDS_S`] plus `+Inf`, then `_sum` and `_count`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();

        let counters = Self::lock(&self.counters);
        let mut counter_groups: BTreeMap<String, Vec<(String, u64)>> = BTreeMap::new();
        for (k, v) in counters.iter() {
            let (base, labels) = split_labels(k);
            let mut name = prom_name(base);
            if !name.ends_with("_total") {
                name.push_str("_total");
            }
            counter_groups.entry(name).or_default().push((labels, *v));
        }
        drop(counters);
        for (name, series) in &counter_groups {
            out.push_str(&format!("# TYPE {name} counter\n"));
            for (labels, v) in series {
                out.push_str(&format!("{name}{} {v}\n", brace(labels)));
            }
        }

        let gauges = Self::lock(&self.gauges);
        let mut gauge_groups: BTreeMap<String, Vec<(String, f64)>> = BTreeMap::new();
        for (k, v) in gauges.iter() {
            let (base, labels) = split_labels(k);
            gauge_groups.entry(prom_name(base)).or_default().push((labels, *v));
        }
        drop(gauges);
        for (name, series) in &gauge_groups {
            out.push_str(&format!("# TYPE {name} gauge\n"));
            for (labels, v) in series {
                out.push_str(&format!("{name}{} {}\n", brace(labels), prom_f64(*v)));
            }
        }

        let durations = Self::lock(&self.durations);
        let mut hist_groups: BTreeMap<String, Vec<(String, Histogram)>> = BTreeMap::new();
        for (k, h) in durations.iter() {
            let (base, labels) = split_labels(k);
            let mut name = prom_name(base);
            if let Some(stem) = name.strip_suffix("_s") {
                name = format!("{stem}_seconds");
            }
            hist_groups.entry(name).or_default().push((labels, h.clone()));
        }
        drop(durations);
        for (name, series) in &hist_groups {
            out.push_str(&format!("# TYPE {name} histogram\n"));
            for (labels, h) in series {
                let mut cumulative = 0u64;
                for (i, &bound) in BUCKET_BOUNDS_S.iter().enumerate() {
                    cumulative += h.buckets[i];
                    let le = join_labels(labels, &format!("le=\"{}\"", prom_f64(bound)));
                    out.push_str(&format!("{name}_bucket{{{le}}} {cumulative}\n"));
                }
                cumulative += h.buckets[BUCKET_BOUNDS_S.len()];
                let le = join_labels(labels, "le=\"+Inf\"");
                out.push_str(&format!("{name}_bucket{{{le}}} {cumulative}\n"));
                out.push_str(&format!("{name}_sum{} {}\n", brace(labels), prom_f64(h.sum_s)));
                out.push_str(&format!("{name}_count{} {}\n", brace(labels), h.count));
            }
        }
        out
    }

    /// Writes the snapshot atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write.
    pub fn write_snapshot(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.render_snapshot().as_bytes())
    }
}

/// Splits a registry key into its metric name and rendered label pairs:
/// `http.request_s|route=mixing` → (`http.request_s`, `route="mixing"`).
fn split_labels(key: &str) -> (&str, String) {
    match key.split_once('|') {
        None => (key, String::new()),
        Some((base, raw)) => {
            let mut rendered = String::new();
            for pair in raw.split(',').filter(|p| !p.is_empty()) {
                let (k, v) = pair.split_once('=').unwrap_or((pair, ""));
                if !rendered.is_empty() {
                    rendered.push(',');
                }
                let escaped = v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n");
                rendered.push_str(&format!("{}=\"{}\"", prom_name(k), escaped));
            }
            (base, rendered)
        }
    }
}

/// Mangles a dotted registry name into the Prometheus charset.
fn prom_name(base: &str) -> String {
    let mut s: String = base
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || c == '_' || c == ':' { c } else { '_' })
        .collect();
    if s.chars().next().is_none_or(|c| c.is_ascii_digit()) {
        s.insert(0, '_');
    }
    s
}

/// `{labels}` or the empty string when there are none.
fn brace(labels: &str) -> String {
    if labels.is_empty() {
        String::new()
    } else {
        format!("{{{labels}}}")
    }
}

fn join_labels(labels: &str, extra: &str) -> String {
    if labels.is_empty() {
        extra.to_string()
    } else {
        format!("{labels},{extra}")
    }
}

/// Renders an `f64` the way Prometheus expects (`+Inf`, `-Inf`, `NaN`).
fn prom_f64(v: f64) -> String {
    if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Validates Prometheus text exposition format: every line is a
/// well-formed comment (`# HELP` / `# TYPE` included) or a sample
/// (`name{labels} value [timestamp]`), and at least one sample is
/// present — so a truncated or empty scrape fails like any other
/// malformed artifact.
pub fn is_valid_prometheus(text: &str) -> bool {
    let mut samples = 0usize;
    for line in text.lines() {
        let line = line.trim_end_matches('\r');
        if line.is_empty() {
            continue;
        }
        if let Some(comment) = line.strip_prefix('#') {
            let mut words = comment.split_whitespace();
            match words.next() {
                Some("TYPE") => {
                    let name_ok = words.next().is_some_and(|n| is_prom_name(n));
                    let kind_ok = matches!(
                        words.next(),
                        Some("counter" | "gauge" | "histogram" | "summary" | "untyped")
                    );
                    if !(name_ok && kind_ok && words.next().is_none()) {
                        return false;
                    }
                }
                Some("HELP") => {
                    if !words.next().is_some_and(|n| is_prom_name(n)) {
                        return false;
                    }
                }
                _ => {} // free-form comment
            }
            continue;
        }
        if !is_valid_sample(line) {
            return false;
        }
        samples += 1;
    }
    samples > 0
}

fn is_prom_name(s: &str) -> bool {
    let mut chars = s.chars();
    match chars.next() {
        Some(c) if c.is_ascii_alphabetic() || c == '_' || c == ':' => {}
        _ => return false,
    }
    chars.all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
}

fn is_valid_sample(line: &str) -> bool {
    // name[{labels}] value [timestamp]
    let name_end = line
        .find(|c: char| !(c.is_ascii_alphanumeric() || c == '_' || c == ':'))
        .unwrap_or(line.len());
    if name_end == 0 || !is_prom_name(&line[..name_end]) {
        return false;
    }
    let mut rest = &line[name_end..];
    if let Some(after_brace) = rest.strip_prefix('{') {
        let Some(close) = find_label_close(after_brace) else {
            return false;
        };
        if !labels_well_formed(&after_brace[..close]) {
            return false;
        }
        rest = &after_brace[close + 1..];
    }
    let mut fields = rest.split_whitespace();
    let Some(value) = fields.next() else {
        return false;
    };
    let value_ok = matches!(value, "+Inf" | "-Inf" | "NaN") || value.parse::<f64>().is_ok();
    let timestamp_ok = match fields.next() {
        None => true,
        Some(ts) => ts.parse::<i64>().is_ok() && fields.next().is_none(),
    };
    value_ok && timestamp_ok
}

/// Index of the closing `}` of a label set, honoring quoted strings
/// with backslash escapes.
fn find_label_close(s: &str) -> Option<usize> {
    let mut in_quotes = false;
    let mut escaped = false;
    for (i, c) in s.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => return Some(i),
            _ => {}
        }
    }
    None
}

fn labels_well_formed(body: &str) -> bool {
    let body = body.trim_end_matches(','); // trailing comma is legal
    if body.is_empty() {
        return true;
    }
    let mut rest = body;
    loop {
        let Some(eq) = rest.find('=') else {
            return false;
        };
        if !is_prom_name(rest[..eq].trim()) {
            return false;
        }
        let after = &rest[eq + 1..];
        let Some(inner) = after.strip_prefix('"') else {
            return false;
        };
        // Walk to the closing quote, honoring escapes.
        let mut escaped = false;
        let mut close = None;
        for (i, c) in inner.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    close = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let Some(close) = close else {
            return false;
        };
        let tail = &inner[close + 1..];
        if tail.is_empty() {
            return true;
        }
        let Some(next) = tail.strip_prefix(',') else {
            return false;
        };
        if next.is_empty() {
            return true;
        }
        rest = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let m = Metrics::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.incr("a.first", 3);
        assert_eq!(m.counter("a.first"), 5);
        assert_eq!(m.counter("missing"), 0);
        let snap = m.render_snapshot();
        assert!(snap.contains(r#""counters":{"a.first":5,"z.last":1}"#), "{snap}");
        assert!(json::is_valid(&snap));
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = Histogram::default();
        h.observe(0.0005); // bucket 0 (<= 1ms)
        h.observe(0.05); // bucket 2 (<= 100ms)
        h.observe(0.05);
        h.observe(500.0); // overflow bucket
        assert_eq!(h.buckets, [1, 0, 2, 0, 0, 0, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum_s - 500.1005).abs() < 1e-9);
        assert!((h.min_s - 0.0005).abs() < 1e-12);
        assert!((h.max_s - 500.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_schema_is_pinned() {
        let m = Metrics::new();
        m.incr("units.completed", 3);
        m.gauge_set("threads", 2.0);
        m.observe("unit.wall", 0.5);
        let snap = m.render_snapshot();
        assert_eq!(
            snap,
            "{\n\"schema\":\"socnet-metrics-v1\",\n\
             \"counters\":{\"units.completed\":3},\n\
             \"gauges\":{\"threads\":2.000000},\n\
             \"durations\":{\n\
             \"unit.wall\":{\"count\":1,\"sum_s\":0.500000,\"min_s\":0.500000,\"max_s\":0.500000,\"buckets\":[0,0,0,1,0,0,0]}\n\
             }\n}\n"
        );
        assert!(json::is_valid(&snap));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let m = Metrics::new();
        let snap = m.render_snapshot();
        assert!(json::is_valid(&snap), "{snap}");
        assert!(snap.contains("\"durations\":{}"));
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.incr("c", 1);
        m.gauge_set("g", 1.0);
        m.observe("d", 1.0);
        m.reset();
        assert_eq!(m.counter("c"), 0);
        assert!(m.gauge("g").is_none());
        assert!(m.duration("d").is_none());
    }

    #[test]
    fn zero_observation_histogram_merges_and_renders() {
        // A per-thread histogram that never observed anything must be a
        // merge identity and must not poison min_s in the snapshot.
        let mut h = Histogram::default();
        let empty = Histogram::default();
        h.merge(&empty);
        assert_eq!(h.count, 0);
        assert_eq!(h.buckets, [0; BUCKET_BOUNDS_S.len() + 1]);
        h.observe(0.5);
        h.merge(&empty);
        assert_eq!(h.count, 1);
        assert!((h.min_s - 0.5).abs() < 1e-12);
        let m = Metrics::new();
        m.observe_histogram("idle.wall", &empty);
        let snap = m.render_snapshot();
        assert!(snap.contains(r#""idle.wall":{"count":0,"sum_s":0.000000,"min_s":0.000000"#), "{snap}");
        assert!(json::is_valid(&snap));
    }

    #[test]
    fn single_bucket_saturation_stays_in_one_bucket() {
        // Every observation lands exactly on the first bound: the first
        // bucket takes them all, and the Prometheus cumulative counts
        // are flat across the remaining bounds.
        let m = Metrics::new();
        for _ in 0..1000 {
            m.observe("fast.wall_s", 0.001);
        }
        let h = m.duration("fast.wall_s").unwrap();
        assert_eq!(h.buckets[0], 1000);
        assert!(h.buckets[1..].iter().all(|&b| b == 0));
        assert!((h.min_s - h.max_s).abs() < 1e-12);
        let prom = m.render_prometheus();
        assert!(prom.contains("fast_wall_seconds_bucket{le=\"0.001\"} 1000"), "{prom}");
        assert!(prom.contains("fast_wall_seconds_bucket{le=\"+Inf\"} 1000"), "{prom}");
        assert!(prom.contains("fast_wall_seconds_count 1000"), "{prom}");
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        // Binary-exact values so sum_s comparison needs no tolerance.
        let values = [0.5, 0.25, 4.0, 0.0005, 128.0, 0.125, 2.0];
        let mut thread_hists: Vec<Histogram> = Vec::new();
        for chunk in values.chunks(2) {
            let mut h = Histogram::default();
            for &v in chunk {
                h.observe(v);
            }
            thread_hists.push(h);
        }
        let mut forward = Histogram::default();
        for h in &thread_hists {
            forward.merge(h);
        }
        let mut backward = Histogram::default();
        for h in thread_hists.iter().rev() {
            backward.merge(h);
        }
        assert_eq!(forward, backward);
        assert_eq!(forward.count, values.len() as u64);
        // And through the registry entry point, in shuffled order.
        let a = Metrics::new();
        let b = Metrics::new();
        for h in &thread_hists {
            a.observe_histogram("unit.wall", h);
        }
        for h in thread_hists.iter().rev() {
            b.observe_histogram("unit.wall", h);
        }
        assert_eq!(a.duration("unit.wall"), b.duration("unit.wall"));
    }

    #[test]
    fn prometheus_rendering_mangles_names_and_labels() {
        let m = Metrics::new();
        m.incr("http.requests", 7);
        m.incr("http.shed|reason=backlog", 2);
        m.gauge_set("registry.resident_bytes", 4096.0);
        m.observe("http.request_s|route=mixing", 0.05);
        let prom = m.render_prometheus();
        assert!(prom.contains("# TYPE http_requests_total counter"), "{prom}");
        assert!(prom.contains("http_requests_total 7"), "{prom}");
        assert!(prom.contains("http_shed_total{reason=\"backlog\"} 2"), "{prom}");
        assert!(prom.contains("registry_resident_bytes 4096"), "{prom}");
        assert!(prom.contains("# TYPE http_request_seconds histogram"), "{prom}");
        assert!(
            prom.contains("http_request_seconds_bucket{route=\"mixing\",le=\"0.1\"} 1"),
            "{prom}"
        );
        assert!(prom.contains("http_request_seconds_sum{route=\"mixing\"} 0.05"), "{prom}");
        assert!(prom.contains("http_request_seconds_count{route=\"mixing\"} 1"), "{prom}");
        assert!(is_valid_prometheus(&prom), "{prom}");
    }

    #[test]
    fn prometheus_validator_rejects_malformed_text() {
        assert!(is_valid_prometheus("a_total 1\n"));
        assert!(is_valid_prometheus("# TYPE a_total counter\na_total{k=\"v\"} 1 1700000000\n"));
        assert!(is_valid_prometheus("x_bucket{le=\"+Inf\"} 3\nx_sum 0.5\nx_count 3\n"));
        assert!(!is_valid_prometheus(""), "empty scrape must fail");
        assert!(!is_valid_prometheus("# TYPE only_comments counter\n"), "no samples");
        assert!(!is_valid_prometheus("9bad_name 1\n"));
        assert!(!is_valid_prometheus("name{k=unquoted} 1\n"));
        assert!(!is_valid_prometheus("name{k=\"v\" 1\n"), "unclosed label set");
        assert!(!is_valid_prometheus("name notanumber\n"));
        assert!(!is_valid_prometheus("name 1 2 3\n"), "trailing junk");
        assert!(!is_valid_prometheus("# TYPE t weird_kind\nt 1\n"));
        assert!(is_valid_prometheus("name{k=\"quoted \\\"v\\\",still\"} 1\n"));
    }

    #[test]
    fn snapshot_writes_atomically() {
        let dir = std::env::temp_dir().join("socnet-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo_metrics.json");
        let m = Metrics::new();
        m.incr("units.completed", 1);
        m.write_snapshot(&path).expect("write snapshot");
        let text = std::fs::read_to_string(&path).expect("read snapshot");
        assert_eq!(text, m.render_snapshot());
        std::fs::remove_file(&path).ok();
    }
}
