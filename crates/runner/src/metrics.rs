//! A process-wide metrics registry: counters, gauges, and fixed-bucket
//! duration histograms.
//!
//! The runner's engines record into [`Metrics::global`] as they work —
//! `units.completed`, `units.retried`, `checkpoint.appends`, per-unit
//! and per-stage wall histograms, queue wait inside `par_sweep` — and
//! the experiment harness snapshots the whole registry atomically to
//! `<out>/<name>_metrics.json` when the run finishes.
//!
//! The snapshot schema (`socnet-metrics-v1`) renders every section in
//! sorted key order, and the `"counters"` section on a single line:
//! counter values are deterministic for a deterministic workload, so a
//! test (or a human with `grep`) can byte-compare that line across
//! `--threads 1/2/4` while the timing histograms vary freely.

use std::collections::BTreeMap;
use std::io;
use std::path::Path;
use std::sync::Mutex;

use crate::json;
use crate::write_atomic;

/// Upper bounds (seconds) of the fixed histogram buckets; a final
/// implicit `+inf` bucket catches everything slower.
pub const BUCKET_BOUNDS_S: [f64; 6] = [0.001, 0.01, 0.1, 1.0, 10.0, 100.0];

/// A fixed-bucket duration histogram (seconds).
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    /// Observation counts per bucket (`BUCKET_BOUNDS_S` + overflow).
    pub buckets: [u64; BUCKET_BOUNDS_S.len() + 1],
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations, in seconds.
    pub sum_s: f64,
    /// Smallest observation, in seconds.
    pub min_s: f64,
    /// Largest observation, in seconds.
    pub max_s: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKET_BOUNDS_S.len() + 1],
            count: 0,
            sum_s: 0.0,
            min_s: f64::INFINITY,
            max_s: 0.0,
        }
    }
}

impl Histogram {
    fn observe(&mut self, secs: f64) {
        let idx = BUCKET_BOUNDS_S
            .iter()
            .position(|&bound| secs <= bound)
            .unwrap_or(BUCKET_BOUNDS_S.len());
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum_s += secs;
        self.min_s = self.min_s.min(secs);
        self.max_s = self.max_s.max(secs);
    }

    fn to_json(&self) -> String {
        let mut buckets = json::Arr::new();
        for &b in &self.buckets {
            buckets.push_raw(b.to_string());
        }
        let mut o = json::Obj::new();
        o.int("count", self.count)
            .num("sum_s", self.sum_s, 6)
            .num("min_s", if self.count == 0 { 0.0 } else { self.min_s }, 6)
            .num("max_s", self.max_s, 6)
            .raw("buckets", &buckets.finish());
        o.finish()
    }
}

/// A registry of named counters, gauges, and duration histograms.
#[derive(Debug, Default)]
pub struct Metrics {
    counters: Mutex<BTreeMap<String, u64>>,
    gauges: Mutex<BTreeMap<String, f64>>,
    durations: Mutex<BTreeMap<String, Histogram>>,
}

static GLOBAL: Metrics = Metrics {
    counters: Mutex::new(BTreeMap::new()),
    gauges: Mutex::new(BTreeMap::new()),
    durations: Mutex::new(BTreeMap::new()),
};

impl Metrics {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The process-wide registry the engines record into.
    pub fn global() -> &'static Metrics {
        &GLOBAL
    }

    fn lock<'a, T>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
        m.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    /// Adds `delta` to the named counter (creating it at zero).
    pub fn incr(&self, name: &str, delta: u64) {
        *Self::lock(&self.counters).entry(name.to_string()).or_insert(0) += delta;
    }

    /// Sets the named gauge.
    pub fn gauge_set(&self, name: &str, value: f64) {
        Self::lock(&self.gauges).insert(name.to_string(), value);
    }

    /// Records one duration observation (seconds) into the named
    /// histogram.
    pub fn observe(&self, name: &str, secs: f64) {
        Self::lock(&self.durations)
            .entry(name.to_string())
            .or_default()
            .observe(secs);
    }

    /// Current value of a counter (zero when never incremented).
    pub fn counter(&self, name: &str) -> u64 {
        Self::lock(&self.counters).get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        Self::lock(&self.gauges).get(name).copied()
    }

    /// A copy of the named histogram, if any observation was recorded.
    pub fn duration(&self, name: &str) -> Option<Histogram> {
        Self::lock(&self.durations).get(name).cloned()
    }

    /// Clears every metric. The experiment harness calls this at run
    /// start so one binary invocation owns the whole registry.
    pub fn reset(&self) {
        Self::lock(&self.counters).clear();
        Self::lock(&self.gauges).clear();
        Self::lock(&self.durations).clear();
    }

    /// Renders the `socnet-metrics-v1` snapshot.
    ///
    /// Layout contract: four lines — schema, `"counters"` (one line,
    /// sorted keys), `"gauges"`, then a `"durations"` object with one
    /// line per histogram. Pinned by golden tests.
    pub fn render_snapshot(&self) -> String {
        let mut counters = json::Obj::new();
        for (k, v) in Self::lock(&self.counters).iter() {
            counters.int(k, *v);
        }
        let mut gauges = json::Obj::new();
        for (k, v) in Self::lock(&self.gauges).iter() {
            gauges.num(k, *v, 6);
        }
        let mut out = String::from("{\n");
        out.push_str("\"schema\":\"socnet-metrics-v1\",\n");
        out.push_str(&format!("\"counters\":{},\n", counters.finish()));
        out.push_str(&format!("\"gauges\":{},\n", gauges.finish()));
        out.push_str("\"durations\":{");
        let durations = Self::lock(&self.durations);
        for (i, (k, h)) in durations.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\n\"{}\":{}", json::escape(k), h.to_json()));
        }
        if !durations.is_empty() {
            out.push('\n');
        }
        out.push_str("}\n}\n");
        out
    }

    /// Writes the snapshot atomically to `path`.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from the atomic write.
    pub fn write_snapshot(&self, path: &Path) -> io::Result<()> {
        write_atomic(path, self.render_snapshot().as_bytes())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_sort() {
        let m = Metrics::new();
        m.incr("z.last", 1);
        m.incr("a.first", 2);
        m.incr("a.first", 3);
        assert_eq!(m.counter("a.first"), 5);
        assert_eq!(m.counter("missing"), 0);
        let snap = m.render_snapshot();
        assert!(snap.contains(r#""counters":{"a.first":5,"z.last":1}"#), "{snap}");
        assert!(json::is_valid(&snap));
    }

    #[test]
    fn histogram_buckets_by_bound() {
        let mut h = Histogram::default();
        h.observe(0.0005); // bucket 0 (<= 1ms)
        h.observe(0.05); // bucket 2 (<= 100ms)
        h.observe(0.05);
        h.observe(500.0); // overflow bucket
        assert_eq!(h.buckets, [1, 0, 2, 0, 0, 0, 1]);
        assert_eq!(h.count, 4);
        assert!((h.sum_s - 500.1005).abs() < 1e-9);
        assert!((h.min_s - 0.0005).abs() < 1e-12);
        assert!((h.max_s - 500.0).abs() < 1e-12);
    }

    #[test]
    fn snapshot_schema_is_pinned() {
        let m = Metrics::new();
        m.incr("units.completed", 3);
        m.gauge_set("threads", 2.0);
        m.observe("unit.wall", 0.5);
        let snap = m.render_snapshot();
        assert_eq!(
            snap,
            "{\n\"schema\":\"socnet-metrics-v1\",\n\
             \"counters\":{\"units.completed\":3},\n\
             \"gauges\":{\"threads\":2.000000},\n\
             \"durations\":{\n\
             \"unit.wall\":{\"count\":1,\"sum_s\":0.500000,\"min_s\":0.500000,\"max_s\":0.500000,\"buckets\":[0,0,0,1,0,0,0]}\n\
             }\n}\n"
        );
        assert!(json::is_valid(&snap));
    }

    #[test]
    fn empty_snapshot_is_valid_json() {
        let m = Metrics::new();
        let snap = m.render_snapshot();
        assert!(json::is_valid(&snap), "{snap}");
        assert!(snap.contains("\"durations\":{}"));
    }

    #[test]
    fn reset_clears_everything() {
        let m = Metrics::new();
        m.incr("c", 1);
        m.gauge_set("g", 1.0);
        m.observe("d", 1.0);
        m.reset();
        assert_eq!(m.counter("c"), 0);
        assert!(m.gauge("g").is_none());
        assert!(m.duration("d").is_none());
    }

    #[test]
    fn snapshot_writes_atomically() {
        let dir = std::env::temp_dir().join("socnet-metrics-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo_metrics.json");
        let m = Metrics::new();
        m.incr("units.completed", 1);
        m.write_snapshot(&path).expect("write snapshot");
        let text = std::fs::read_to_string(&path).expect("read snapshot");
        assert_eq!(text, m.render_snapshot());
        std::fs::remove_file(&path).ok();
    }
}
