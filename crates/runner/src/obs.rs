//! Structured tracing: spans, events, and the heartbeat thread.
//!
//! Every experiment binary routes its diagnostics through one global
//! [`Logger`] instead of ad-hoc `eprintln!`s. An event is a level, a
//! dotted name (`stage.done`, `checkpoint.open`, `unit.retry`), and a
//! small ordered list of `key=value` fields; the logger renders it
//! either as a human-readable line (`pretty`, the default) or as one
//! JSON object per line (`json`), to stderr or to a `--log-file`.
//!
//! The JSON schema is pinned by golden tests and is the contract the
//! `obs-check` CLI command and CI validate:
//!
//! ```json
//! {"seq":0,"ts_s":0.000,"level":"info","event":"run.start","fields":{"name":"fig1"}}
//! ```
//!
//! Each line is flushed as it is written, so the log stays valid JSONL
//! even when a worker panics or the run is cancelled mid-stage.
//!
//! [`Heartbeat`] is a small companion thread that periodically emits a
//! `heartbeat` event with the current stage, unit progress, elapsed
//! wall, and an ETA — long sweeps are visibly alive without any
//! per-unit printing.

use std::fmt;
use std::fs::File;
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;
use std::time::{Duration, Instant};

use crate::json;

/// How the sink renders events.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum LogFormat {
    /// Human-readable single lines: `[   1.23s] stage.done stage=fig1a`.
    #[default]
    Pretty,
    /// One JSON object per line (JSONL), schema-stable.
    Json,
}

impl std::str::FromStr for LogFormat {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "pretty" => Ok(LogFormat::Pretty),
            "json" => Ok(LogFormat::Json),
            other => Err(format!("unknown log format {other:?} (use pretty|json)")),
        }
    }
}

/// Event severity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Level {
    /// High-volume diagnostics (per-unit progress).
    Debug,
    /// Normal lifecycle events.
    Info,
    /// Something degraded but the run continues.
    Warn,
}

impl Level {
    fn label(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
        }
    }
}

/// One typed field value on an event.
#[derive(Debug, Clone, PartialEq)]
pub enum FieldValue {
    /// A string value.
    Str(String),
    /// An unsigned integer.
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A float (rendered with 6 decimals in JSON).
    F64(f64),
    /// A boolean.
    Bool(bool),
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}
impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}
impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}
impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}
impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}
impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}
impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl fmt::Display for FieldValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldValue::Str(s) if s.contains(char::is_whitespace) || s.is_empty() => {
                write!(f, "{s:?}")
            }
            FieldValue::Str(s) => write!(f, "{s}"),
            FieldValue::U64(v) => write!(f, "{v}"),
            FieldValue::I64(v) => write!(f, "{v}"),
            FieldValue::F64(v) => write!(f, "{v:.3}"),
            FieldValue::Bool(v) => write!(f, "{v}"),
        }
    }
}

impl FieldValue {
    fn append_json(&self, key: &str, obj: &mut json::Obj) {
        match self {
            FieldValue::Str(s) => obj.str(key, s),
            FieldValue::U64(v) => obj.int(key, *v),
            FieldValue::I64(v) => obj.sint(key, *v),
            FieldValue::F64(v) => obj.num(key, *v, 6),
            FieldValue::Bool(v) => obj.bool(key, *v),
        };
    }
}

enum Sink {
    /// `eprintln!`-based so the test harness captures it.
    Stderr,
    File(File),
    Capture(Arc<Mutex<String>>),
}

struct Inner {
    format: LogFormat,
    quiet: bool,
    sink: Mutex<Sink>,
    start: Instant,
    seq: AtomicU64,
    /// When set, every event carries this timestamp — golden tests pin
    /// the full line without racing the wall clock.
    fixed_ts: Option<f64>,
}

/// A cloneable handle to an event sink.
#[derive(Clone)]
pub struct Logger {
    inner: Arc<Inner>,
}

impl fmt::Debug for Logger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Logger")
            .field("format", &self.inner.format)
            .field("quiet", &self.inner.quiet)
            .finish_non_exhaustive()
    }
}

impl Logger {
    fn new(format: LogFormat, quiet: bool, sink: Sink) -> Self {
        Logger {
            inner: Arc::new(Inner {
                format,
                quiet,
                sink: Mutex::new(sink),
                start: Instant::now(),
                seq: AtomicU64::new(0),
                fixed_ts: None,
            }),
        }
    }

    /// A logger writing to stderr.
    pub fn stderr(format: LogFormat, quiet: bool) -> Self {
        Logger::new(format, quiet, Sink::Stderr)
    }

    /// A logger writing (and flushing) each line to `path`, truncating
    /// any existing file.
    ///
    /// # Errors
    ///
    /// Returns any I/O error from creating the file.
    pub fn file(format: LogFormat, path: &Path) -> io::Result<Self> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        Ok(Logger::new(format, false, Sink::File(File::create(path)?)))
    }

    /// A logger appending into an in-memory buffer, with a fixed
    /// timestamp so output is fully deterministic. For tests.
    pub fn capture(format: LogFormat) -> (Self, Arc<Mutex<String>>) {
        let buf = Arc::new(Mutex::new(String::new()));
        let mut logger = Logger::new(format, false, Sink::Capture(Arc::clone(&buf)));
        Arc::get_mut(&mut logger.inner).expect("fresh logger").fixed_ts = Some(0.0);
        (logger, buf)
    }

    fn ts(&self) -> f64 {
        self.inner
            .fixed_ts
            .unwrap_or_else(|| self.inner.start.elapsed().as_secs_f64())
    }

    /// Emits one event.
    pub fn event(&self, level: Level, name: &str, fields: &[(&str, FieldValue)]) {
        let seq = self.inner.seq.fetch_add(1, Ordering::Relaxed);
        let line = match self.inner.format {
            LogFormat::Json => {
                let mut fobj = json::Obj::new();
                for (k, v) in fields {
                    v.append_json(k, &mut fobj);
                }
                let mut obj = json::Obj::new();
                obj.int("seq", seq)
                    .num("ts_s", self.ts(), 3)
                    .str("level", level.label())
                    .str("event", name)
                    .raw("fields", &fobj.finish());
                obj.finish()
            }
            LogFormat::Pretty => {
                let mut line = format!("[{:8.2}s] ", self.ts());
                if level == Level::Warn {
                    line.push_str("WARN ");
                }
                line.push_str(name);
                for (k, v) in fields {
                    line.push_str(&format!(" {k}={v}"));
                }
                line
            }
        };
        let mut sink = self
            .inner
            .sink
            .lock()
            .unwrap_or_else(|poisoned| poisoned.into_inner());
        match &mut *sink {
            Sink::Stderr => {
                // Debug events are high-volume engine internals; keep
                // them off the terminal unless SOCNET_DEBUG is set. A
                // --log-file sink always records them.
                let debug_ok = level != Level::Debug || std::env::var_os("SOCNET_DEBUG").is_some();
                if !self.inner.quiet && debug_ok {
                    eprintln!("{line}");
                }
            }
            Sink::File(f) => {
                let _ = writeln!(f, "{line}");
                let _ = f.flush();
            }
            Sink::Capture(buf) => {
                let mut buf = buf.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                buf.push_str(&line);
                buf.push('\n');
            }
        }
    }

    /// Starts a span: emits `<name>.start` now and `<name>.done` with a
    /// `wall_s` field when the guard drops.
    pub fn span(&self, name: &str, fields: &[(&str, FieldValue)]) -> Span {
        self.event(Level::Info, &format!("{name}.start"), fields);
        Span {
            logger: self.clone(),
            name: name.to_string(),
            fields: fields
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            start: Instant::now(),
        }
    }
}

/// A timing guard returned by [`Logger::span`] / [`span`].
#[derive(Debug)]
pub struct Span {
    logger: Logger,
    name: String,
    fields: Vec<(String, FieldValue)>,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let wall = self.start.elapsed().as_secs_f64();
        let mut fields: Vec<(&str, FieldValue)> = self
            .fields
            .iter()
            .map(|(k, v)| (k.as_str(), v.clone()))
            .collect();
        fields.push(("wall_s", FieldValue::F64(wall)));
        self.logger
            .event(Level::Info, &format!("{}.done", self.name), &fields);
    }
}

static GLOBAL: Mutex<Option<Logger>> = Mutex::new(None);

/// Replaces the process-wide logger (default: pretty to stderr).
pub fn set_global(logger: Logger) {
    *GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = Some(logger);
}

/// Builds and installs the process-wide logger from CLI-level choices.
///
/// With `log_file` set, events go to that file; otherwise to stderr.
/// `quiet` silences the stderr sink (a file sink is always written).
///
/// # Errors
///
/// Returns any I/O error from creating the log file.
pub fn init(format: LogFormat, log_file: Option<&Path>, quiet: bool) -> io::Result<()> {
    let logger = match log_file {
        Some(path) => Logger::file(format, path)?,
        None => Logger::stderr(format, quiet),
    };
    set_global(logger);
    Ok(())
}

/// The process-wide logger (installing the default on first use).
pub fn global() -> Logger {
    let mut guard = GLOBAL.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
    guard
        .get_or_insert_with(|| Logger::stderr(LogFormat::Pretty, false))
        .clone()
}

/// Emits a debug-level event on the global logger.
pub fn debug(name: &str, fields: &[(&str, FieldValue)]) {
    global().event(Level::Debug, name, fields);
}

/// Emits an info-level event on the global logger.
pub fn info(name: &str, fields: &[(&str, FieldValue)]) {
    global().event(Level::Info, name, fields);
}

/// Emits a warn-level event on the global logger.
pub fn warn(name: &str, fields: &[(&str, FieldValue)]) {
    global().event(Level::Warn, name, fields);
}

/// Starts a span on the global logger.
pub fn span(name: &str, fields: &[(&str, FieldValue)]) -> Span {
    global().span(name, fields)
}

// ---------------------------------------------------------------------
// Progress + heartbeat
// ---------------------------------------------------------------------

static PROGRESS_STAGE: Mutex<String> = Mutex::new(String::new());
static PROGRESS_DONE: AtomicU64 = AtomicU64::new(0);
static PROGRESS_TOTAL: AtomicU64 = AtomicU64::new(0);

/// Declares the stage the process is currently working through, for
/// heartbeat reporting. Called by the pool and sweep engines.
pub fn progress_begin(stage: &str, total: u64) {
    *PROGRESS_STAGE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner()) = stage.to_string();
    PROGRESS_DONE.store(0, Ordering::Relaxed);
    PROGRESS_TOTAL.store(total, Ordering::Relaxed);
}

/// Marks one unit of the current stage finished (any outcome).
pub fn progress_tick() {
    PROGRESS_DONE.fetch_add(1, Ordering::Relaxed);
}

/// Current `(stage, done, total)` progress snapshot.
pub fn progress_snapshot() -> (String, u64, u64) {
    let stage = PROGRESS_STAGE
        .lock()
        .unwrap_or_else(|poisoned| poisoned.into_inner())
        .clone();
    (
        stage,
        PROGRESS_DONE.load(Ordering::Relaxed),
        PROGRESS_TOTAL.load(Ordering::Relaxed),
    )
}

/// A background thread emitting periodic `heartbeat` events with the
/// current stage, progress counts, elapsed wall, and a linear ETA.
///
/// The interval comes from `SOCNET_HEARTBEAT_SECS` (default 10; `0`
/// disables the thread entirely). Dropping the handle stops and joins
/// the thread.
#[derive(Debug)]
pub struct Heartbeat {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<thread::JoinHandle<()>>,
}

impl Heartbeat {
    /// Spawns the heartbeat thread, or returns `None` when disabled.
    pub fn start() -> Option<Heartbeat> {
        let interval = std::env::var("SOCNET_HEARTBEAT_SECS")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
            .unwrap_or(10);
        if interval == 0 {
            return None;
        }
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let thread_stop = Arc::clone(&stop);
        let started = Instant::now();
        let handle = thread::Builder::new()
            .name("heartbeat".into())
            .spawn(move || {
                let (lock, cvar) = &*thread_stop;
                let mut stopped = lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner());
                loop {
                    let (guard, timeout) = cvar
                        .wait_timeout(stopped, Duration::from_secs(interval))
                        .unwrap_or_else(|poisoned| poisoned.into_inner());
                    stopped = guard;
                    if *stopped {
                        return;
                    }
                    if !timeout.timed_out() {
                        continue;
                    }
                    let (stage, done, total) = progress_snapshot();
                    let elapsed = started.elapsed().as_secs_f64();
                    let mut fields: Vec<(&str, FieldValue)> = vec![
                        ("stage", stage.into()),
                        ("done", done.into()),
                        ("total", total.into()),
                        ("elapsed_s", elapsed.into()),
                    ];
                    if done > 0 && total > done {
                        let eta = elapsed / done as f64 * (total - done) as f64;
                        fields.push(("eta_s", eta.into()));
                    }
                    info("heartbeat", &fields);
                }
            })
            .ok()?;
        Some(Heartbeat {
            stop,
            handle: Some(handle),
        })
    }
}

impl Drop for Heartbeat {
    fn drop(&mut self) {
        let (lock, cvar) = &*self.stop;
        *lock.lock().unwrap_or_else(|poisoned| poisoned.into_inner()) = true;
        cvar.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_event_schema_is_pinned() {
        let (logger, buf) = Logger::capture(LogFormat::Json);
        logger.event(
            Level::Info,
            "run.start",
            &[
                ("name", "fig1".into()),
                ("units", 7u64.into()),
                ("frac", 0.5f64.into()),
                ("resumed", true.into()),
            ],
        );
        logger.event(Level::Warn, "csv.write_failed", &[("error", "disk \"full\"".into())]);
        let text = buf.lock().unwrap().clone();
        let mut lines = text.lines();
        assert_eq!(
            lines.next().unwrap(),
            r#"{"seq":0,"ts_s":0.000,"level":"info","event":"run.start","fields":{"name":"fig1","units":7,"frac":0.500000,"resumed":true}}"#
        );
        assert_eq!(
            lines.next().unwrap(),
            r#"{"seq":1,"ts_s":0.000,"level":"warn","event":"csv.write_failed","fields":{"error":"disk \"full\""}}"#
        );
        assert!(lines.next().is_none());
        assert!(json::is_valid_jsonl(&text));
    }

    #[test]
    fn pretty_format_renders_fields_inline() {
        let (logger, buf) = Logger::capture(LogFormat::Pretty);
        logger.event(
            Level::Warn,
            "unit.retry",
            &[("id", "Enron walk".into()), ("attempt", 2u32.into())],
        );
        let text = buf.lock().unwrap().clone();
        assert_eq!(text, "[    0.00s] WARN unit.retry id=\"Enron walk\" attempt=2\n");
    }

    #[test]
    fn span_emits_start_and_done_with_wall() {
        let (logger, buf) = Logger::capture(LogFormat::Json);
        {
            let _span = logger.span("stage", &[("stage", "fig1a".into())]);
        }
        let text = buf.lock().unwrap().clone();
        assert!(json::is_valid_jsonl(&text));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains(r#""event":"stage.start""#), "{}", lines[0]);
        assert!(lines[1].contains(r#""event":"stage.done""#), "{}", lines[1]);
        assert!(lines[1].contains(r#""wall_s":"#), "{}", lines[1]);
    }

    #[test]
    fn log_format_parses() {
        assert_eq!("pretty".parse::<LogFormat>().unwrap(), LogFormat::Pretty);
        assert_eq!("json".parse::<LogFormat>().unwrap(), LogFormat::Json);
        assert!("yaml".parse::<LogFormat>().is_err());
    }

    #[test]
    fn progress_snapshot_tracks_ticks() {
        progress_begin("test-stage", 4);
        progress_tick();
        progress_tick();
        let (stage, done, total) = progress_snapshot();
        assert_eq!(stage, "test-stage");
        assert_eq!(done, 2);
        assert_eq!(total, 4);
    }

    #[test]
    fn file_logger_flushes_each_line() {
        let dir = std::env::temp_dir().join("socnet-obs-file-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("events.jsonl");
        let logger = Logger::file(LogFormat::Json, &path).expect("create log file");
        logger.event(Level::Info, "one", &[]);
        logger.event(Level::Info, "two", &[("k", 1u64.into())]);
        // Read back while the logger is still alive: lines must already
        // be flushed and individually valid.
        let text = std::fs::read_to_string(&path).expect("read log");
        assert_eq!(text.lines().count(), 2);
        assert!(json::is_valid_jsonl(&text));
        drop(logger);
        std::fs::remove_file(&path).ok();
    }
}
