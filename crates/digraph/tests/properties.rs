//! Property-based tests of the digraph substrate.

use proptest::prelude::*;
use socnet_core::NodeId;
use socnet_digraph::{largest_scc, strongly_connected_components, Digraph, DirectedWalk};

fn arb_digraph() -> impl Strategy<Value = Digraph> {
    (2usize..25).prop_flat_map(|n| {
        let arc = (0..n as u32, 0..n as u32);
        proptest::collection::vec(arc, 0..90)
            .prop_map(move |arcs| Digraph::from_arcs(n, arcs))
    })
}

proptest! {
    #[test]
    fn in_and_out_degrees_balance(g in arb_digraph()) {
        let out_sum: usize = g.nodes().map(|v| g.out_degree(v)).sum();
        let in_sum: usize = g.nodes().map(|v| g.in_degree(v)).sum();
        prop_assert_eq!(out_sum, g.arc_count());
        prop_assert_eq!(in_sum, g.arc_count());
    }

    #[test]
    fn predecessors_mirror_successors(g in arb_digraph()) {
        for u in g.nodes() {
            for &v in g.successors(u) {
                prop_assert!(g.predecessors(v).contains(&u));
            }
            for &p in g.predecessors(u) {
                prop_assert!(g.has_arc(p, u));
            }
        }
    }

    #[test]
    fn scc_labels_partition_and_respect_cycles(g in arb_digraph()) {
        let scc = strongly_connected_components(&g);
        prop_assert_eq!(scc.label.len(), g.node_count());
        prop_assert_eq!(scc.sizes.iter().sum::<usize>(), g.node_count());
        prop_assert_eq!(scc.sizes.len(), scc.count);
        // Mutually reachable nodes share a label: spot-check 2-cycles.
        for (u, v) in g.arcs() {
            if g.has_arc(v, u) {
                prop_assert_eq!(scc.label[u.index()], scc.label[v.index()]);
            }
        }
    }

    #[test]
    fn condensation_is_acyclic(g in arb_digraph()) {
        // Tarjan assigns labels in reverse topological order, so every
        // cross-component arc must point from a higher label to a lower.
        let scc = strongly_connected_components(&g);
        for (u, v) in g.arcs() {
            let (lu, lv) = (scc.label[u.index()], scc.label[v.index()]);
            if lu != lv {
                prop_assert!(lu > lv, "arc {u}->{v} breaks reverse-topo labels {lu}->{lv}");
            }
        }
    }

    #[test]
    fn largest_scc_is_strongly_connected(g in arb_digraph()) {
        let (core, map) = largest_scc(&g);
        prop_assert_eq!(core.node_count(), map.len());
        if core.node_count() > 1 {
            let inner = strongly_connected_components(&core);
            prop_assert_eq!(inner.count, 1, "extracted core must be one SCC");
        }
    }

    #[test]
    fn surfer_conserves_probability(g in arb_digraph(), alpha in 0.0f64..0.9) {
        let walk = DirectedWalk::new(&g, alpha);
        let n = g.node_count();
        let mut x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0; n];
        for _ in 0..5 {
            walk.step(&x, &mut y);
            prop_assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-9);
            prop_assert!(y.iter().all(|&p| p >= -1e-12));
            std::mem::swap(&mut x, &mut y);
        }
    }

    #[test]
    fn pagerank_is_a_fixed_point(g in arb_digraph()) {
        let walk = DirectedWalk::new(&g, 0.15);
        let pi = walk.stationary(1e-13, 50_000);
        let mut next = vec![0.0; pi.len()];
        walk.step(&pi, &mut next);
        prop_assert!(
            socnet_mixing::total_variation(&pi, &next) < 1e-9,
            "stationary must be invariant"
        );
    }

    #[test]
    fn round_trip_through_undirected(g in arb_digraph()) {
        let sym = Digraph::from_undirected(&g.to_undirected());
        // Symmetrization is idempotent.
        prop_assert_eq!(sym.to_undirected(), g.to_undirected());
        // Every original arc survives as some direction.
        for (u, v) in g.arcs() {
            prop_assert!(sym.has_arc(u, v) && sym.has_arc(v, u));
        }
        let _ = NodeId(0);
    }
}
