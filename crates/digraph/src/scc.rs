//! Strongly connected components (iterative Tarjan).

use serde::{Deserialize, Serialize};
use socnet_core::NodeId;

use crate::Digraph;

/// SCC labeling of a digraph.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SccLabels {
    /// Component label per node, in `0..count`. Labels are assigned in
    /// reverse topological order of the condensation (Tarjan's order).
    pub label: Vec<u32>,
    /// Number of strongly connected components.
    pub count: usize,
    /// Number of nodes in each component.
    pub sizes: Vec<usize>,
}

impl SccLabels {
    /// Label of the largest component (ties to the smaller label).
    pub fn largest(&self) -> u32 {
        let mut best = 0usize;
        for (i, &s) in self.sizes.iter().enumerate() {
            if s > self.sizes[best] {
                best = i;
            }
        }
        best as u32
    }
}

/// Computes the strongly connected components with an iterative Tarjan
/// (explicit stack, so deep recursions on path-like graphs cannot
/// overflow).
///
/// # Examples
///
/// ```
/// use socnet_digraph::{strongly_connected_components, Digraph};
///
/// // A 2-cycle feeding a sink: two SCCs.
/// let g = Digraph::from_arcs(3, [(0, 1), (1, 0), (1, 2)]);
/// let scc = strongly_connected_components(&g);
/// assert_eq!(scc.count, 2);
/// assert_eq!(scc.label[0], scc.label[1]);
/// assert_ne!(scc.label[0], scc.label[2]);
/// ```
pub fn strongly_connected_components(graph: &Digraph) -> SccLabels {
    let n = graph.node_count();
    const UNSET: u32 = u32::MAX;
    let mut index = vec![UNSET; n];
    let mut lowlink = vec![0u32; n];
    let mut on_stack = vec![false; n];
    let mut label = vec![UNSET; n];
    let mut stack: Vec<u32> = Vec::new();
    let mut next_index = 0u32;
    let mut count = 0u32;
    let mut sizes = Vec::new();

    // Explicit DFS frames: (node, next successor position).
    let mut frames: Vec<(u32, usize)> = Vec::new();
    for root in 0..n as u32 {
        if index[root as usize] != UNSET {
            continue;
        }
        frames.push((root, 0));
        index[root as usize] = next_index;
        lowlink[root as usize] = next_index;
        next_index += 1;
        stack.push(root);
        on_stack[root as usize] = true;

        while let Some(&mut (v, ref mut pos)) = frames.last_mut() {
            let succ = graph.successors(NodeId(v));
            if *pos < succ.len() {
                let w = succ[*pos].0;
                *pos += 1;
                if index[w as usize] == UNSET {
                    index[w as usize] = next_index;
                    lowlink[w as usize] = next_index;
                    next_index += 1;
                    stack.push(w);
                    on_stack[w as usize] = true;
                    frames.push((w, 0));
                } else if on_stack[w as usize] {
                    lowlink[v as usize] = lowlink[v as usize].min(index[w as usize]);
                }
            } else {
                frames.pop();
                if let Some(&mut (parent, _)) = frames.last_mut() {
                    lowlink[parent as usize] =
                        lowlink[parent as usize].min(lowlink[v as usize]);
                }
                if lowlink[v as usize] == index[v as usize] {
                    // v is an SCC root: pop its component.
                    let mut size = 0usize;
                    loop {
                        let w = stack.pop().expect("stack holds the component");
                        on_stack[w as usize] = false;
                        label[w as usize] = count;
                        size += 1;
                        if w == v {
                            break;
                        }
                    }
                    sizes.push(size);
                    count += 1;
                }
            }
        }
    }

    SccLabels { label, count: count as usize, sizes }
}

/// Extracts the largest strongly connected component as a standalone
/// digraph, with the new-to-old id map.
///
/// # Examples
///
/// ```
/// use socnet_digraph::{largest_scc, Digraph};
///
/// let g = Digraph::from_arcs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
/// let (core, map) = largest_scc(&g);
/// assert_eq!(core.node_count(), 3);
/// assert_eq!(map.len(), 3);
/// ```
pub fn largest_scc(graph: &Digraph) -> (Digraph, Vec<NodeId>) {
    let scc = strongly_connected_components(graph);
    let keep = scc.largest();
    let members: Vec<NodeId> =
        graph.nodes().filter(|v| scc.label[v.index()] == keep).collect();
    let mut old_to_new = vec![u32::MAX; graph.node_count()];
    for (new, &old) in members.iter().enumerate() {
        old_to_new[old.index()] = new as u32;
    }
    let arcs: Vec<(u32, u32)> = graph
        .arcs()
        .filter_map(|(u, v)| {
            let (nu, nv) = (old_to_new[u.index()], old_to_new[v.index()]);
            (nu != u32::MAX && nv != u32::MAX).then_some((nu, nv))
        })
        .collect();
    (Digraph::from_arcs(members.len(), arcs), members)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycle_is_one_scc() {
        let g = Digraph::from_arcs(5, (0..5).map(|i| (i, (i + 1) % 5)));
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 1);
        assert_eq!(scc.sizes, vec![5]);
    }

    #[test]
    fn dag_has_singleton_sccs() {
        let g = Digraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 4);
        assert!(scc.sizes.iter().all(|&s| s == 1));
    }

    #[test]
    fn two_cycles_and_a_bridge() {
        // cycle {0,1,2} → cycle {3,4}.
        let g = Digraph::from_arcs(5, [(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (4, 3)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, 2);
        assert_eq!(scc.label[0], scc.label[1]);
        assert_eq!(scc.label[0], scc.label[2]);
        assert_eq!(scc.label[3], scc.label[4]);
        let (core, map) = largest_scc(&g);
        assert_eq!(core.node_count(), 3);
        assert_eq!(map, vec![NodeId(0), NodeId(1), NodeId(2)]);
        assert_eq!(core.arc_count(), 3);
    }

    #[test]
    fn deep_path_does_not_overflow() {
        // 50k-node directed path: recursion would blow the stack.
        let n = 50_000u32;
        let g = Digraph::from_arcs(n as usize, (0..n - 1).map(|i| (i, i + 1)));
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.count, n as usize);
    }

    #[test]
    fn labels_respect_reverse_topological_order() {
        // Tarjan labels sinks first: in 0 → 1, component of 1 gets label 0.
        let g = Digraph::from_arcs(2, [(0, 1)]);
        let scc = strongly_connected_components(&g);
        assert_eq!(scc.label[1], 0);
        assert_eq!(scc.label[0], 1);
    }

    #[test]
    fn symmetric_digraph_matches_undirected_components() {
        let und = socnet_core::Graph::from_edges(6, [(0, 1), (1, 2), (3, 4)]);
        let di = crate::Digraph::from_undirected(&und);
        let scc = strongly_connected_components(&di);
        let comps = socnet_core::connected_components(&und);
        assert_eq!(scc.count, comps.count);
    }
}
