//! The sampling method on directed chains.

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use serde::{Deserialize, Serialize};
use socnet_core::NodeId;
use socnet_mixing::total_variation;

use crate::{DirectedWalk, Digraph};

/// Parameters for a directed mixing measurement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DirectedMixingConfig {
    /// Number of uniformly sampled walk sources.
    pub sources: usize,
    /// Longest walk length to evaluate.
    pub max_walk: usize,
    /// Teleport probability of the surfer (0 = pure directed walk; the
    /// chain must then be ergodic for the reference `π` to exist).
    pub teleport: f64,
    /// Stationary-distribution power-iteration tolerance.
    pub stationary_tol: f64,
    /// RNG seed for source sampling.
    pub seed: u64,
}

impl Default for DirectedMixingConfig {
    fn default() -> Self {
        DirectedMixingConfig {
            sources: 50,
            max_walk: 100,
            teleport: 0.0,
            stationary_tol: 1e-12,
            seed: 0xd193,
        }
    }
}

/// Per-source TVD curves of a directed chain — Figure 1's measurement
/// lifted to digraphs (the authors' follow-up study).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DirectedMixing {
    curves: Vec<(NodeId, Vec<f64>)>,
    max_walk: usize,
}

impl DirectedMixing {
    /// Runs the sampling method on `graph`.
    ///
    /// The reference distribution is computed once by power iteration;
    /// each sampled source's point mass is then evolved `max_walk` steps.
    ///
    /// # Panics
    ///
    /// Panics if the graph is empty or `sources == 0`.
    pub fn measure(graph: &Digraph, config: &DirectedMixingConfig) -> Self {
        assert!(config.sources > 0, "need at least one source");
        assert!(graph.node_count() > 0, "cannot measure an empty digraph");
        let walk = DirectedWalk::new(graph, config.teleport);
        let pi = walk.stationary(config.stationary_tol, 200 * config.max_walk + 2_000);

        let n = graph.node_count();
        let mut rng = StdRng::seed_from_u64(config.seed);
        let mut sources: Vec<NodeId> = if config.sources >= n {
            graph.nodes().collect()
        } else {
            let mut picked = std::collections::BTreeSet::new();
            while picked.len() < config.sources {
                picked.insert(rng.random_range(0..n as u32));
            }
            picked.into_iter().map(NodeId).collect()
        };
        sources.sort_unstable();

        let mut curves = Vec::with_capacity(sources.len());
        let mut x = vec![0.0f64; n];
        let mut scratch = vec![0.0f64; n];
        for &s in &sources {
            x.fill(0.0);
            x[s.index()] = 1.0;
            let mut tvd = Vec::with_capacity(config.max_walk);
            for _ in 0..config.max_walk {
                walk.step(&x, &mut scratch);
                std::mem::swap(&mut x, &mut scratch);
                tvd.push(total_variation(&x, &pi));
            }
            curves.push((s, tvd));
        }
        DirectedMixing { curves, max_walk: config.max_walk }
    }

    /// Per-source curves in source-id order.
    pub fn curves(&self) -> &[(NodeId, Vec<f64>)] {
        &self.curves
    }

    /// Mean TVD across sources per walk length.
    pub fn mean_curve(&self) -> Vec<f64> {
        let mut acc = vec![0.0; self.max_walk];
        for (_, c) in &self.curves {
            for (a, &d) in acc.iter_mut().zip(c) {
                *a += d;
            }
        }
        let k = self.curves.len() as f64;
        acc.iter_mut().for_each(|a| *a /= k);
        acc
    }

    /// Worst-source TVD per walk length (Eq. 2's `max_i`, sampled).
    pub fn max_curve(&self) -> Vec<f64> {
        let mut out = self.curves[0].1.clone();
        for (_, c) in &self.curves[1..] {
            for (o, &d) in out.iter_mut().zip(c) {
                *o = o.max(d);
            }
        }
        out
    }

    /// First walk length at which every sampled source is within
    /// `epsilon` of the reference distribution.
    pub fn mixing_time(&self, epsilon: f64) -> Option<usize> {
        self.max_curve().iter().position(|&d| d < epsilon).map(|t| t + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(sources: usize, max_walk: usize, teleport: f64) -> DirectedMixingConfig {
        DirectedMixingConfig { sources, max_walk, teleport, ..Default::default() }
    }

    #[test]
    fn complete_digraph_mixes_immediately() {
        let n = 20u32;
        let arcs =
            (0..n).flat_map(|u| (0..n).filter(move |&v| v != u).map(move |v| (u, v)));
        let g = Digraph::from_arcs(n as usize, arcs);
        let m = DirectedMixing::measure(&g, &cfg(8, 5, 0.0));
        assert!(m.mixing_time(0.06).expect("mixes") <= 2);
    }

    #[test]
    fn directed_structure_slows_mixing_vs_symmetrized() {
        // A long directed cycle with a few chords is much slower than its
        // symmetrized version under the same surfer.
        let n = 60u32;
        let mut arcs: Vec<(u32, u32)> = (0..n).map(|i| (i, (i + 1) % n)).collect();
        arcs.push((0, 30));
        arcs.push((20, 50));
        let di = Digraph::from_arcs(n as usize, arcs);
        let sym = Digraph::from_undirected(&di.to_undirected());

        let c = cfg(10, 60, 0.1);
        let slow = DirectedMixing::measure(&di, &c).mean_curve();
        let fast = DirectedMixing::measure(&sym, &c).mean_curve();
        assert!(
            slow[30] > fast[30],
            "directed cycle {} should lag symmetrized {}",
            slow[30],
            fast[30]
        );
    }

    #[test]
    fn curves_shapes_and_determinism() {
        let g = Digraph::from_arcs(10, (0..10u32).map(|i| (i, (i + 1) % 10)));
        let c = cfg(4, 20, 0.2);
        let a = DirectedMixing::measure(&g, &c);
        let b = DirectedMixing::measure(&g, &c);
        assert_eq!(a, b);
        assert_eq!(a.curves().len(), 4);
        for (_, curve) in a.curves() {
            assert_eq!(curve.len(), 20);
            assert!(curve.iter().all(|&d| (0.0..=1.0 + 1e-12).contains(&d)));
        }
        let (mean, max) = (a.mean_curve(), a.max_curve());
        for t in 0..20 {
            assert!(mean[t] <= max[t] + 1e-12);
        }
    }

    #[test]
    fn oversampling_uses_every_node() {
        let g = Digraph::from_arcs(5, (0..5u32).map(|i| (i, (i + 1) % 5)));
        let m = DirectedMixing::measure(&g, &cfg(50, 5, 0.3));
        assert_eq!(m.curves().len(), 5);
    }
}
