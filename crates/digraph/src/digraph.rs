use serde::{Deserialize, Serialize};
use socnet_core::{Graph, GraphBuilder, NodeId};

/// A simple directed graph in CSR form, with both adjacency directions
/// materialized.
///
/// Duplicate arcs and self-loops are dropped at construction, mirroring
/// the simple-graph convention of [`Graph`]. Nodes with no out-arcs
/// ("dangling" nodes) are permitted — the walk operator handles them.
///
/// # Examples
///
/// ```
/// use socnet_core::NodeId;
/// use socnet_digraph::Digraph;
///
/// let g = Digraph::from_arcs(3, [(0, 1), (1, 2), (0, 2)]);
/// assert_eq!(g.arc_count(), 3);
/// assert_eq!(g.out_degree(NodeId(0)), 2);
/// assert_eq!(g.in_degree(NodeId(2)), 2);
/// assert!(g.has_arc(NodeId(0), NodeId(1)));
/// assert!(!g.has_arc(NodeId(1), NodeId(0)));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Digraph {
    out_offsets: Vec<usize>,
    out_targets: Vec<NodeId>,
    in_offsets: Vec<usize>,
    in_sources: Vec<NodeId>,
}

impl Digraph {
    /// Builds a digraph with `n` nodes from an arc iterator `(from, to)`.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is `>= n`.
    pub fn from_arcs<I>(n: usize, arcs: I) -> Self
    where
        I: IntoIterator<Item = (u32, u32)>,
    {
        let mut list: Vec<(u32, u32)> = arcs
            .into_iter()
            .inspect(|&(u, v)| {
                assert!(
                    (u as usize) < n && (v as usize) < n,
                    "arc ({u}, {v}) out of range for {n} nodes"
                );
            })
            .filter(|&(u, v)| u != v)
            .collect();
        list.sort_unstable();
        list.dedup();

        let build = |n: usize, pairs: &[(u32, u32)]| {
            let mut offsets = Vec::with_capacity(n + 1);
            let mut targets = Vec::with_capacity(pairs.len());
            offsets.push(0);
            let mut row = 0u32;
            for &(u, v) in pairs {
                while row < u {
                    offsets.push(targets.len());
                    row += 1;
                }
                targets.push(NodeId(v));
            }
            while (offsets.len() - 1) < n {
                offsets.push(targets.len());
            }
            (offsets, targets)
        };

        let (out_offsets, out_targets) = build(n, &list);
        let mut rev: Vec<(u32, u32)> = list.iter().map(|&(u, v)| (v, u)).collect();
        rev.sort_unstable();
        let (in_offsets, in_sources) = build(n, &rev);

        Digraph { out_offsets, out_targets, in_offsets, in_sources }
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.out_offsets.len() - 1
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.out_targets.len()
    }

    /// Out-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn out_degree(&self, v: NodeId) -> usize {
        self.out_offsets[v.index() + 1] - self.out_offsets[v.index()]
    }

    /// In-degree of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn in_degree(&self, v: NodeId) -> usize {
        self.in_offsets[v.index() + 1] - self.in_offsets[v.index()]
    }

    /// Sorted out-neighbors of `v`.
    pub fn successors(&self, v: NodeId) -> &[NodeId] {
        &self.out_targets[self.out_offsets[v.index()]..self.out_offsets[v.index() + 1]]
    }

    /// Sorted in-neighbors of `v`.
    pub fn predecessors(&self, v: NodeId) -> &[NodeId] {
        &self.in_sources[self.in_offsets[v.index()]..self.in_offsets[v.index() + 1]]
    }

    /// Whether the arc `u → v` exists (`O(log out_deg(u))`).
    pub fn has_arc(&self, u: NodeId, v: NodeId) -> bool {
        self.successors(u).binary_search(&v).is_ok()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.node_count()).map(NodeId::from_index)
    }

    /// Iterator over all arcs as `(from, to)`.
    pub fn arcs(&self) -> Arcs<'_> {
        Arcs { graph: self, row: 0, col: 0 }
    }

    /// Nodes with no out-arcs (dangling under the random surfer).
    pub fn dangling_nodes(&self) -> Vec<NodeId> {
        self.nodes().filter(|&v| self.out_degree(v) == 0).collect()
    }

    /// Symmetrizes into an undirected [`Graph`] — the paper's
    /// preprocessing of its directed crawls (each arc becomes an edge).
    pub fn to_undirected(&self) -> Graph {
        let mut b = GraphBuilder::with_capacity(self.node_count(), self.arc_count());
        for (u, v) in self.arcs() {
            b.add_edge(u, v);
        }
        b.build()
    }

    /// Lifts an undirected graph into the digraph with both arc
    /// directions — the reverse embedding, so undirected measurements
    /// can be cross-checked against the directed machinery.
    pub fn from_undirected(graph: &Graph) -> Self {
        let mut arcs = Vec::with_capacity(graph.degree_sum());
        for (u, v) in graph.edges() {
            arcs.push((u.0, v.0));
            arcs.push((v.0, u.0));
        }
        Digraph::from_arcs(graph.node_count(), arcs)
    }
}

/// Iterator over a digraph's arcs. Created by [`Digraph::arcs`].
#[derive(Debug, Clone)]
pub struct Arcs<'a> {
    graph: &'a Digraph,
    row: usize,
    col: usize,
}

impl Iterator for Arcs<'_> {
    type Item = (NodeId, NodeId);

    fn next(&mut self) -> Option<(NodeId, NodeId)> {
        while self.row < self.graph.node_count() {
            let u = NodeId::from_index(self.row);
            let succ = self.graph.successors(u);
            if self.col < succ.len() {
                let v = succ[self.col];
                self.col += 1;
                return Some((u, v));
            }
            self.row += 1;
            self.col = 0;
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Digraph {
        // 0 → 1 → 3, 0 → 2 → 3.
        Digraph::from_arcs(4, [(0, 1), (0, 2), (1, 3), (2, 3)])
    }

    #[test]
    fn degrees_and_adjacency() {
        let g = diamond();
        assert_eq!(g.node_count(), 4);
        assert_eq!(g.arc_count(), 4);
        assert_eq!(g.out_degree(NodeId(0)), 2);
        assert_eq!(g.in_degree(NodeId(0)), 0);
        assert_eq!(g.in_degree(NodeId(3)), 2);
        assert_eq!(g.successors(NodeId(0)), &[NodeId(1), NodeId(2)]);
        assert_eq!(g.predecessors(NodeId(3)), &[NodeId(1), NodeId(2)]);
    }

    #[test]
    fn arcs_are_directed() {
        let g = diamond();
        assert!(g.has_arc(NodeId(0), NodeId(1)));
        assert!(!g.has_arc(NodeId(1), NodeId(0)));
        let all: Vec<_> = g.arcs().map(|(u, v)| (u.0, v.0)).collect();
        assert_eq!(all, vec![(0, 1), (0, 2), (1, 3), (2, 3)]);
    }

    #[test]
    fn duplicates_and_loops_dropped() {
        let g = Digraph::from_arcs(3, [(0, 1), (0, 1), (1, 1), (1, 0)]);
        assert_eq!(g.arc_count(), 2); // 0→1 and 1→0 are distinct arcs
        assert!(g.has_arc(NodeId(1), NodeId(0)));
    }

    #[test]
    fn dangling_nodes_found() {
        let g = diamond();
        assert_eq!(g.dangling_nodes(), vec![NodeId(3)]);
    }

    #[test]
    fn undirected_round_trip() {
        let und = socnet_core::Graph::from_edges(4, [(0, 1), (1, 2), (2, 3), (3, 0)]);
        let di = Digraph::from_undirected(&und);
        assert_eq!(di.arc_count(), 8);
        assert_eq!(di.to_undirected(), und);
    }

    #[test]
    fn symmetrization_collapses_reciprocal_arcs() {
        let di = Digraph::from_arcs(3, [(0, 1), (1, 0), (1, 2)]);
        let und = di.to_undirected();
        assert_eq!(und.edge_count(), 2);
    }

    #[test]
    fn empty_and_isolated() {
        let g = Digraph::from_arcs(3, []);
        assert_eq!(g.node_count(), 3);
        assert_eq!(g.arc_count(), 0);
        assert_eq!(g.dangling_nodes().len(), 3);
        assert_eq!(g.arcs().count(), 0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_arc_panics() {
        let _ = Digraph::from_arcs(2, [(0, 2)]);
    }
}
