//! The directed random-surfer walk operator.

use socnet_core::NodeId;

use crate::Digraph;

/// The random-surfer transition operator on a digraph:
/// `P' = (1−α)·(P + dangling fix) + α·U`, where `P` follows out-arcs
/// uniformly, dangling nodes spread their mass uniformly, and `α` is the
/// teleport probability.
///
/// * `α = 0` on a strongly connected, aperiodic digraph gives the pure
///   directed walk the follow-up paper studies;
/// * `α > 0` makes any digraph ergodic; the stationary distribution is
///   then PageRank with damping `1 − α`.
///
/// # Examples
///
/// ```
/// use socnet_digraph::{Digraph, DirectedWalk};
///
/// let g = Digraph::from_arcs(2, [(0, 1), (1, 0)]);
/// let walk = DirectedWalk::new(&g, 0.0);
/// let mut x = vec![1.0, 0.0];
/// let mut y = vec![0.0; 2];
/// walk.step(&x, &mut y);
/// assert_eq!(y, vec![0.0, 1.0]);
/// # let _ = x;
/// ```
#[derive(Debug, Clone)]
pub struct DirectedWalk<'g> {
    graph: &'g Digraph,
    teleport: f64,
}

impl<'g> DirectedWalk<'g> {
    /// Creates the operator with teleport probability `teleport`.
    ///
    /// # Panics
    ///
    /// Panics if `teleport` is outside `[0, 1)` or the graph is empty.
    pub fn new(graph: &'g Digraph, teleport: f64) -> Self {
        assert!((0.0..1.0).contains(&teleport), "teleport {teleport} out of [0, 1)");
        assert!(graph.node_count() > 0, "walk needs a non-empty graph");
        DirectedWalk { graph, teleport }
    }

    /// The underlying digraph.
    pub fn graph(&self) -> &'g Digraph {
        self.graph
    }

    /// The teleport probability `α`.
    pub fn teleport(&self) -> f64 {
        self.teleport
    }

    /// One transition `dst ← src · P'`.
    ///
    /// # Panics
    ///
    /// Panics if slice lengths do not match the graph.
    pub fn step(&self, src: &[f64], dst: &mut [f64]) {
        let n = self.graph.node_count();
        assert_eq!(src.len(), n, "src length mismatch");
        assert_eq!(dst.len(), n, "dst length mismatch");
        let uniform = 1.0 / n as f64;
        let follow = 1.0 - self.teleport;

        let mut dangling_mass = 0.0f64;
        dst.fill(0.0);
        for u in self.graph.nodes() {
            let p = src[u.index()];
            if p == 0.0 {
                continue;
            }
            let succ = self.graph.successors(u);
            if succ.is_empty() {
                dangling_mass += p;
                continue;
            }
            let share = follow * p / succ.len() as f64;
            for &v in succ {
                dst[v.index()] += share;
            }
        }
        // Dangling mass and teleport mass spread uniformly.
        let total_in: f64 = src.iter().sum();
        let spread = (follow * dangling_mass + self.teleport * total_in) * uniform;
        if spread > 0.0 {
            for d in dst.iter_mut() {
                *d += spread;
            }
        }
    }

    /// Evolves `x` in place for `steps` transitions.
    pub fn evolve(&self, x: &mut Vec<f64>, scratch: &mut Vec<f64>, steps: usize) {
        for _ in 0..steps {
            self.step(x, scratch);
            std::mem::swap(x, scratch);
        }
    }

    /// The stationary distribution by power iteration from uniform,
    /// stopping when the per-step total variation drops below `tol` (or
    /// after `max_iters` steps).
    ///
    /// With `teleport > 0` this is PageRank; with `teleport = 0` it
    /// converges only on ergodic (strongly connected, aperiodic) chains.
    pub fn stationary(&self, tol: f64, max_iters: usize) -> Vec<f64> {
        let n = self.graph.node_count();
        let mut x = vec![1.0 / n as f64; n];
        let mut y = vec![0.0; n];
        for _ in 0..max_iters {
            self.step(&x, &mut y);
            let delta = socnet_mixing::total_variation(&x, &y);
            std::mem::swap(&mut x, &mut y);
            if delta < tol {
                break;
            }
        }
        x
    }

    /// Convenience: the node with the highest stationary mass — the top
    /// PageRank node when `teleport > 0`.
    pub fn top_node(&self, tol: f64, max_iters: usize) -> NodeId {
        let pi = self.stationary(tol, max_iters);
        let mut best = 0usize;
        for (i, &p) in pi.iter().enumerate() {
            if p > pi[best] {
                best = i;
            }
        }
        NodeId::from_index(best)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mass_is_conserved() {
        let g = Digraph::from_arcs(4, [(0, 1), (1, 2), (2, 0), (2, 3)]);
        for alpha in [0.0, 0.15, 0.5] {
            let walk = DirectedWalk::new(&g, alpha);
            let mut x = vec![0.25; 4];
            let mut y = vec![0.0; 4];
            walk.step(&x, &mut y);
            assert!((y.iter().sum::<f64>() - 1.0).abs() < 1e-12, "alpha = {alpha}");
            x.copy_from_slice(&y);
        }
    }

    #[test]
    fn dangling_mass_spreads_uniformly() {
        // 0 → 1, node 1 dangling.
        let g = Digraph::from_arcs(2, [(0, 1)]);
        let walk = DirectedWalk::new(&g, 0.0);
        let x = vec![0.0, 1.0];
        let mut y = vec![0.0; 2];
        walk.step(&x, &mut y);
        assert_eq!(y, vec![0.5, 0.5]);
    }

    #[test]
    fn directed_cycle_stationary_is_uniform() {
        let g = Digraph::from_arcs(6, (0..6).map(|i| (i, (i + 1) % 6)));
        // Pure cycle is periodic; a little teleport makes it ergodic and
        // keeps the stationary distribution uniform by symmetry.
        let walk = DirectedWalk::new(&g, 0.1);
        let pi = walk.stationary(1e-13, 100_000);
        for &p in &pi {
            assert!((p - 1.0 / 6.0).abs() < 1e-9);
        }
    }

    #[test]
    fn pagerank_favors_the_sink_hub() {
        // Everyone links to 0; 0 links back to 1 only.
        let g = Digraph::from_arcs(5, [(1, 0), (2, 0), (3, 0), (4, 0), (0, 1)]);
        let walk = DirectedWalk::new(&g, 0.15);
        assert_eq!(walk.top_node(1e-12, 10_000), NodeId(0));
        let pi = walk.stationary(1e-12, 10_000);
        assert!(pi[0] > 0.3, "hub mass {}", pi[0]);
        assert!(pi[1] > pi[2], "0's sole target outranks the others");
    }

    #[test]
    fn symmetric_digraph_matches_undirected_stationary() {
        let und = socnet_core::Graph::from_edges(5, [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (1, 3)]);
        let di = Digraph::from_undirected(&und);
        let walk = DirectedWalk::new(&di, 0.0);
        let pi_directed = walk.stationary(1e-13, 200_000);
        let pi_undirected = socnet_mixing::stationary_distribution(&und);
        // The symmetric directed chain has the same stationary law as the
        // undirected walk: deg(v)/2m.
        for (a, b) in pi_directed.iter().zip(pi_undirected.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    #[should_panic(expected = "out of [0, 1)")]
    fn full_teleport_rejected() {
        let g = Digraph::from_arcs(2, [(0, 1)]);
        let _ = DirectedWalk::new(&g, 1.0);
    }
}
