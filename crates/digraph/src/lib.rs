//! Directed social graphs and directed mixing measurement.
//!
//! Several of the paper's datasets (Wiki-vote, Slashdot, Epinion,
//! LiveJournal) are *directed* crawls that the paper symmetrizes before
//! measuring; the authors' follow-up work ("On the Mixing Time of
//! Directed Social Graphs") studies the directed chains themselves. This
//! crate supplies that machinery:
//!
//! * [`Digraph`] — CSR directed graph with both out- and in-adjacency,
//!   dangling-node handling, and conversion to/from the undirected
//!   [`Graph`](socnet_core::Graph) (the paper's preprocessing);
//! * [`strongly_connected_components`] / [`largest_scc`] — Tarjan's
//!   algorithm, because a directed walk only has a well-defined
//!   stationary distribution on a strongly connected (and aperiodic)
//!   chain;
//! * [`DirectedWalk`] — the random-surfer operator
//!   `(1−α)·P + α·teleport` with dangling-mass redistribution, whose
//!   stationary distribution is PageRank; `α = 0` on a strongly
//!   connected aperiodic digraph gives the pure directed walk;
//! * [`DirectedMixing`] — the sampling method lifted to directed
//!   chains: per-source TVD curves against the chain's stationary
//!   distribution (computed by power iteration, since directed chains
//!   have no closed-form `π`).
//!
//! # Examples
//!
//! ```
//! use socnet_digraph::{Digraph, DirectedWalk};
//!
//! // A directed 3-cycle: strongly connected, stationary = uniform.
//! let g = Digraph::from_arcs(3, [(0, 1), (1, 2), (2, 0)]);
//! let walk = DirectedWalk::new(&g, 0.0);
//! let pi = walk.stationary(1e-12, 10_000);
//! assert!((pi[0] - 1.0 / 3.0).abs() < 1e-9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod digraph;
mod mixing;
mod scc;
mod walk;

pub use digraph::{Arcs, Digraph};
pub use mixing::{DirectedMixing, DirectedMixingConfig};
pub use scc::{largest_scc, strongly_connected_components, SccLabels};
pub use walk::DirectedWalk;
