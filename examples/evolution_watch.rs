//! Watch the paper's three properties drift as a social graph evolves —
//! the Sec. VI open problem, operationalized. Two evolutions are traced:
//! weak-trust growth (preferential attachment) and strict-trust growth
//! (communities arriving over time).
//!
//! Run with: `cargo run --release --example evolution_watch`

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet::dynamic::{ba_growth, community_growth, PropertyTrajectory, TrajectoryConfig};

fn main() {
    let cfg = TrajectoryConfig::default();

    println!("weak-trust evolution (preferential attachment):");
    let mut rng = StdRng::seed_from_u64(11);
    let ba = ba_growth(3_000, 6, &mut rng);
    print_trajectory(&PropertyTrajectory::measure(&ba, 6, &cfg));

    println!("\nstrict-trust evolution (communities arriving):");
    let mut rng = StdRng::seed_from_u64(11);
    let cave = community_growth(220, 4, 18, 0.05, &mut rng);
    let traj = PropertyTrajectory::measure(&cave, 6, &cfg);
    print_trajectory(&traj);

    println!();
    println!(
        "slem drift over community growth: {:+.4} (positive = mixing slowed)",
        traj.slem_drift()
    );
    println!("the weak-trust network keeps its mixing quality as it grows; the");
    println!("strict-trust network stays slow throughout — defenses provisioned");
    println!("from early measurements stay valid only if the social model is stable.");
}

fn print_trajectory(traj: &PropertyTrajectory) {
    println!(
        "  {:>9} {:>7} {:>8} {:>8} {:>11} {:>9} {:>7} {:>9}",
        "arrivals", "nodes", "edges", "slem", "degeneracy", "nu'(max)", "cores", "mid-alpha"
    );
    for p in traj.points() {
        println!(
            "  {:>9} {:>7} {:>8} {:>8.4} {:>11} {:>9.4} {:>7} {:>9.3}",
            p.arrivals,
            p.nodes,
            p.edges,
            p.slem,
            p.degeneracy,
            p.nu_prime_deepest,
            p.cores_deepest,
            p.mid_alpha
        );
    }
}
