//! Directed vs. symmetrized mixing — the question behind the authors'
//! follow-up paper: the crawled graphs are directed, the defenses assume
//! undirected; how much does symmetrizing change the mixing picture?
//!
//! We orient each registry graph's edges (randomly dropping one
//! direction for a fraction of edges), extract the largest strongly
//! connected component, and measure the directed chain against its
//! symmetrized version under the same random surfer.
//!
//! Run with: `cargo run --release --example directed_mixing`

use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};
use socnet::digraph::{largest_scc, Digraph, DirectedMixing, DirectedMixingConfig};
use socnet::gen::Dataset;

fn main() {
    println!(
        "{:<14} {:>8} {:>8} {:>12} {:>12} {:>11}",
        "dataset", "scc-n", "arcs", "dirTVD@25", "symTVD@25", "dir-T(0.1)"
    );
    for d in [Dataset::WikiVote, Dataset::Epinion, Dataset::Physics1, Dataset::Physics3] {
        let undirected = d.generate_scaled(0.15, 21);

        // Orient: keep both directions for 30% of edges, one random
        // direction for the rest (crawled "who-trusts-whom" asymmetry).
        let mut rng = StdRng::seed_from_u64(21);
        let mut arcs = Vec::with_capacity(undirected.degree_sum());
        for (u, v) in undirected.edges() {
            if rng.random_range(0.0..1.0) < 0.3 {
                arcs.push((u.0, v.0));
                arcs.push((v.0, u.0));
            } else if rng.random_range(0.0..1.0) < 0.5 {
                arcs.push((u.0, v.0));
            } else {
                arcs.push((v.0, u.0));
            }
        }
        let directed = Digraph::from_arcs(undirected.node_count(), arcs);
        let (core, _) = largest_scc(&directed);
        let symmetrized = Digraph::from_undirected(&core.to_undirected());

        let cfg = DirectedMixingConfig { sources: 30, max_walk: 120, teleport: 0.0, ..Default::default() };
        let dir = DirectedMixing::measure(&core, &cfg);
        let sym = DirectedMixing::measure(&symmetrized, &cfg);

        println!(
            "{:<14} {:>8} {:>8} {:>12.5} {:>12.5} {:>11}",
            d.name(),
            core.node_count(),
            core.arc_count(),
            dir.mean_curve()[24],
            sym.mean_curve()[24],
            dir.mixing_time(0.1)
                .map(|t| t.to_string())
                .unwrap_or_else(|| format!(">{}", cfg.max_walk)),
        );
    }
    println!();
    println!("orienting edges shrinks the usable (strongly connected) core and");
    println!("generally slows mixing relative to the symmetrized graph — the");
    println!("follow-up paper's motivation for studying directed chains directly.");
}
