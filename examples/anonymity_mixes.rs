//! Social graphs as mix networks: how much sender anonymity does a
//! t-step relay walk buy on each kind of social graph?
//!
//! Run with: `cargo run --release --example anonymity_mixes`

use socnet::core::sample_nodes;
use socnet::gen::Dataset;
use socnet::mixing::AnonymityCurve;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!(
        "{:<14} {:>7} {:>9} {:>12} {:>12} {:>12} {:>14}",
        "dataset", "nodes", "ceiling", "bits@5", "bits@20", "bits@50", "steps-to-90%"
    );
    for d in [
        Dataset::WikiVote,
        Dataset::Epinion,
        Dataset::Enron,
        Dataset::FacebookA,
        Dataset::Physics1,
        Dataset::Physics3,
        Dataset::Dblp,
    ] {
        let g = d.generate_scaled(0.15, 17);
        let mut rng = StdRng::seed_from_u64(17);
        // Average the curve over a few senders.
        let sources = sample_nodes(&g, 5, &mut rng);
        let curves: Vec<AnonymityCurve> = sources
            .iter()
            .map(|&s| AnonymityCurve::measure(&g, s, 60).expect("sampled source in range"))
            .collect();
        let mean_at = |t: usize| {
            curves.iter().map(|c| c.entropy[t - 1]).sum::<f64>() / curves.len() as f64
        };
        let steps: Vec<String> = curves
            .iter()
            .map(|c| {
                c.steps_to_fraction(0.9)
                    .map(|t| t.to_string())
                    .unwrap_or_else(|| ">60".into())
            })
            .collect();
        println!(
            "{:<14} {:>7} {:>9.2} {:>12.2} {:>12.2} {:>12.2} {:>14}",
            d.name(),
            g.node_count(),
            curves[0].ceiling,
            mean_at(5),
            mean_at(20),
            mean_at(50),
            steps.join(","),
        );
    }
    println!();
    println!("weak-trust graphs reach ~90% of their entropy ceiling within a handful");
    println!("of hops (good mixes); strict-trust collaboration graphs need dozens —");
    println!("the same fast/slow split as every other measurement in this repo.");
}
