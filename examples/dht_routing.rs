//! Sybil-resistant DHT routing over a social graph: uniform finger
//! sampling (poisoned by Sybil identities) versus social-walk sampling
//! (Whānau-style), across growing attack intensities.
//!
//! Run with: `cargo run --release --example dht_routing`

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet::dht::{lookup_success_rate, DhtConfig, FingerStrategy, SocialDht};
use socnet::gen::Dataset;
use socnet::sybil::{AttackedGraph, SybilAttack, SybilTopology};

fn main() {
    let honest = Dataset::Epinion.generate_scaled(0.1, 13);
    println!(
        "honest region: {} ({} nodes, {} edges)",
        Dataset::Epinion.name(),
        honest.node_count(),
        honest.edge_count()
    );
    println!(
        "{:>8} {:>8} {:>14} {:>14} {:>14} {:>14}",
        "sybils", "edges", "unif-poison", "unif-success", "walk-poison", "walk-success"
    );

    for (sybils, attack_edges) in [(200, 5), (760, 10), (1520, 20), (3040, 40)] {
        let attacked = AttackedGraph::mount(
            &honest,
            &SybilAttack {
                sybil_count: sybils,
                attack_edges,
                topology: SybilTopology::ScaleFree { m_attach: 3 },
                seed: 13,
            },
        );
        let config = |strategy| DhtConfig { fingers: 16, strategy, replication: 8, seed: 13 };
        let uniform = SocialDht::build(&attacked, &config(FingerStrategy::Uniform));
        let walk =
            SocialDht::build(&attacked, &config(FingerStrategy::SocialWalk { length: 8 }));

        let mut rng = StdRng::seed_from_u64(99);
        let u_rate = lookup_success_rate(&attacked, &uniform, 300, 40, &mut rng);
        let w_rate = lookup_success_rate(&attacked, &walk, 300, 40, &mut rng);
        println!(
            "{:>8} {:>8} {:>13.1}% {:>13.1}% {:>13.1}% {:>13.1}%",
            sybils,
            attack_edges,
            100.0 * uniform.poisoned_finger_rate(),
            100.0 * u_rate,
            100.0 * walk.poisoned_finger_rate(),
            100.0 * w_rate,
        );
    }
    println!();
    println!("uniform sampling degrades with the Sybil population (identities are");
    println!("free); social-walk sampling degrades only with attack edges (which");
    println!("cost real social engineering) — the trust assumption the paper's");
    println!("measurements underwrite.");
}
