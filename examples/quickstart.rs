//! Quickstart: generate a social graph and measure the three properties
//! the paper studies — mixing time, coreness, and expansion.
//!
//! Run with: `cargo run --release --example quickstart`

use socnet::expansion::{ExpansionSweep, SourceSelection};
use socnet::gen::Dataset;
use socnet::kcore::{coreness_ecdf, CoreDecomposition};
use socnet::mixing::{sinclair_bounds, slem, MixingConfig, MixingMeasurement, SpectralConfig};

fn main() {
    // A small synthetic counterpart of the paper's Wiki-vote crawl.
    let graph = Dataset::WikiVote.generate_scaled(0.25, 42);
    println!(
        "graph: {} ({} nodes, {} edges)",
        Dataset::WikiVote.name(),
        graph.node_count(),
        graph.edge_count()
    );

    // 1. Mixing time, the spectral way: second largest eigenvalue modulus
    //    and the Sinclair bounds it implies.
    let spectrum = slem(&graph, &SpectralConfig::default());
    let eps = 1.0 / graph.node_count() as f64;
    let bounds = sinclair_bounds(spectrum.slem(), graph.node_count(), eps);
    println!("mu = {:.4} (lambda2 = {:.4})", spectrum.slem(), spectrum.lambda2);
    println!(
        "Sinclair bounds at eps = 1/n: {:.1} <= T(eps) <= {:.1} steps",
        bounds.lower, bounds.upper
    );

    // 2. Mixing time, the sampling way: evolve walk distributions from
    //    sampled sources and watch the total variation distance fall.
    let measurement = MixingMeasurement::measure(
        &graph,
        &MixingConfig { sources: 50, max_walk: 60, ..Default::default() },
    );
    let mean = measurement.mean_curve();
    println!("mean TVD after 5/20/60 steps: {:.4} / {:.4} / {:.4}", mean[4], mean[19], mean[59]);
    if let Some(t) = measurement.mixing_time(0.05) {
        println!("sampled T(0.05) = {t} steps");
    }

    // 3. Coreness: the degeneracy and the coreness distribution.
    let cores = CoreDecomposition::compute(&graph);
    let ecdf = coreness_ecdf(&cores);
    println!(
        "degeneracy = {}, median coreness = {}, nodes in the top core = {}",
        cores.degeneracy(),
        ecdf.quantile(0.5),
        cores.core_members(cores.degeneracy()).len()
    );

    // 4. Expansion: envelope statistics over sampled cores.
    let sweep = ExpansionSweep::measure(&graph, SourceSelection::Sample(100), 42);
    if let Some(alpha) = sweep.alpha_estimate(graph.node_count()) {
        println!("worst envelope expansion factor alpha ~= {alpha:.3}");
    }
    let curve = sweep.expansion_factor_curve();
    let (size, factor) = curve[curve.len() / 2];
    println!("expected expansion factor at |S| = {size}: {factor:.3}");
}
