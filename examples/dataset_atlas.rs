//! Print the synthetic dataset registry next to the paper's originals —
//! a Table-I-style atlas with descriptive statistics.
//!
//! Run with: `cargo run --release --example dataset_atlas`

use socnet::core::GraphSummary;
use socnet::gen::Dataset;

fn main() {
    println!(
        "{:<14} {:<20} {:>7} {:>8} {:>7} {:>7} {:>7}   {:>9} {:>10}",
        "dataset", "model", "nodes", "edges", "avgdeg", "clust", "assort", "paper-n", "paper-m"
    );
    for d in Dataset::ALL {
        // Keep the atlas fast: a smaller scale preserves density knobs.
        let g = d.generate_scaled(0.15, 1);
        let s = GraphSummary::measure(&g);
        let spec = d.spec();
        println!(
            "{:<14} {:<20} {:>7} {:>8} {:>7.1} {:>7.3} {:>7.3}   {:>9} {:>10}",
            d.name(),
            spec.model.label(),
            s.nodes,
            s.edges,
            s.average_degree,
            s.clustering,
            s.assortativity,
            spec.paper_nodes,
            spec.paper_edges,
        );
    }
    println!();
    println!("collab/strict-trust entries show the high clustering and (mostly)");
    println!("assortative mixing of co-authorship graphs; online/weak-trust entries");
    println!("show the low clustering and disassortative hubs of crawled OSNs.");
}
