//! The paper's central correlation, end to end: fast-mixing graphs have
//! one large core; slow-mixing graphs have small, fragmented cores.
//!
//! Run with: `cargo run --release --example mixing_vs_structure`

use socnet::gen::Dataset;
use socnet::kcore::{core_profiles, CoreDecomposition};
use socnet::mixing::{slem, MixingConfig, MixingMeasurement, SpectralConfig};

fn main() {
    println!(
        "{:<14} {:>7} {:>8} {:>8} {:>11} {:>13} {:>10}",
        "dataset", "nodes", "mu", "TVD@30", "degeneracy", "nu'(k_max)", "cores"
    );
    for d in [
        Dataset::WikiVote,
        Dataset::Epinion,
        Dataset::Youtube,
        Dataset::FacebookA,
        Dataset::Physics1,
        Dataset::Physics3,
        Dataset::Dblp,
    ] {
        let g = d.generate_scaled(0.25, 11);

        // Mixing: spectral and sampled.
        let mu = slem(&g, &SpectralConfig::default()).slem();
        let mixing = MixingMeasurement::measure(
            &g,
            &MixingConfig { sources: 40, max_walk: 30, ..Default::default() },
        );
        let tvd30 = mixing.mean_curve()[29];

        // Core structure at the deepest core.
        let decomp = CoreDecomposition::compute(&g);
        let profiles = core_profiles(&g, &decomp);
        let deepest = profiles.last().expect("graph has edges");

        println!(
            "{:<14} {:>7} {:>8.4} {:>8.4} {:>11} {:>13.4} {:>10}",
            d.name(),
            g.node_count(),
            mu,
            tvd30,
            decomp.degeneracy(),
            deepest.nu_prime(g.node_count()),
            deepest.components,
        );
    }
    println!();
    println!("reading: low mu / low TVD (fast mixing) lines up with a single large");
    println!("core (nu' near 1, one component); high mu / high TVD (slow mixing)");
    println!("lines up with small nu' and multiple cores — the paper's Sec. IV-B claim.");
}
