//! Audit the expansion of a social graph the way GateKeeper's analysis
//! needs it: per-source envelope series, aggregated min/mean/max neighbor
//! counts, and sampled connected-set expansion.
//!
//! Run with: `cargo run --release --example expansion_audit`

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet::core::{pseudo_diameter, NodeId};
use socnet::expansion::{
    sampled_set_expansion, EnvelopeExpansion, ExpansionSweep, SourceSelection,
};
use socnet::gen::Dataset;

fn main() {
    let g = Dataset::FacebookA.generate_scaled(0.25, 3);
    println!(
        "auditing {}: {} nodes, {} edges, pseudo-diameter {}",
        Dataset::FacebookA.name(),
        g.node_count(),
        g.edge_count(),
        pseudo_diameter(&g, 4)
    );

    // One source in detail: the envelope series from node 0.
    let series = EnvelopeExpansion::measure(&g, NodeId(0));
    println!("\nenvelope from v0 (levels {:?}):", series.level_sizes());
    for (i, ((env, exp), alpha)) in series.pairs().iter().zip(series.alphas()).enumerate() {
        println!("  depth {i}: |Env| = {env:>6}  |Exp| = {exp:>6}  alpha = {alpha:.3}");
    }

    // The sweep over sampled cores (the Figure 3 aggregation).
    let sweep = ExpansionSweep::measure(&g, SourceSelection::Sample(200), 3);
    println!("\naggregated over {} cores:", sweep.source_count());
    let stats = sweep.stats();
    for s in stats.iter().step_by((stats.len() / 8).max(1)) {
        println!(
            "  |S| = {:>6}: neighbors min {:>6} mean {:>9.1} max {:>6}  ({} samples)",
            s.set_size, s.min, s.mean, s.max, s.samples
        );
    }
    if let Some(alpha) = sweep.alpha_estimate(g.node_count()) {
        println!("worst envelope expansion factor: {alpha:.4}");
    }

    // Random connected sets (non-ball shapes) at a few sizes.
    println!("\nsampled connected-set expansion:");
    let mut rng = StdRng::seed_from_u64(9);
    for size in [8usize, 64, 256] {
        if let Some(est) = sampled_set_expansion(&g, size, 50, &mut rng) {
            println!(
                "  |S| = {:>4}: |N(S)|/|S| in [{:.2}, {:.2}], mean {:.2}",
                size, est.min_ratio, est.max_ratio, est.mean_ratio
            );
        }
    }
}
