//! Mount a Sybil attack on a social graph and run all five defenses.
//!
//! Run with: `cargo run --release --example sybil_defense`

use socnet::core::NodeId;
use socnet::gen::Dataset;
use socnet::sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SumUp, SumUpConfig, SybilAttack,
    SybilGuard, SybilGuardConfig, SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

fn main() {
    let honest = Dataset::Epinion.generate_scaled(0.25, 7);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 120,
            attack_edges: 15,
            topology: SybilTopology::ScaleFree { m_attach: 3 },
            seed: 7,
        },
    );
    let g = attacked.graph();
    println!(
        "attacked graph: {} honest + {} sybils, {} attack edges",
        attacked.honest_count(),
        attacked.sybil_count(),
        attacked.attack_edges().len()
    );

    let verifier = NodeId(0);
    let everyone: Vec<NodeId> = g.nodes().collect();
    let mut report = |name: &str, admitted: &[bool]| {
        let s = eval::admission_stats(&attacked, admitted);
        println!(
            "{name:<11} honest {:5.1}%   sybils/attack-edge {:.2}",
            100.0 * s.honest_accept_rate,
            s.sybils_per_attack_edge
        );
    };

    // GateKeeper: ticket distribution from 99 sampled distributors.
    let gk = GateKeeper::new(GateKeeperConfig { distributors: 99, f_admit: 0.2, ..Default::default() });
    report("GateKeeper", gk.run(&attacked).admitted());

    // SybilGuard: long random routes, majority intersection.
    let guard = SybilGuard::new(g, SybilGuardConfig { route_length: 60, seed: 7 });
    report("SybilGuard", &guard.admitted_set(verifier, &everyone));

    // SybilLimit: many short routes, tail intersection + balance.
    let sl = SybilLimit::new(
        g,
        SybilLimitConfig {
            instances: SybilLimitConfig::recommended_instances(g.edge_count()),
            route_length: 10,
            balance_slack: 4.0,
            seed: 7,
        },
    );
    report("SybilLimit", &sl.verify_all(verifier, &everyone));

    // SybilInfer-style walk-trace scoring.
    let si = SybilInfer::infer(
        g,
        verifier,
        &SybilInferConfig { walks: 50_000, walk_length: 10, seed: 7 },
    );
    report("SybilInfer", &si.classify(g, 0.3));
    println!(
        "SybilInfer ranking AUC = {:.3}",
        eval::ranking_auc(&attacked, &si.ranking())
    );

    // SumUp: capacitated vote collection.
    let sumup = SumUp::new(SumUpConfig { expected_votes: attacked.honest_count(), seed: 7 });
    report("SumUp", &sumup.collect(g, verifier, &everyone).accepted);
}
