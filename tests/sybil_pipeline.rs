//! Integration: attack → defend → evaluate, across all five defenses.

use socnet::core::NodeId;
use socnet::gen::Dataset;
use socnet::sybil::{
    eval, AttackedGraph, GateKeeper, GateKeeperConfig, SumUp, SumUpConfig, SybilAttack,
    SybilGuard, SybilGuardConfig, SybilInfer, SybilInferConfig, SybilLimit, SybilLimitConfig,
    SybilTopology,
};

fn attacked() -> AttackedGraph {
    let honest = Dataset::WikiVote.generate_scaled(0.1, 5);
    AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 60,
            attack_edges: 8,
            topology: SybilTopology::ErdosRenyi { p: 0.15 },
            seed: 5,
        },
    )
}

#[test]
fn gatekeeper_separates_honest_from_sybil() {
    let a = attacked();
    let out = GateKeeper::new(GateKeeperConfig {
        distributors: 45,
        f_admit: 0.2,
        ..Default::default()
    })
    .run(&a);
    let s = eval::admission_stats(&a, out.admitted());
    assert!(s.honest_accept_rate > 0.9, "honest rate {}", s.honest_accept_rate);
    assert!(
        s.sybils_per_attack_edge < 3.0,
        "sybils per attack edge {}",
        s.sybils_per_attack_edge
    );
}

#[test]
fn gatekeeper_threshold_trades_acceptance() {
    let a = attacked();
    let mut last_honest = f64::INFINITY;
    let mut last_sybil = f64::INFINITY;
    for f in [0.1, 0.3, 0.6] {
        let out = GateKeeper::new(GateKeeperConfig {
            distributors: 45,
            f_admit: f,
            ..Default::default()
        })
        .run(&a);
        let s = eval::admission_stats(&a, out.admitted());
        assert!(s.honest_accept_rate <= last_honest + 1e-9, "monotone in f");
        assert!(s.sybils_per_attack_edge <= last_sybil + 1e-9, "monotone in f");
        last_honest = s.honest_accept_rate;
        last_sybil = s.sybils_per_attack_edge;
    }
}

#[test]
fn all_route_based_defenses_accept_most_honest_nodes() {
    let a = attacked();
    let g = a.graph();
    let verifier = NodeId(1);
    let honest: Vec<NodeId> = a.honest_nodes().collect();

    let guard = SybilGuard::new(g, SybilGuardConfig { route_length: 40, seed: 5 });
    let guard_ok =
        guard.admitted_set(verifier, &honest).iter().filter(|&&b| b).count();
    assert!(
        guard_ok as f64 > 0.9 * honest.len() as f64,
        "SybilGuard accepted {guard_ok}/{}",
        honest.len()
    );

    let sl = SybilLimit::new(
        g,
        SybilLimitConfig {
            instances: SybilLimitConfig::recommended_instances(g.edge_count()),
            route_length: 8,
            balance_slack: 4.0,
            seed: 5,
        },
    );
    let sl_ok = sl.verify_all(verifier, &honest).iter().filter(|&&b| b).count();
    assert!(
        sl_ok as f64 > 0.9 * honest.len() as f64,
        "SybilLimit accepted {sl_ok}/{}",
        honest.len()
    );
}

#[test]
fn inference_ranking_is_informative() {
    let a = attacked();
    let si = SybilInfer::infer(
        a.graph(),
        NodeId(0),
        &SybilInferConfig { walks: 40_000, walk_length: 8, seed: 5 },
    );
    let auc = eval::ranking_auc(&a, &si.ranking());
    assert!(auc > 0.85, "ranking AUC {auc}");
    let precision = eval::top_partition_precision(&a, &si.ranking());
    assert!(precision > 0.9, "top-partition precision {precision}");
}

#[test]
fn sumup_collects_honest_votes_and_throttles_sybil_votes() {
    let a = attacked();
    let g = a.graph();
    let sumup = SumUp::new(SumUpConfig { expected_votes: a.honest_count(), seed: 5 });

    let honest_voters: Vec<NodeId> = a.honest_nodes().collect();
    let honest_outcome = sumup.collect(g, NodeId(0), &honest_voters);
    assert!(
        honest_outcome.accepted_count as f64 > 0.8 * honest_voters.len() as f64,
        "honest votes collected: {}",
        honest_outcome.accepted_count
    );

    let sybil_voters: Vec<NodeId> = a.sybil_nodes().collect();
    let sybil_outcome = sumup.collect(g, NodeId(0), &sybil_voters);
    assert!(
        sybil_outcome.accepted_count <= 4 * a.attack_edges().len(),
        "sybil votes {} should be near the attack-edge budget",
        sybil_outcome.accepted_count
    );
}

#[test]
fn defenses_are_deterministic_end_to_end() {
    let a1 = attacked();
    let a2 = attacked();
    assert_eq!(a1, a2);
    let gk = GateKeeper::new(GateKeeperConfig { distributors: 12, ..Default::default() });
    assert_eq!(gk.run(&a1), gk.run(&a2));
}
