//! Integration: the full measurement pipeline across crates — generate a
//! registry dataset, measure mixing (both methods), decompose cores, and
//! check the paper's qualitative claims hold end to end.

use socnet::gen::Dataset;
use socnet::kcore::{core_profiles, coreness_ecdf, CoreDecomposition};
use socnet::mixing::{
    sinclair_bounds, slem, MixingConfig, MixingMeasurement, SpectralConfig,
};

const SCALE: f64 = 0.12;
const SEED: u64 = 2024;

fn fast() -> socnet::core::Graph {
    Dataset::WikiVote.generate_scaled(SCALE, SEED)
}

fn slow() -> socnet::core::Graph {
    Dataset::Physics1.generate_scaled(SCALE, SEED)
}

#[test]
fn weak_trust_graphs_mix_faster_than_strict_trust_graphs() {
    let cfg = MixingConfig { sources: 30, max_walk: 60, ..Default::default() };
    let fast_curve = MixingMeasurement::measure(&fast(), &cfg).mean_curve();
    let slow_curve = MixingMeasurement::measure(&slow(), &cfg).mean_curve();
    // At every probed walk length the weak-trust graph is closer to
    // stationarity (Figure 1's separation).
    for t in [9usize, 19, 39, 59] {
        assert!(
            fast_curve[t] <= slow_curve[t] + 1e-9,
            "t = {}: fast {:.4} vs slow {:.4}",
            t + 1,
            fast_curve[t],
            slow_curve[t]
        );
    }
    assert!(slow_curve[29] > 0.05, "strict-trust graph still far at t = 30");
    assert!(fast_curve[29] < 0.01, "weak-trust graph mixed by t = 30");
}

#[test]
fn spectral_and_sampled_measurements_agree_on_ordering() {
    let mu_fast = slem(&fast(), &SpectralConfig::default()).slem();
    let mu_slow = slem(&slow(), &SpectralConfig::default()).slem();
    assert!(
        mu_fast + 0.2 < mu_slow,
        "SLEM must separate the models: fast {mu_fast:.4}, slow {mu_slow:.4}"
    );
}

#[test]
fn sinclair_bounds_bracket_the_sampled_mixing_time() {
    let g = fast();
    let n = g.node_count();
    let eps = 0.05;
    let spectrum = slem(&g, &SpectralConfig::default());
    let bounds = sinclair_bounds(spectrum.slem(), n, eps);

    let cfg = MixingConfig { sources: 40, max_walk: 120, ..Default::default() };
    let measured = MixingMeasurement::measure(&g, &cfg)
        .mixing_time(eps)
        .expect("fast graph mixes within the horizon") as f64;
    // The sampled estimate uses a source sample, so allow slack on the
    // lower side; the upper bound must hold outright.
    assert!(
        measured <= bounds.upper.ceil(),
        "measured {measured} exceeds Sinclair upper bound {:.1}",
        bounds.upper
    );
    assert!(
        measured + 1.0 >= bounds.lower.floor(),
        "measured {measured} below Sinclair lower bound {:.1}",
        bounds.lower
    );
}

#[test]
fn fast_mixers_have_one_large_core_slow_mixers_fragment() {
    let fast_g = fast();
    let slow_g = slow();
    let fast_cores = CoreDecomposition::compute(&fast_g);
    let slow_cores = CoreDecomposition::compute(&slow_g);
    let fast_last = *core_profiles(&fast_g, &fast_cores).last().expect("has cores");
    let slow_last = *core_profiles(&slow_g, &slow_cores).last().expect("has cores");

    // The paper's Sec. IV-B/V claim: the fast mixer keeps a large single
    // core at its deepest k; the slow mixer's deepest core is small.
    assert_eq!(fast_last.components, 1, "fast mixer should keep one core");
    assert!(
        fast_last.nu_prime(fast_g.node_count()) > 0.5,
        "fast mixer's deepest core should be large, got {:.3}",
        fast_last.nu_prime(fast_g.node_count())
    );
    assert!(
        slow_last.nu_prime(slow_g.node_count()) < 0.3,
        "slow mixer's deepest core should be small, got {:.3}",
        slow_last.nu_prime(slow_g.node_count())
    );
}

#[test]
fn coreness_ecdf_separates_the_models() {
    let fast_g = fast();
    let slow_g = slow();
    let fast_e = coreness_ecdf(&CoreDecomposition::compute(&fast_g));
    let slow_e = coreness_ecdf(&CoreDecomposition::compute(&slow_g));
    // Relative to each graph's own degeneracy, the fast mixer holds most
    // nodes at high coreness while the slow mixer holds them low.
    let fast_median_rel = fast_e.quantile(0.5)
        / CoreDecomposition::compute(&fast_g).degeneracy() as f64;
    let slow_median_rel = slow_e.quantile(0.5)
        / CoreDecomposition::compute(&slow_g).degeneracy() as f64;
    assert!(
        fast_median_rel > slow_median_rel,
        "median coreness (relative): fast {fast_median_rel:.2} vs slow {slow_median_rel:.2}"
    );
}

#[test]
fn registry_generation_is_reproducible_across_crate_boundaries() {
    let a = Dataset::Enron.generate_scaled(SCALE, SEED);
    let b = Dataset::Enron.generate_scaled(SCALE, SEED);
    assert_eq!(a, b);
    let mu_a = slem(&a, &SpectralConfig::default());
    let mu_b = slem(&b, &SpectralConfig::default());
    assert_eq!(mu_a, mu_b, "measurements on equal graphs are equal");
}
