//! Integration: expansion measurements line up with mixing measurements
//! (the paper's Sec. IV-C/V claim that the two properties are analogous).

use socnet::expansion::{ExpansionSweep, SourceSelection};
use socnet::gen::Dataset;
use socnet::mixing::{slem, SpectralConfig};

const SCALE: f64 = 0.12;
const SEED: u64 = 77;

/// Mean expansion factor over the middle range of set sizes — a scalar
/// summary of the Figure 4 curve.
fn mid_range_alpha(g: &socnet::core::Graph) -> f64 {
    let sweep = ExpansionSweep::measure(g, SourceSelection::Sample(150), SEED);
    let curve = sweep.expansion_factor_curve();
    let lo = curve.len() / 4;
    let hi = 3 * curve.len() / 4;
    let window = &curve[lo..hi.max(lo + 1)];
    window.iter().map(|&(_, a)| a).sum::<f64>() / window.len() as f64
}

#[test]
fn better_mixing_means_better_expansion() {
    let fast = Dataset::Epinion.generate_scaled(SCALE, SEED);
    let slow = Dataset::Physics1.generate_scaled(SCALE, SEED);

    let mu_fast = slem(&fast, &SpectralConfig::default()).slem();
    let mu_slow = slem(&slow, &SpectralConfig::default()).slem();
    assert!(mu_fast < mu_slow, "sanity: Epinion mixes faster");

    let alpha_fast = mid_range_alpha(&fast);
    let alpha_slow = mid_range_alpha(&slow);
    assert!(
        alpha_fast > alpha_slow,
        "expansion should order like mixing: fast {alpha_fast:.3} vs slow {alpha_slow:.3}"
    );
}

#[test]
fn full_sweep_equals_sampled_sweep_on_small_graphs() {
    let g = Dataset::RiceGrad.generate_scaled(0.5, SEED);
    let all = ExpansionSweep::measure(&g, SourceSelection::All, SEED);
    let sampled = ExpansionSweep::measure(&g, SourceSelection::Sample(g.node_count()), SEED);
    assert_eq!(all.stats().len(), sampled.stats().len());
    for (a, b) in all.stats().iter().zip(sampled.stats()) {
        assert_eq!(a.set_size, b.set_size);
        assert_eq!(a.samples, b.samples);
        assert_eq!(a.min, b.min);
        assert_eq!(a.max, b.max);
    }
}

#[test]
fn envelope_sizes_cover_the_component() {
    let g = Dataset::WikiVote.generate_scaled(SCALE, SEED);
    let sweep = ExpansionSweep::measure(&g, SourceSelection::All, SEED);
    // Envelope sizes never exceed n - 1 (there must be room to expand).
    let max_set = sweep.stats().iter().map(|s| s.set_size).max().expect("has sets");
    assert!(max_set < g.node_count());
    // The one-node envelope exists for every source and expands into at
    // least the minimum degree.
    let first = &sweep.stats()[0];
    assert_eq!(first.set_size, 1);
    assert_eq!(first.samples, g.node_count());
    let min_degree = g.nodes().map(|v| g.degree(v)).min().expect("non-empty");
    assert_eq!(first.min, min_degree);
}

#[test]
fn alpha_estimate_tracks_known_bottlenecks() {
    // The registry's strict-trust graphs have clique bottlenecks; their
    // worst envelope ratio must be far below the weak-trust graphs'.
    let community = Dataset::Dblp.generate_scaled(0.05, SEED);
    let online = Dataset::Youtube.generate_scaled(0.05, SEED);
    let a_comm = ExpansionSweep::measure(&community, SourceSelection::Sample(150), SEED)
        .alpha_estimate(community.node_count())
        .expect("has sets");
    let a_online = ExpansionSweep::measure(&online, SourceSelection::Sample(150), SEED)
        .alpha_estimate(online.node_count())
        .expect("has sets");
    assert!(
        a_comm < a_online,
        "community graph alpha {a_comm:.3} should trail online graph alpha {a_online:.3}"
    );
}
