//! Integration: the application-layer extensions built on the measured
//! properties — anonymity, Cheeger consistency, and DHT routing — all
//! agree with the mixing measurements on the same graphs.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet::community::{check_cheeger, estimate_conductance};
use socnet::core::NodeId;
use socnet::dht::{lookup_success_rate, DhtConfig, FingerStrategy, SocialDht};
use socnet::gen::Dataset;
use socnet::mixing::{slem, AnonymityCurve, SpectralConfig};
use socnet::sybil::{AttackedGraph, SybilAttack, SybilTopology};

#[test]
fn anonymity_orders_like_mixing() {
    let fast = Dataset::WikiVote.generate_scaled(0.1, 23);
    let slow = Dataset::Physics1.generate_scaled(0.1, 23);
    let fast_curve = AnonymityCurve::measure(&fast, NodeId(0), 40).expect("node 0 in range");
    let slow_curve = AnonymityCurve::measure(&slow, NodeId(0), 40).expect("node 0 in range");
    let fast_frac = fast_curve.entropy[9] / fast_curve.ceiling;
    let slow_frac = slow_curve.entropy[9] / slow_curve.ceiling;
    assert!(
        fast_frac > slow_frac + 0.1,
        "fast mixer anonymizes faster: {fast_frac:.3} vs {slow_frac:.3}"
    );
    // And both ceilings are positive and achievable in the limit.
    assert!(fast_curve.ceiling > 5.0);
    assert!(slow_curve.entropy[39] <= slow_curve.ceiling + 1e-9);
}

#[test]
fn cheeger_upper_bound_holds_on_registry_graphs() {
    for d in [Dataset::WikiVote, Dataset::Physics1, Dataset::RiceGrad] {
        let g = d.generate_scaled(0.1, 29);
        let mut rng = StdRng::seed_from_u64(29);
        let phi = estimate_conductance(&g, 3, &mut rng);
        let lambda2 = slem(&g, &SpectralConfig::default()).lambda2;
        let (bounds, upper_holds) = check_cheeger(phi, lambda2, 1e-9);
        assert!(
            upper_holds,
            "{}: gap {} exceeds 2*phi {}",
            d.name(),
            1.0 - lambda2,
            bounds.gap_upper
        );
    }
}

#[test]
fn conductance_estimate_explains_slow_mixing() {
    // The slow mixer's best cut has far lower conductance — Cheeger then
    // forces its spectral gap down, which is the paper's causal story.
    let fast = Dataset::Epinion.generate_scaled(0.1, 31);
    let slow = Dataset::Dblp.generate_scaled(0.05, 31);
    let mut rng = StdRng::seed_from_u64(31);
    let phi_fast = estimate_conductance(&fast, 3, &mut rng);
    let phi_slow = estimate_conductance(&slow, 3, &mut rng);
    assert!(
        phi_slow * 4.0 < phi_fast,
        "community graph cut {phi_slow:.4} vs online graph cut {phi_fast:.4}"
    );
    let gap_slow = 1.0 - slem(&slow, &SpectralConfig::default()).lambda2;
    assert!(gap_slow <= 2.0 * phi_slow + 1e-9, "Cheeger upper bound");
}

#[test]
fn dht_walk_fingers_survive_a_sybil_majority() {
    let honest = Dataset::WikiVote.generate_scaled(0.08, 37);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 2 * honest.node_count(),
            attack_edges: 8,
            topology: SybilTopology::ScaleFree { m_attach: 3 },
            seed: 37,
        },
    );
    let cfg = |strategy| DhtConfig { fingers: 16, strategy, replication: 8, seed: 37 };
    let walk = SocialDht::build(&attacked, &cfg(FingerStrategy::SocialWalk { length: 6 }));
    let uniform = SocialDht::build(&attacked, &cfg(FingerStrategy::Uniform));

    assert!(walk.poisoned_finger_rate() < 0.05, "walks stay honest");
    assert!(uniform.poisoned_finger_rate() > 0.5, "uniform is majority-poisoned");

    let mut rng = StdRng::seed_from_u64(41);
    let walk_rate = lookup_success_rate(&attacked, &walk, 120, 40, &mut rng);
    let uniform_rate = lookup_success_rate(&attacked, &uniform, 120, 40, &mut rng);
    assert!(
        walk_rate > uniform_rate,
        "walk fingers {walk_rate:.2} must beat uniform {uniform_rate:.2}"
    );
    assert!(walk_rate > 0.5, "walk fingers keep the DHT usable: {walk_rate:.2}");
}
