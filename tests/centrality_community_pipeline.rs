//! Integration: centrality and community structure measured on registry
//! datasets, and the community sweep acting as a Sybil defense.

use rand::rngs::StdRng;
use rand::SeedableRng;
use socnet::centrality::{betweenness, degree_centrality, harmonic_closeness, rank_by};
use socnet::community::{label_propagation, modularity, LocalCommunity};
use socnet::core::NodeId;
use socnet::gen::Dataset;
use socnet::sybil::{eval, AttackedGraph, SybilAttack, SybilTopology};

#[test]
fn community_structure_separates_the_social_models() {
    let mut rng = StdRng::seed_from_u64(1);
    let collab = Dataset::Physics1.generate_scaled(0.12, 3);
    let online = Dataset::WikiVote.generate_scaled(0.12, 3);

    let c_collab = label_propagation(&collab, 40, &mut rng);
    let c_online = label_propagation(&online, 40, &mut rng);

    let q_collab = modularity(&collab, c_collab.labels());
    let q_online = modularity(&online, c_online.labels());
    assert!(
        q_collab > q_online + 0.3,
        "strict-trust graphs have strong communities: {q_collab:.3} vs {q_online:.3}"
    );
    assert!(
        c_collab.count() > 10 * c_online.count().max(1),
        "caveman graph should fragment into many communities: {} vs {}",
        c_collab.count(),
        c_online.count()
    );
}

#[test]
fn centrality_scores_correlate_with_degree_on_scale_free_graphs() {
    let g = Dataset::Youtube.generate_scaled(0.05, 9);
    let b = betweenness(&g);
    let d = degree_centrality(&g);
    // The top-betweenness node is a hub: it ranks in the top decile by
    // degree.
    let top_b = rank_by(&g, &b)[0];
    let degree_rank = rank_by(&g, &d)
        .iter()
        .position(|&v| v == top_b)
        .expect("present");
    assert!(
        degree_rank < g.node_count() / 10,
        "top betweenness node has degree rank {degree_rank}"
    );
    // Harmonic closeness is highest at hubs too.
    let h = harmonic_closeness(&g);
    let top_h = rank_by(&g, &h)[0];
    assert!(
        g.degree(top_h) > 4 * g.degree_sum() / g.node_count() / 2,
        "closest node should be well-connected"
    );
}

#[test]
fn community_sweep_defends_like_the_walk_based_defenses() {
    let honest = Dataset::Epinion.generate_scaled(0.1, 4);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 80,
            attack_edges: 10,
            topology: SybilTopology::ErdosRenyi { p: 0.15 },
            seed: 4,
        },
    );
    let g = attacked.graph();
    let lc = LocalCommunity::sweep(g, NodeId(0), attacked.honest_count());
    let auc = eval::ranking_auc(&attacked, &lc.full_ranking(g));
    assert!(auc > 0.85, "community sweep ranking AUC {auc:.3}");

    let mut admitted = vec![false; g.node_count()];
    for &v in lc.ranking() {
        admitted[v.index()] = true;
    }
    let stats = eval::admission_stats(&attacked, &admitted);
    assert!(stats.honest_accept_rate > 0.85, "honest rate {}", stats.honest_accept_rate);
    assert!(
        stats.sybils_per_attack_edge < 5.0,
        "sybils per edge {}",
        stats.sybils_per_attack_edge
    );
}

#[test]
fn betweenness_identifies_attack_edge_endpoints_under_sparse_attacks() {
    // With a large Sybil region behind few attack edges, all cross
    // traffic funnels through the attack-edge endpoints — they acquire
    // outsized betweenness, the signal behind betweenness-based defenses.
    let honest = Dataset::RiceGrad.generate_scaled(0.6, 8);
    let attacked = AttackedGraph::mount(
        &honest,
        &SybilAttack {
            sybil_count: 120,
            attack_edges: 2,
            topology: SybilTopology::ErdosRenyi { p: 0.15 },
            seed: 8,
        },
    );
    let g = attacked.graph();
    let b = betweenness(g);
    let ranking = rank_by(g, &b);
    let endpoint_best = attacked
        .attack_edges()
        .iter()
        .flat_map(|&(h, s)| [h, s])
        .map(|v| ranking.iter().position(|&r| r == v).expect("present"))
        .min()
        .expect("has attack edges");
    assert!(
        endpoint_best < 10,
        "an attack-edge endpoint should rank near the top, best rank {endpoint_best}"
    );
}
